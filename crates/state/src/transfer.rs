//! Tree-walk state transfer.
//!
//! When a replica learns (from a stable checkpoint certificate) that its
//! state digest diverges, it fetches the divergent pages from peers using the
//! "efficient tree walking algorithm" of paper §2.1: starting from the root,
//! compare the children digests reported by an up-to-date peer against the
//! local tree and descend only into differing subtrees; at the leaf level,
//! fetch the differing pages.
//!
//! This module is transport-agnostic: [`Fetcher`] is the requester-side state
//! machine emitting [`FetchRequest`]s and consuming [`FetchResponse`]s;
//! [`serve_fetch`] answers requests from a [`Snapshot`]. `pbft-core` wraps
//! both in protocol messages.

use std::collections::BTreeSet;
use std::fmt;

use pbft_crypto::Digest;

use crate::merkle::MerkleTree;
use crate::region::PAGE_SIZE;
use crate::snapshot::Snapshot;

/// A state-transfer request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchRequest {
    /// Request the children digests of internal tree node `(level, index)`.
    Meta {
        /// Tree level (0 = leaves), so this must be ≥ 1.
        level: u32,
        /// Node index within the level.
        index: u64,
    },
    /// Request the contents of a data page.
    Page {
        /// Page index.
        index: u64,
    },
}

/// A state-transfer response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchResponse {
    /// Children digests of the requested node.
    Meta {
        /// Echoed level.
        level: u32,
        /// Echoed index.
        index: u64,
        /// Left and right child digests.
        children: (Digest, Digest),
    },
    /// A data page (`None` = zero page).
    Page {
        /// Echoed page index.
        index: u64,
        /// Page bytes, exactly one page, or `None` for the zero page.
        data: Option<Vec<u8>>,
    },
    /// The peer could not answer (malformed request or out of range).
    Unavailable,
}

/// Errors from the fetcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferError {
    /// A page response did not match the digest the tree walk expects.
    PageDigestMismatch {
        /// Which page failed validation.
        index: u64,
    },
    /// A meta response's children do not hash to the expected node digest.
    MetaDigestMismatch {
        /// Level of the bad node.
        level: u32,
        /// Index of the bad node.
        index: u64,
    },
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::PageDigestMismatch { index } => {
                write!(f, "page {index} does not match its advertised digest")
            }
            TransferError::MetaDigestMismatch { level, index } => {
                write!(f, "meta node ({level},{index}) children fail digest check")
            }
        }
    }
}

impl std::error::Error for TransferError {}

/// Requester-side tree-walk state machine.
///
/// The fetcher validates everything it receives against the target root, so
/// a Byzantine peer cannot inject wrong pages — responses that fail digest
/// checks surface as [`TransferError`]s and the caller retries elsewhere.
#[derive(Debug)]
pub struct Fetcher {
    target_root: Digest,
    /// Expected digest for every node we have committed to fetching.
    expected: Vec<(u32, u64, Digest)>,
    /// Pages confirmed divergent, awaiting data.
    pending_pages: BTreeSet<u64>,
    /// Pages fetched and validated, ready to install.
    ready: Vec<(u64, Option<Vec<u8>>)>,
    outstanding_meta: usize,
    done: bool,
}

impl Fetcher {
    /// Start a transfer toward `target_root`. Returns the fetcher and the
    /// initial requests (empty if the local tree already matches).
    pub fn new(local: &MerkleTree, target_root: Digest) -> (Fetcher, Vec<FetchRequest>) {
        let mut f = Fetcher {
            target_root,
            expected: Vec::new(),
            pending_pages: BTreeSet::new(),
            ready: Vec::new(),
            outstanding_meta: 0,
            done: false,
        };
        if local.root() == target_root {
            f.done = true;
            return (f, Vec::new());
        }
        let top = local.height() - 1;
        if top == 0 {
            // Single-page state: the root *is* the page digest.
            f.pending_pages.insert(0);
            f.expected.push((0, 0, target_root));
            return (f, vec![FetchRequest::Page { index: 0 }]);
        }
        f.expected.push((top, 0, target_root));
        f.outstanding_meta = 1;
        (
            f,
            vec![FetchRequest::Meta {
                level: top,
                index: 0,
            }],
        )
    }

    /// The checkpoint root this transfer is converging toward.
    pub fn target_root(&self) -> Digest {
        self.target_root
    }

    /// True when every divergent page has been fetched and validated.
    pub fn is_complete(&self) -> bool {
        self.done && self.outstanding_meta == 0 && self.pending_pages.is_empty()
            || (self.outstanding_meta == 0 && self.pending_pages.is_empty())
    }

    /// Drain validated pages for installation into the local region.
    pub fn take_ready(&mut self) -> Vec<(u64, Option<Vec<u8>>)> {
        std::mem::take(&mut self.ready)
    }

    fn expected_digest(&self, level: u32, index: u64) -> Option<Digest> {
        self.expected
            .iter()
            .find(|(l, i, _)| *l == level && *i == index)
            .map(|(_, _, d)| *d)
    }

    /// Consume a response; returns follow-up requests.
    ///
    /// # Errors
    /// Digest-validation failures (Byzantine or corrupted peer data).
    pub fn on_response(
        &mut self,
        local: &MerkleTree,
        resp: FetchResponse,
    ) -> Result<Vec<FetchRequest>, TransferError> {
        match resp {
            FetchResponse::Meta {
                level,
                index,
                children,
            } => {
                let Some(pos) = self
                    .expected
                    .iter()
                    .position(|(l, i, _)| *l == level && *i == index)
                else {
                    return Ok(Vec::new()); // unsolicited; ignore
                };
                let expect = self.expected[pos].2;
                // Validate: H(level, index, l, r) must equal the expected
                // digest. Recompute with the same combine as MerkleTree by
                // checking against a 2-leaf reconstruction.
                let recomputed = combine_check(level, index, &children.0, &children.1);
                if recomputed != expect {
                    return Err(TransferError::MetaDigestMismatch { level, index });
                }
                // Consume the expectation: a duplicate response (a retry
                // racing the original) must not decrement the counter twice.
                self.expected.swap_remove(pos);
                self.outstanding_meta -= 1;
                let mut out = Vec::new();
                let child_level = level - 1;
                for (side, child_digest) in [(0u64, children.0), (1u64, children.1)] {
                    let child_index = 2 * index + side;
                    let local_digest = local.node(child_level, child_index);
                    if local_digest == Some(child_digest) {
                        continue; // subtree already matches
                    }
                    if child_level == 0 {
                        if (child_index as usize) < local.leaf_count() {
                            self.pending_pages.insert(child_index);
                            self.expected.push((0, child_index, child_digest));
                            out.push(FetchRequest::Page { index: child_index });
                        }
                        // Padding leaves can never diverge for equal-geometry
                        // trees; ignore them.
                    } else {
                        self.expected.push((child_level, child_index, child_digest));
                        self.outstanding_meta += 1;
                        out.push(FetchRequest::Meta {
                            level: child_level,
                            index: child_index,
                        });
                    }
                }
                Ok(out)
            }
            FetchResponse::Page { index, data } => {
                if !self.pending_pages.contains(&index) {
                    return Ok(Vec::new()); // unsolicited; ignore
                }
                let expect = self
                    .expected_digest(0, index)
                    .expect("pending page has an expected digest");
                let actual = match &data {
                    Some(d) => Digest::of(d),
                    None => Digest::of(&[0u8; PAGE_SIZE]),
                };
                if actual != expect {
                    return Err(TransferError::PageDigestMismatch { index });
                }
                self.pending_pages.remove(&index);
                self.ready.push((index, data));
                Ok(Vec::new())
            }
            FetchResponse::Unavailable => Ok(Vec::new()),
        }
    }
}

/// Recompute an internal node digest from its children (mirrors
/// `MerkleTree`'s combine function via a tiny 2-leaf tree).
fn combine_check(level: u32, index: u64, left: &Digest, right: &Digest) -> Digest {
    use pbft_crypto::Sha256;
    let mut h = Sha256::new();
    h.update(&level.to_be_bytes());
    h.update(&index.to_be_bytes());
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finish()
}

/// Serve a fetch request from a checkpoint snapshot.
pub fn serve_fetch(snap: &Snapshot, req: &FetchRequest) -> FetchResponse {
    match req {
        FetchRequest::Meta { level, index } => match snap.tree().children(*level, *index) {
            Some(children) => FetchResponse::Meta {
                level: *level,
                index: *index,
                children,
            },
            None => FetchResponse::Unavailable,
        },
        FetchRequest::Page { index } => {
            if (*index as usize) < snap.num_pages() {
                FetchResponse::Page {
                    index: *index,
                    data: snap.page(*index).map(|p| p.to_vec()),
                }
            } else {
                FetchResponse::Unavailable
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{PagedState, PAGE_SIZE};

    /// Drive a full transfer from `src` snapshot into `dst`; returns number
    /// of pages moved.
    fn sync(dst: &mut PagedState, snap: &Snapshot) -> usize {
        dst.refresh_digest();
        let (mut fetcher, mut reqs) = Fetcher::new(dst.tree(), snap.root);
        assert_eq!(fetcher.target_root(), snap.root);
        let mut moved = 0;
        while !reqs.is_empty() {
            let mut next = Vec::new();
            for r in &reqs {
                let resp = serve_fetch(snap, r);
                next.extend(fetcher.on_response(dst.tree(), resp).expect("valid"));
                for (idx, data) in fetcher.take_ready() {
                    dst.install_page(idx, data).expect("install");
                    moved += 1;
                }
            }
            reqs = next;
        }
        assert!(fetcher.is_complete());
        moved
    }

    fn scribble(st: &mut PagedState, page: u64, byte: u8) {
        let off = page * PAGE_SIZE as u64;
        st.modify(off, 8).expect("modify");
        st.write(off, &[byte; 8]).expect("write");
    }

    #[test]
    fn identical_states_transfer_nothing() {
        let mut a = PagedState::new(8);
        let mut b = PagedState::new(8);
        a.refresh_digest();
        let snap = a.snapshot(0);
        let moved = sync(&mut b, &snap);
        assert_eq!(moved, 0);
        assert_eq!(b.tree().root(), snap.root);
    }

    #[test]
    fn single_divergent_page_moves_one_page() {
        let mut a = PagedState::new(16);
        scribble(&mut a, 9, 0xaa);
        a.refresh_digest();
        let snap = a.snapshot(1);
        let mut b = PagedState::new(16);
        let moved = sync(&mut b, &snap);
        assert_eq!(moved, 1);
        assert_eq!(
            b.read_vec(9 * PAGE_SIZE as u64, 8).expect("read"),
            vec![0xaa; 8]
        );
        assert_eq!(b.tree().root(), snap.root);
    }

    #[test]
    fn many_divergent_pages_all_move() {
        let mut a = PagedState::new(32);
        for p in [0u64, 3, 7, 15, 31] {
            scribble(&mut a, p, p as u8 + 1);
        }
        a.refresh_digest();
        let snap = a.snapshot(2);
        let mut b = PagedState::new(32);
        // b has its own divergent content that must be overwritten.
        scribble(&mut b, 3, 0xee);
        scribble(&mut b, 20, 0xdd);
        let moved = sync(&mut b, &snap);
        assert_eq!(moved, 6, "5 pages from a + 1 page reverted to zero");
        assert_eq!(b.tree().root(), snap.root);
        assert_eq!(
            b.read_vec(20 * PAGE_SIZE as u64, 8).expect("read"),
            vec![0u8; 8]
        );
    }

    #[test]
    fn single_page_state() {
        let mut a = PagedState::new(1);
        scribble(&mut a, 0, 5);
        a.refresh_digest();
        let snap = a.snapshot(0);
        let mut b = PagedState::new(1);
        let moved = sync(&mut b, &snap);
        assert_eq!(moved, 1);
        assert_eq!(b.tree().root(), snap.root);
    }

    #[test]
    fn byzantine_page_detected() {
        let mut a = PagedState::new(4);
        scribble(&mut a, 2, 9);
        a.refresh_digest();
        let snap = a.snapshot(0);
        let mut b = PagedState::new(4);
        b.refresh_digest();
        let (mut fetcher, reqs) = Fetcher::new(b.tree(), snap.root);
        // Walk meta honestly, then lie about the page.
        let mut page_req = None;
        let mut queue = reqs;
        while page_req.is_none() {
            let mut next = Vec::new();
            for r in &queue {
                if matches!(r, FetchRequest::Page { .. }) {
                    page_req = Some(r.clone());
                    continue;
                }
                let resp = serve_fetch(&snap, r);
                next.extend(fetcher.on_response(b.tree(), resp).expect("valid meta"));
            }
            if page_req.is_none() {
                queue = std::mem::take(&mut next);
            } else {
                break;
            }
        }
        let evil = FetchResponse::Page {
            index: 2,
            data: Some(vec![0x66; PAGE_SIZE]),
        };
        assert_eq!(
            fetcher.on_response(b.tree(), evil),
            Err(TransferError::PageDigestMismatch { index: 2 })
        );
    }

    #[test]
    fn byzantine_meta_detected() {
        let mut a = PagedState::new(4);
        scribble(&mut a, 1, 3);
        a.refresh_digest();
        let snap = a.snapshot(0);
        let mut b = PagedState::new(4);
        b.refresh_digest();
        let (mut fetcher, reqs) = Fetcher::new(b.tree(), snap.root);
        assert_eq!(reqs.len(), 1);
        let evil = FetchResponse::Meta {
            level: 2,
            index: 0,
            children: (Digest::of(b"lie"), Digest::of(b"lie2")),
        };
        assert_eq!(
            fetcher.on_response(b.tree(), evil),
            Err(TransferError::MetaDigestMismatch { level: 2, index: 0 })
        );
    }

    #[test]
    fn unsolicited_responses_ignored() {
        let mut a = PagedState::new(4);
        a.refresh_digest();
        let snap = a.snapshot(0);
        let mut b = PagedState::new(4);
        scribble(&mut b, 0, 1);
        b.refresh_digest();
        let (mut fetcher, _reqs) = Fetcher::new(b.tree(), snap.root);
        let out = fetcher
            .on_response(
                b.tree(),
                FetchResponse::Page {
                    index: 3,
                    data: None,
                },
            )
            .expect("ignored");
        assert!(out.is_empty());
        let out = fetcher
            .on_response(b.tree(), FetchResponse::Unavailable)
            .expect("ignored");
        assert!(out.is_empty());
    }

    #[test]
    fn serve_rejects_out_of_range() {
        let mut a = PagedState::new(2);
        a.refresh_digest();
        let snap = a.snapshot(0);
        assert_eq!(
            serve_fetch(&snap, &FetchRequest::Page { index: 99 }),
            FetchResponse::Unavailable
        );
        assert_eq!(
            serve_fetch(&snap, &FetchRequest::Meta { level: 9, index: 0 }),
            FetchResponse::Unavailable
        );
    }
}
