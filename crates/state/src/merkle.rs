//! Incremental Merkle tree over page digests.
//!
//! Leaves are page digests; internal nodes bind their `(level, index)`
//! position, so identical sibling subtrees at different positions still hash
//! differently and a tree cannot be "rearranged" without changing the root.
//! Updating one leaf recomputes only the path to the root (`O(log n)`).

use pbft_crypto::{Digest, Sha256};

/// A Merkle tree with a fixed number of leaves (padded to a power of two).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` = leaf digests (padded); `levels.last()` = `[root]`.
    levels: Vec<Vec<Digest>>,
    /// Number of real (unpadded) leaves.
    leaf_count: usize,
}

/// Digest used for padding leaves beyond `leaf_count`.
fn pad_leaf() -> Digest {
    Digest::of(b"pbft-state-merkle-pad")
}

fn combine(level: u32, index: u64, left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&level.to_be_bytes());
    h.update(&index.to_be_bytes());
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finish()
}

impl MerkleTree {
    /// Build a tree from leaf digests.
    ///
    /// # Panics
    /// Panics if `leaves` is empty.
    pub fn build(leaves: Vec<Digest>) -> MerkleTree {
        assert!(!leaves.is_empty(), "tree needs at least one leaf");
        let leaf_count = leaves.len();
        let width = leaf_count.next_power_of_two();
        let mut level0 = leaves;
        level0.resize(width, pad_leaf());
        let mut levels = vec![level0];
        let mut lvl = 1u32;
        while levels.last().expect("non-empty").len() > 1 {
            let below = levels.last().expect("non-empty");
            let mut above = Vec::with_capacity(below.len() / 2);
            for i in 0..below.len() / 2 {
                above.push(combine(lvl, i as u64, &below[2 * i], &below[2 * i + 1]));
            }
            levels.push(above);
            lvl += 1;
        }
        MerkleTree { levels, leaf_count }
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of real leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Number of levels including the leaf level (a 1-leaf tree has 1).
    pub fn height(&self) -> u32 {
        self.levels.len() as u32
    }

    /// Digest of leaf `index`.
    ///
    /// # Panics
    /// Panics if `index >= leaf_count`.
    pub fn leaf(&self, index: usize) -> Digest {
        assert!(index < self.leaf_count, "leaf index out of range");
        self.levels[0][index]
    }

    /// Digest of the node at `(level, index)`; level 0 = leaves.
    /// Returns `None` if out of range (useful for the transfer protocol,
    /// which must tolerate malformed requests from faulty peers).
    pub fn node(&self, level: u32, index: u64) -> Option<Digest> {
        self.levels
            .get(level as usize)
            .and_then(|l| l.get(index as usize))
            .copied()
    }

    /// The two children digests of internal node `(level, index)`.
    pub fn children(&self, level: u32, index: u64) -> Option<(Digest, Digest)> {
        if level == 0 {
            return None;
        }
        let below = self.levels.get(level as usize - 1)?;
        let l = *below.get(2 * index as usize)?;
        let r = *below.get(2 * index as usize + 1)?;
        Some((l, r))
    }

    /// Replace leaf `index` and recompute the path to the root.
    ///
    /// # Panics
    /// Panics if `index >= leaf_count`.
    pub fn update_leaf(&mut self, index: usize, digest: Digest) {
        assert!(index < self.leaf_count, "leaf index out of range");
        self.levels[0][index] = digest;
        let mut idx = index;
        for lvl in 1..self.levels.len() {
            idx /= 2;
            let (a, b) = (
                self.levels[lvl - 1][2 * idx],
                self.levels[lvl - 1][2 * idx + 1],
            );
            self.levels[lvl][idx] = combine(lvl as u32, idx as u64, &a, &b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| Digest::of(&(i as u64).to_be_bytes()))
            .collect()
    }

    #[test]
    fn single_leaf() {
        let t = MerkleTree::build(leaves(1));
        assert_eq!(t.height(), 1);
        assert_eq!(t.root(), t.leaf(0));
    }

    #[test]
    fn incremental_matches_rebuild() {
        for n in [1usize, 2, 3, 5, 8, 13, 64, 100] {
            let mut ls = leaves(n);
            let mut t = MerkleTree::build(ls.clone());
            for touch in [0, n / 2, n - 1] {
                ls[touch] = Digest::of(&[touch as u8, 0xff]);
                t.update_leaf(touch, ls[touch]);
                let rebuilt = MerkleTree::build(ls.clone());
                assert_eq!(t.root(), rebuilt.root(), "n={n} touch={touch}");
                assert_eq!(t, rebuilt);
            }
        }
    }

    #[test]
    fn root_depends_on_every_leaf() {
        let base = MerkleTree::build(leaves(7));
        for i in 0..7 {
            let mut ls = leaves(7);
            ls[i] = Digest::of(b"changed");
            assert_ne!(MerkleTree::build(ls).root(), base.root(), "leaf {i}");
        }
    }

    #[test]
    fn position_binding() {
        // Swapping two equal-value leaves at different positions changes
        // nothing, but swapping distinct leaves does; and a subtree moved to
        // a different index yields a different parent.
        let a = Digest::of(b"a");
        let b = Digest::of(b"b");
        let t1 = MerkleTree::build(vec![a, b, a, b]);
        let t2 = MerkleTree::build(vec![a, b, b, a]);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn children_and_node_accessors() {
        let t = MerkleTree::build(leaves(4));
        assert_eq!(t.height(), 3);
        let (l, r) = t.children(2, 0).expect("root children");
        assert_eq!(combine(2, 0, &l, &r), t.root());
        assert_eq!(t.node(0, 2), Some(t.leaf(2)));
        assert_eq!(t.node(9, 0), None);
        assert_eq!(t.children(0, 0), None);
        assert_eq!(t.node(2, 0), Some(t.root()));
    }

    #[test]
    #[should_panic(expected = "leaf index out of range")]
    fn update_out_of_range_panics() {
        let mut t = MerkleTree::build(leaves(3));
        t.update_leaf(3, Digest::ZERO); // index 3 is padding, not a real leaf
    }
}
