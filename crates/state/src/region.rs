//! The paged state region with enforced modify-notifications.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use pbft_crypto::{Digest, Sha256};

use crate::merkle::MerkleTree;
use crate::snapshot::Snapshot;

/// Page size in bytes. 4 KiB, matching both the PBFT library's state pages
/// and minisql's database pages (which is what lets the database file map
/// 1:1 onto state pages).
pub const PAGE_SIZE: usize = 4096;

/// Errors from state-region operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// A read or write touched bytes beyond the region.
    OutOfBounds {
        /// Start offset of the rejected access.
        offset: u64,
        /// Length of the rejected access.
        len: usize,
        /// Total region length the access fell outside of.
        region_len: u64,
    },
    /// A write touched a page that was not covered by a prior
    /// [`PagedState::modify`] in the current checkpoint epoch.
    NotModified {
        /// The unnotified page index.
        page: u64,
    },
    /// A restore was attempted from a snapshot of a different geometry.
    GeometryMismatch,
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::OutOfBounds {
                offset,
                len,
                region_len,
            } => write!(
                f,
                "access at offset {offset} len {len} out of bounds (region is {region_len} bytes)"
            ),
            StateError::NotModified { page } => {
                write!(
                    f,
                    "write to page {page} without a prior modify() notification"
                )
            }
            StateError::GeometryMismatch => write!(f, "snapshot geometry does not match region"),
        }
    }
}

impl std::error::Error for StateError {}

/// Digest of an all-zero page (shared by every lazily allocated page).
fn zero_page_digest() -> Digest {
    Digest::of(&[0u8; PAGE_SIZE])
}

fn page_digest(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// A fixed-size, page-granular memory region with copy-on-write snapshots
/// and an incremental Merkle tree. See the crate docs for the contract.
#[derive(Debug, Clone)]
pub struct PagedState {
    /// `None` = all-zero page not yet materialized (sparse).
    pages: Vec<Option<Arc<Vec<u8>>>>,
    tree: MerkleTree,
    /// Pages notified via `modify` since the last `refresh_digest`.
    dirty: BTreeSet<u64>,
    /// Pages hashed by the last `refresh_digest` (for cost accounting).
    last_refresh_hashed: u64,
    len: u64,
}

impl PagedState {
    /// Create a region of `num_pages` zeroed pages.
    ///
    /// # Panics
    /// Panics if `num_pages == 0`.
    pub fn new(num_pages: usize) -> PagedState {
        assert!(num_pages > 0, "state needs at least one page");
        let zp = zero_page_digest();
        let tree = MerkleTree::build(vec![zp; num_pages]);
        PagedState {
            pages: vec![None; num_pages],
            tree,
            dirty: BTreeSet::new(),
            last_refresh_hashed: 0,
            len: (num_pages * PAGE_SIZE) as u64,
        }
    }

    /// Create a region of at least `len_bytes` bytes (rounded up to pages).
    pub fn with_len(len_bytes: u64) -> PagedState {
        let pages = (len_bytes as usize).div_ceil(PAGE_SIZE).max(1);
        PagedState::new(pages)
    }

    /// Region length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the region has zero length (never: regions have ≥ 1 page).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    fn check_bounds(&self, offset: u64, len: usize) -> Result<(), StateError> {
        if offset
            .checked_add(len as u64)
            .is_none_or(|end| end > self.len)
        {
            return Err(StateError::OutOfBounds {
                offset,
                len,
                region_len: self.len,
            });
        }
        Ok(())
    }

    /// Read `buf.len()` bytes at `offset`.
    ///
    /// # Errors
    /// [`StateError::OutOfBounds`] if the range exceeds the region.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<(), StateError> {
        self.check_bounds(offset, buf.len())?;
        let mut off = offset as usize;
        let mut filled = 0usize;
        while filled < buf.len() {
            let page = off / PAGE_SIZE;
            let in_page = off % PAGE_SIZE;
            let take = (PAGE_SIZE - in_page).min(buf.len() - filled);
            match &self.pages[page] {
                Some(p) => buf[filled..filled + take].copy_from_slice(&p[in_page..in_page + take]),
                None => buf[filled..filled + take].fill(0),
            }
            filled += take;
            off += take;
        }
        Ok(())
    }

    /// Read `len` bytes at `offset` into a fresh vector.
    ///
    /// # Errors
    /// [`StateError::OutOfBounds`] if the range exceeds the region.
    pub fn read_vec(&self, offset: u64, len: usize) -> Result<Vec<u8>, StateError> {
        let mut v = vec![0u8; len];
        self.read(offset, &mut v)?;
        Ok(v)
    }

    /// Notify the library that bytes in `[offset, offset + len)` are about to
    /// change — the PBFT `modify()` upcall. Must precede [`PagedState::write`]
    /// within the same checkpoint epoch.
    ///
    /// # Errors
    /// [`StateError::OutOfBounds`] if the range exceeds the region.
    pub fn modify(&mut self, offset: u64, len: usize) -> Result<(), StateError> {
        if len == 0 {
            return Ok(());
        }
        self.check_bounds(offset, len)?;
        let first = offset / PAGE_SIZE as u64;
        let last = (offset + len as u64 - 1) / PAGE_SIZE as u64;
        for p in first..=last {
            self.dirty.insert(p);
        }
        Ok(())
    }

    /// Write `data` at `offset`. Every touched page must have been covered by
    /// a [`PagedState::modify`] call since the last digest refresh.
    ///
    /// # Errors
    /// [`StateError::OutOfBounds`] or [`StateError::NotModified`].
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<(), StateError> {
        if data.is_empty() {
            return Ok(());
        }
        self.check_bounds(offset, data.len())?;
        let first = offset / PAGE_SIZE as u64;
        let last = (offset + data.len() as u64 - 1) / PAGE_SIZE as u64;
        for p in first..=last {
            if !self.dirty.contains(&p) {
                return Err(StateError::NotModified { page: p });
            }
        }
        let mut off = offset as usize;
        let mut written = 0usize;
        while written < data.len() {
            let page = off / PAGE_SIZE;
            let in_page = off % PAGE_SIZE;
            let take = (PAGE_SIZE - in_page).min(data.len() - written);
            let slot = &mut self.pages[page];
            let buf = match slot {
                Some(arc) => Arc::make_mut(arc), // copy-on-write un-share
                None => {
                    *slot = Some(Arc::new(vec![0u8; PAGE_SIZE]));
                    Arc::make_mut(slot.as_mut().expect("just set"))
                }
            };
            buf[in_page..in_page + take].copy_from_slice(&data[written..written + take]);
            written += take;
            off += take;
        }
        Ok(())
    }

    /// Recompute digests for dirty pages and return the Merkle root. Clears
    /// the dirty set (ending the checkpoint epoch: further writes need new
    /// `modify` notifications).
    pub fn refresh_digest(&mut self) -> Digest {
        let dirty = std::mem::take(&mut self.dirty);
        self.last_refresh_hashed = dirty.len() as u64;
        for p in dirty {
            let d = match &self.pages[p as usize] {
                Some(data) => page_digest(data),
                None => zero_page_digest(),
            };
            self.tree.update_leaf(p as usize, d);
        }
        self.tree.root()
    }

    /// Pages hashed by the most recent [`PagedState::refresh_digest`]
    /// (experiments charge digest cost per hashed page).
    pub fn last_refresh_hashed(&self) -> u64 {
        self.last_refresh_hashed
    }

    /// The Merkle tree as of the last digest refresh.
    pub fn tree(&self) -> &MerkleTree {
        &self.tree
    }

    /// Number of pages currently awaiting re-hash.
    pub fn dirty_pages(&self) -> usize {
        self.dirty.len()
    }

    /// Take a copy-on-write snapshot at `seq`. Call after
    /// [`PagedState::refresh_digest`] so the recorded root is current.
    pub fn snapshot(&self, seq: u64) -> Snapshot {
        Snapshot {
            seq,
            root: self.tree.root(),
            pages: self.pages.clone(),
            tree: self.tree.clone(),
        }
    }

    /// Restore the region to a snapshot (used to roll back tentative
    /// execution and as the base for state transfer).
    ///
    /// # Errors
    /// [`StateError::GeometryMismatch`] if the snapshot has a different page
    /// count.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), StateError> {
        if snap.pages.len() != self.pages.len() {
            return Err(StateError::GeometryMismatch);
        }
        self.pages = snap.pages.clone();
        self.tree = snap.tree.clone();
        self.dirty.clear();
        Ok(())
    }

    /// Install a page received via state transfer (bypasses the modify
    /// contract — transfer is a library-internal operation). `None` installs
    /// the zero page. Updates the Merkle leaf immediately.
    ///
    /// # Errors
    /// [`StateError::OutOfBounds`] if `page` is out of range or data is not
    /// page-sized.
    pub fn install_page(&mut self, page: u64, data: Option<Vec<u8>>) -> Result<(), StateError> {
        let idx = page as usize;
        if idx >= self.pages.len() {
            return Err(StateError::OutOfBounds {
                offset: page * PAGE_SIZE as u64,
                len: PAGE_SIZE,
                region_len: self.len,
            });
        }
        match data {
            Some(d) => {
                if d.len() != PAGE_SIZE {
                    return Err(StateError::OutOfBounds {
                        offset: page * PAGE_SIZE as u64,
                        len: d.len(),
                        region_len: self.len,
                    });
                }
                let digest = page_digest(&d);
                self.pages[idx] = Some(Arc::new(d));
                self.tree.update_leaf(idx, digest);
            }
            None => {
                self.pages[idx] = None;
                self.tree.update_leaf(idx, zero_page_digest());
            }
        }
        self.dirty.remove(&page);
        Ok(())
    }

    /// Raw page contents for state-transfer serving (`None` = zero page).
    pub fn page(&self, page: u64) -> Option<&[u8]> {
        self.pages
            .get(page as usize)
            .and_then(|p| p.as_deref().map(|v| v.as_slice()))
    }
}

/// A named sub-range of the state region, used to carve the single region
/// into a library partition and an application partition — the layout the
/// PBFT implementation mandates ("it splits this region in two, the first
/// part for the internal library needs and the remaining for the
/// application").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Section {
    /// Byte offset of the section within the region.
    pub base: u64,
    /// Section length in bytes.
    pub len: u64,
}

impl Section {
    /// Read within the section (relative offset).
    ///
    /// # Errors
    /// [`StateError::OutOfBounds`] if the range leaves the section.
    pub fn read(&self, state: &PagedState, offset: u64, buf: &mut [u8]) -> Result<(), StateError> {
        self.check(offset, buf.len())?;
        state.read(self.base + offset, buf)
    }

    /// Modify-notify within the section.
    ///
    /// # Errors
    /// [`StateError::OutOfBounds`] if the range leaves the section.
    pub fn modify(
        &self,
        state: &mut PagedState,
        offset: u64,
        len: usize,
    ) -> Result<(), StateError> {
        self.check(offset, len)?;
        state.modify(self.base + offset, len)
    }

    /// Write within the section (the modify contract still applies).
    ///
    /// # Errors
    /// [`StateError::OutOfBounds`] or [`StateError::NotModified`].
    pub fn write(
        &self,
        state: &mut PagedState,
        offset: u64,
        data: &[u8],
    ) -> Result<(), StateError> {
        self.check(offset, data.len())?;
        state.write(self.base + offset, data)
    }

    fn check(&self, offset: u64, len: usize) -> Result<(), StateError> {
        if offset
            .checked_add(len as u64)
            .is_none_or(|end| end > self.len)
        {
            return Err(StateError::OutOfBounds {
                offset,
                len,
                region_len: self.len,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized_reads() {
        let st = PagedState::new(4);
        assert_eq!(st.read_vec(100, 16).expect("read"), vec![0u8; 16]);
        assert_eq!(st.len(), 4 * PAGE_SIZE as u64);
        assert!(!st.is_empty());
    }

    #[test]
    fn modify_then_write_roundtrip() {
        let mut st = PagedState::new(4);
        st.modify(10, 5).expect("modify");
        st.write(10, b"hello").expect("write");
        assert_eq!(st.read_vec(10, 5).expect("read"), b"hello");
    }

    #[test]
    fn write_without_modify_rejected() {
        let mut st = PagedState::new(4);
        assert_eq!(st.write(0, b"x"), Err(StateError::NotModified { page: 0 }));
        // And after a digest refresh the epoch resets.
        st.modify(0, 1).expect("modify");
        st.refresh_digest();
        assert_eq!(st.write(0, b"x"), Err(StateError::NotModified { page: 0 }));
    }

    #[test]
    fn cross_page_write() {
        let mut st = PagedState::new(4);
        let data = vec![7u8; PAGE_SIZE + 100];
        let off = (PAGE_SIZE - 50) as u64;
        st.modify(off, data.len()).expect("modify");
        st.write(off, &data).expect("write");
        assert_eq!(st.read_vec(off, data.len()).expect("read"), data);
        // Bytes around the write untouched.
        assert_eq!(st.read_vec(0, 10).expect("read"), vec![0u8; 10]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut st = PagedState::new(1);
        let end = st.len();
        assert!(matches!(
            st.read_vec(end, 1),
            Err(StateError::OutOfBounds { .. })
        ));
        assert!(matches!(
            st.modify(end - 1, 2),
            Err(StateError::OutOfBounds { .. })
        ));
        assert!(st.modify(end - 1, 1).is_ok());
    }

    #[test]
    fn digest_changes_with_content() {
        let mut st = PagedState::new(4);
        let d0 = st.refresh_digest();
        st.modify(0, 3).expect("modify");
        st.write(0, b"abc").expect("write");
        let d1 = st.refresh_digest();
        assert_ne!(d0, d1);
        // Writing the same bytes back to zero restores the digest.
        st.modify(0, 3).expect("modify");
        st.write(0, &[0, 0, 0]).expect("write");
        assert_eq!(st.refresh_digest(), d0);
    }

    #[test]
    fn identical_content_identical_digest_across_instances() {
        let mut a = PagedState::new(8);
        let mut b = PagedState::new(8);
        for st in [&mut a, &mut b] {
            st.modify(5000, 4).expect("modify");
            st.write(5000, b"vote").expect("write");
        }
        assert_eq!(a.refresh_digest(), b.refresh_digest());
    }

    #[test]
    fn snapshot_restore_rolls_back() {
        let mut st = PagedState::new(4);
        st.modify(0, 4).expect("modify");
        st.write(0, b"base").expect("write");
        let root = st.refresh_digest();
        let snap = st.snapshot(10);
        assert_eq!(snap.seq, 10);
        assert_eq!(snap.root, root);

        st.modify(0, 4).expect("modify");
        st.write(0, b"tent").expect("write");
        assert_ne!(st.refresh_digest(), root);

        st.restore(&snap).expect("restore");
        assert_eq!(st.read_vec(0, 4).expect("read"), b"base");
        assert_eq!(st.refresh_digest(), root);
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut st = PagedState::new(2);
        st.modify(0, 1).expect("modify");
        st.write(0, &[1]).expect("write");
        st.refresh_digest();
        let snap = st.snapshot(1);
        st.modify(0, 1).expect("modify");
        st.write(0, &[2]).expect("write");
        // The snapshot still sees the old byte (copy-on-write).
        assert_eq!(snap.pages[0].as_ref().expect("page")[0], 1);
    }

    #[test]
    fn restore_geometry_mismatch() {
        let small = PagedState::new(2).snapshot(0);
        let mut big = PagedState::new(4);
        assert_eq!(big.restore(&small), Err(StateError::GeometryMismatch));
    }

    #[test]
    fn install_page_updates_tree() {
        let mut a = PagedState::new(4);
        let mut b = PagedState::new(4);
        a.modify(0, 4).expect("modify");
        a.write(0, b"sync").expect("write");
        let root_a = a.refresh_digest();

        let page0 = a.page(0).expect("materialized").to_vec();
        b.refresh_digest();
        b.install_page(0, Some(page0)).expect("install");
        assert_eq!(b.tree().root(), root_a);
        assert_eq!(b.read_vec(0, 4).expect("read"), b"sync");

        // Installing None restores the zero page.
        b.install_page(0, None).expect("install zero");
        assert_eq!(b.read_vec(0, 4).expect("read"), vec![0u8; 4]);
        assert!(b.install_page(99, None).is_err());
        assert!(b.install_page(0, Some(vec![0u8; 3])).is_err());
    }

    #[test]
    fn section_respects_bounds() {
        let mut st = PagedState::new(4);
        let sec = Section {
            base: PAGE_SIZE as u64,
            len: PAGE_SIZE as u64,
        };
        sec.modify(&mut st, 0, 4).expect("modify");
        sec.write(&mut st, 0, b"abcd").expect("write");
        let mut buf = [0u8; 4];
        sec.read(&st, 0, &mut buf).expect("read");
        assert_eq!(&buf, b"abcd");
        // Absolute placement is inside page 1.
        assert_eq!(st.read_vec(PAGE_SIZE as u64, 4).expect("read"), b"abcd");
        // Out-of-section access rejected even though in-region.
        assert!(matches!(
            sec.write(&mut st, sec.len - 1, b"xy"),
            Err(StateError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn refresh_counts_hashed_pages() {
        let mut st = PagedState::new(8);
        st.modify(0, PAGE_SIZE * 3).expect("modify");
        assert_eq!(st.dirty_pages(), 3);
        st.refresh_digest();
        assert_eq!(st.last_refresh_hashed(), 3);
        assert_eq!(st.dirty_pages(), 0);
    }
}
