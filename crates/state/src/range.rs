//! Key-range export/install over checkpoint snapshots — the state-transfer
//! primitive behind elastic resharding.
//!
//! A live shard split moves the keys of one hash span from a source PBFT
//! group to a freshly started target group. The bytes already exist in a
//! form the protocol trusts: the source's **stable checkpoint snapshot**,
//! whose Merkle root a quorum attested. This module extracts the moving
//! byte spans from such a snapshot — verifying every touched page against
//! the snapshot's own tree, exactly like tree-walk state transfer verifies
//! fetched pages — and packages them as a [`RangeExport`]: a verified,
//! wire-encodable list of `(offset, bytes)` chunks plus the root they were
//! extracted under.
//!
//! The caller (the deployment harness, or an operator tool) decides *which*
//! byte spans constitute the moving key range — that mapping is an
//! application-layout concern (e.g. the fixed KV slots whose stored key
//! hashes into the moved span). This module guarantees the mechanics: the
//! extracted bytes are exactly the attested checkpoint's bytes, and
//! installation follows the region's modify-before-write contract so the
//! written pages enter the target's next checkpoint like any ordered write.
//!
//! ```
//! use pbft_state::{PagedState, RangeExport};
//!
//! let mut source = PagedState::new(4);
//! source.modify(4096, 16).unwrap();
//! source.write(4096, b"moved-slot-bytes").unwrap();
//! source.refresh_digest();
//! let checkpoint = source.snapshot(10);
//!
//! // Export one 16-byte span; pages are verified against the tree.
//! let export = RangeExport::extract(&checkpoint, [(4096u64, 16usize)]).unwrap();
//! assert_eq!(export.root, checkpoint.root);
//!
//! // Round-trip the wire image and install on a fresh target region.
//! let export = RangeExport::decode(&export.encode()).unwrap();
//! let mut target = PagedState::new(4);
//! export.install(&mut target).unwrap();
//! assert_eq!(target.read_vec(4096, 16).unwrap(), b"moved-slot-bytes");
//! ```

use std::fmt;

use pbft_crypto::Digest;

use crate::region::{PagedState, StateError, PAGE_SIZE};
use crate::snapshot::Snapshot;

/// Why a range export could not be produced or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeError {
    /// A requested span leaves the snapshot's region.
    OutOfBounds {
        /// Start offset of the rejected span.
        offset: u64,
        /// Length of the rejected span.
        len: usize,
    },
    /// A page covering a requested span does not hash to the snapshot
    /// tree's leaf — the snapshot is internally corrupt, so nothing from
    /// it can be handed to another group.
    DigestMismatch {
        /// The page whose contents disagree with the tree.
        page: u64,
    },
    /// A wire image was truncated or structurally invalid.
    Malformed,
}

impl fmt::Display for RangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RangeError::OutOfBounds { offset, len } => {
                write!(f, "span at {offset} len {len} leaves the snapshot region")
            }
            RangeError::DigestMismatch { page } => {
                write!(f, "page {page} does not match the snapshot tree leaf")
            }
            RangeError::Malformed => write!(f, "malformed range-export image"),
        }
    }
}

impl std::error::Error for RangeError {}

/// A verified set of byte chunks extracted from one checkpoint snapshot,
/// ready to be carried to a target group and installed there. See the
/// module docs above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeExport {
    /// The Merkle root of the snapshot the chunks were extracted from —
    /// the quorum-attested provenance of every byte below.
    pub root: Digest,
    /// `(region offset, bytes)` chunks, in extraction order.
    pub chunks: Vec<(u64, Vec<u8>)>,
}

impl RangeExport {
    /// Extract `spans` (`(offset, len)` pairs) from `snapshot`, verifying
    /// every touched page against the snapshot's Merkle tree first.
    /// Zero-length spans are skipped; chunk order follows span order.
    ///
    /// # Errors
    /// [`RangeError::OutOfBounds`] if a span leaves the region,
    /// [`RangeError::DigestMismatch`] if a touched page's contents disagree
    /// with the tree (a corrupt snapshot must never be propagated).
    pub fn extract(
        snapshot: &Snapshot,
        spans: impl IntoIterator<Item = (u64, usize)>,
    ) -> Result<RangeExport, RangeError> {
        let region_len = snapshot.len();
        let mut chunks = Vec::new();
        for (offset, len) in spans {
            if len == 0 {
                continue;
            }
            if offset
                .checked_add(len as u64)
                .is_none_or(|e| e > region_len)
            {
                return Err(RangeError::OutOfBounds { offset, len });
            }
            let first = offset / PAGE_SIZE as u64;
            let last = (offset + len as u64 - 1) / PAGE_SIZE as u64;
            for page in first..=last {
                let actual = match snapshot.page(page) {
                    Some(data) => Digest::of(data),
                    None => Digest::of(&[0u8; PAGE_SIZE]),
                };
                if actual != snapshot.tree().leaf(page as usize) {
                    return Err(RangeError::DigestMismatch { page });
                }
            }
            let mut bytes = Vec::with_capacity(len);
            let mut at = offset;
            let end = offset + len as u64;
            while at < end {
                let page = at / PAGE_SIZE as u64;
                let in_page = (at % PAGE_SIZE as u64) as usize;
                let take = (PAGE_SIZE - in_page).min((end - at) as usize);
                match snapshot.page(page) {
                    Some(data) => bytes.extend_from_slice(&data[in_page..in_page + take]),
                    None => bytes.extend(std::iter::repeat_n(0u8, take)),
                }
                at += take as u64;
            }
            chunks.push((offset, bytes));
        }
        Ok(RangeExport {
            root: snapshot.root,
            chunks,
        })
    }

    /// Write every chunk into `state`, honoring the modify-before-write
    /// contract (the touched pages become part of the next checkpoint).
    ///
    /// # Errors
    /// [`StateError::OutOfBounds`] if a chunk leaves the target region —
    /// the target must be at least as large as the exported offsets reach.
    pub fn install(&self, state: &mut PagedState) -> Result<(), StateError> {
        for (offset, bytes) in &self.chunks {
            state.modify(*offset, bytes.len())?;
            state.write(*offset, bytes)?;
        }
        Ok(())
    }

    /// Total payload bytes across all chunks.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|(_, b)| b.len()).sum()
    }

    /// True when the export carries no bytes (an empty moved range).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical wire encoding: root, chunk count, then each chunk as
    /// big-endian offset + length-prefixed bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40 + self.len());
        out.extend_from_slice(self.root.as_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_be_bytes());
        for (offset, bytes) in &self.chunks {
            out.extend_from_slice(&offset.to_be_bytes());
            out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            out.extend_from_slice(bytes);
        }
        out
    }

    /// Decode an [`RangeExport::encode`] image.
    ///
    /// # Errors
    /// [`RangeError::Malformed`] on truncation or trailing bytes.
    pub fn decode(image: &[u8]) -> Result<RangeExport, RangeError> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], RangeError> {
            let s = image.get(*at..*at + n).ok_or(RangeError::Malformed)?;
            *at += n;
            Ok(s)
        };
        let root = Digest(take(&mut at, 32)?.try_into().expect("32 bytes"));
        let count = u32::from_be_bytes(take(&mut at, 4)?.try_into().expect("4 bytes"));
        let mut chunks = Vec::with_capacity(count.min(4096) as usize);
        for _ in 0..count {
            let offset = u64::from_be_bytes(take(&mut at, 8)?.try_into().expect("8 bytes"));
            let len = u32::from_be_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
            chunks.push((offset, take(&mut at, len)?.to_vec()));
        }
        if at != image.len() {
            return Err(RangeError::Malformed);
        }
        Ok(RangeExport { root, chunks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source_with(writes: &[(u64, &[u8])]) -> PagedState {
        let mut st = PagedState::new(4);
        for (off, data) in writes {
            st.modify(*off, data.len()).expect("modify");
            st.write(*off, data).expect("write");
        }
        st.refresh_digest();
        st
    }

    #[test]
    fn extract_install_roundtrip_across_pages() {
        // A span crossing a page boundary, plus one on a sparse page.
        let mut data = vec![0u8; 100];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8;
        }
        let off = PAGE_SIZE as u64 - 50;
        let st = source_with(&[(off, &data)]);
        let snap = st.snapshot(3);
        let export = RangeExport::extract(&snap, [(off, 100usize), (3 * PAGE_SIZE as u64, 8usize)])
            .expect("verifies");
        assert_eq!(export.root, snap.root);
        assert_eq!(export.len(), 108);
        assert!(!export.is_empty());
        assert_eq!(export.chunks[0].1, data, "boundary-crossing bytes exact");
        assert_eq!(export.chunks[1].1, vec![0u8; 8], "sparse page reads zero");

        let decoded = RangeExport::decode(&export.encode()).expect("roundtrip");
        assert_eq!(decoded, export);

        let mut target = PagedState::new(4);
        decoded.install(&mut target).expect("fits");
        assert_eq!(target.read_vec(off, 100).expect("read"), data);
        // Installed pages are dirty: they enter the next checkpoint.
        assert!(target.dirty_pages() > 0);
    }

    #[test]
    fn empty_spans_are_skipped() {
        let st = source_with(&[]);
        let export = RangeExport::extract(&st.snapshot(1), [(0u64, 0usize)]).expect("ok");
        assert!(export.is_empty());
        assert!(export.chunks.is_empty());
    }

    #[test]
    fn out_of_bounds_span_is_rejected() {
        let st = source_with(&[]);
        let snap = st.snapshot(1);
        assert_eq!(
            RangeExport::extract(&snap, [(snap.len() - 4, 8usize)]),
            Err(RangeError::OutOfBounds {
                offset: snap.len() - 4,
                len: 8
            })
        );
        assert_eq!(
            RangeExport::extract(&snap, [(u64::MAX, 8usize)]),
            Err(RangeError::OutOfBounds {
                offset: u64::MAX,
                len: 8
            })
        );
    }

    #[test]
    fn corrupt_snapshot_pages_are_refused() {
        let st = source_with(&[(0, b"attested")]);
        let mut snap = st.snapshot(1);
        // Corrupt the page behind the tree's back.
        let page = std::sync::Arc::make_mut(snap.pages[0].as_mut().expect("materialized"));
        page[0] ^= 0xFF;
        assert_eq!(
            RangeExport::extract(&snap, [(0u64, 8usize)]),
            Err(RangeError::DigestMismatch { page: 0 })
        );
    }

    #[test]
    fn malformed_images_are_rejected() {
        let st = source_with(&[(16, b"x")]);
        let export = RangeExport::extract(&st.snapshot(1), [(16u64, 1usize)]).expect("ok");
        let image = export.encode();
        assert!(RangeExport::decode(&image[..image.len() - 1]).is_err());
        let mut trailing = image.clone();
        trailing.push(7);
        assert!(RangeExport::decode(&trailing).is_err());
        assert!(RangeExport::decode(&[]).is_err());
    }

    #[test]
    fn install_rejects_a_too_small_target() {
        let st = source_with(&[(3 * PAGE_SIZE as u64, b"tail")]);
        let export =
            RangeExport::extract(&st.snapshot(1), [(3 * PAGE_SIZE as u64, 4usize)]).expect("ok");
        let mut small = PagedState::new(2);
        assert!(export.install(&mut small).is_err());
    }
}
