//! The PBFT state subsystem: a paged memory region with modify-notifications,
//! an incremental Merkle (hash) tree, copy-on-write checkpoints and tree-walk
//! state transfer.
//!
//! This reproduces the state machinery the paper describes in §2.1 and
//! critiques in §3.2:
//!
//! > "This implementation defines application 'state' as a single continuous
//! > virtual memory region. ... The library has a subsystem that manages the
//! > synchronization and checkpointing of this state using copy-on-write
//! > techniques and Merkle (hash) trees. ... A checkpoint message communicates
//! > this root hash to the rest of the replicas ... If a peer finds itself out
//! > of sync, an efficient tree walking algorithm is started from the root, to
//! > identify the (hopefully few) data pages that are different and have them
//! > retransmitted by the rest of the group."
//!
//! The application **must** call [`PagedState::modify`] before writing — the
//! same contract the PBFT library imposes. Unlike the original (where a
//! missed notification silently corrupts synchronization, the "havoc" of
//! §3.2), this implementation *enforces* the contract: writes to unnotified
//! pages return [`StateError::NotModified`].
//!
//! Pages are lazily allocated (`None` = all-zero page), which is the moral
//! equivalent of the sparse file trick the paper uses to give SQLite a large
//! fixed-size region without occupying disk (§3.2).
//!
//! The whole contract in one example — modify-before-write, digests over
//! pages, and the tree-walk transfer reconciling a diverged replica:
//!
//! ```
//! use pbft_state::{serve_fetch, Fetcher, PagedState, StateError};
//!
//! let mut up_to_date = PagedState::new(8);
//! // The modify-notification contract is enforced, not advisory:
//! assert!(matches!(
//!     up_to_date.write(4096, b"unnotified"),
//!     Err(StateError::NotModified { page: 1 })
//! ));
//! up_to_date.modify(4096, 10).unwrap();
//! up_to_date.write(4096, b"checkpoint").unwrap();
//! let root = up_to_date.refresh_digest();
//! let checkpoint = up_to_date.snapshot(1);
//!
//! // A diverged replica walks the tree and fetches only differing pages.
//! let mut behind = PagedState::new(8);
//! behind.refresh_digest();
//! let (mut fetcher, mut requests) = Fetcher::new(behind.tree(), root);
//! while let Some(req) = requests.pop() {
//!     let resp = serve_fetch(&checkpoint, &req);
//!     requests.extend(fetcher.on_response(behind.tree(), resp).unwrap());
//!     for (page, data) in fetcher.take_ready() {
//!         behind.install_page(page, data).unwrap();
//!     }
//! }
//! assert!(fetcher.is_complete());
//! assert_eq!(behind.refresh_digest(), root, "one differing page, transferred");
//! ```

#![warn(missing_docs)]

mod codec;
mod merkle;
mod range;
mod region;
mod snapshot;
mod transfer;

pub use codec::{BlobCell, CodecError, SlotRing};
pub use merkle::MerkleTree;
pub use range::{RangeError, RangeExport};
pub use region::{PagedState, Section, StateError, PAGE_SIZE};
pub use snapshot::Snapshot;
pub use transfer::{serve_fetch, FetchRequest, FetchResponse, Fetcher, TransferError};
