//! The distributed Internet e-voting service — the paper's motivating
//! application (§1): "clients (on behalf of users/voters) connect to the
//! voting service, view the election procedures to which they have a right
//! to participate, send the user's vote, and potentially reconnect at a
//! later point to view the progress and/or results of the election."
//!
//! The service is built on the full stack this repository reproduces:
//! dynamic client membership for voter sign-on (§3.1, with the
//! identification buffer carrying credentials checked against a replicated
//! voter registry), the SQL state abstraction for ACID vote storage (§3.2 —
//! a cast vote is exactly the paper's benchmark row: key, value, timestamp,
//! random), and deterministic `now()`/`random()` from the agreed
//! non-deterministic data (§2.5).
//!
//! Voter identity is bound server-side: the replicas record the vote under
//! the *session's* client id, so a malicious client cannot vote on someone
//! else's behalf by crafting operations.

mod app;
mod ops;

pub mod certificate;

pub use app::{EvotingApp, EVOTING_SCHEMA};
pub use certificate::{assemble_certificate, verify_certificate, CertifyReply, TallyCertificate};
pub use ops::{cross_precinct_ballot, decode_tally, idbuf, VoteOp};
