//! Threshold-signed tally certificates — the §3.3.1 fix, applied.
//!
//! The paper: "an adversary can obtain access to one of the execution
//! replicas, wait until it becomes the primary and use predetermined values
//! instead of random values. ... To alleviate such attacks, one solution
//! would be to enforce a threshold signature scheme for such authentication
//! requirements, provided for by the middleware library. In such a scheme,
//! private key information for each replica would never be transmitted over
//! the network ... In a (f + 1, n) (where n = 3f + 1) threshold signature
//! scheme, the set of n replicas would collectively generate a digital
//! signature despite up to f byzantine faults."
//!
//! Here the scheme certifies election results: each replica holds a Shamir
//! share of a group signing secret (dealt at deployment; never stored in
//! the *shared* state, so it never moves over the network), and answers a
//! [`VoteOp::Certify`](crate::VoteOp) request with its canonical tally plus
//! a partial signature. Any f+1 matching answers combine into a
//! [`GroupSignature`] a third party can verify against the public group
//! descriptor — no single replica (nor any f of them) can forge it.

use pbft_crypto::threshold::{
    combine, GroupSignature, PartialSignature, ThresholdError, ThresholdGroup,
};

use crate::ops::decode_tally;

/// A replica's answer to a Certify request: its partial signature over the
/// canonical tally bytes, followed by the tally itself.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifyReply {
    /// This replica's partial signature.
    pub partial: PartialSignature,
    /// Canonical tally reply bytes (identical on every correct replica).
    pub tally: Vec<u8>,
}

impl CertifyReply {
    /// Wire-encode: x (4) + weighted contribution (8) + tally bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.tally.len());
        out.extend_from_slice(&self.partial.x.to_be_bytes());
        out.extend_from_slice(&self.partial.weighted.to_be_bytes());
        out.extend_from_slice(&self.tally);
        out
    }

    /// Decode a reply body.
    pub fn decode(bytes: &[u8]) -> Option<CertifyReply> {
        if bytes.len() < 12 {
            return None;
        }
        let x = u32::from_be_bytes(bytes[..4].try_into().ok()?);
        let weighted = u64::from_be_bytes(bytes[4..12].try_into().ok()?);
        Some(CertifyReply {
            partial: PartialSignature { x, weighted },
            tally: bytes[12..].to_vec(),
        })
    }
}

/// A combined, independently verifiable election-result certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct TallyCertificate {
    /// The certified tally: `(choice, count)` pairs.
    pub tally: Vec<(String, i64)>,
    /// Canonical tally bytes the signature covers.
    pub tally_bytes: Vec<u8>,
    /// The group signature.
    pub signature: GroupSignature,
}

/// Certificate-assembly errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CertificateError {
    /// Replies disagree on the tally bytes (a Byzantine replica answered).
    TallyMismatch,
    /// The tally bytes do not decode as a tally.
    BadTally,
    /// Threshold-combination failure.
    Threshold(ThresholdError),
}

impl std::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateError::TallyMismatch => write!(f, "replicas disagree on the tally"),
            CertificateError::BadTally => write!(f, "tally bytes do not decode"),
            CertificateError::Threshold(e) => write!(f, "threshold combination: {e}"),
        }
    }
}

impl std::error::Error for CertificateError {}

impl From<ThresholdError> for CertificateError {
    fn from(e: ThresholdError) -> Self {
        CertificateError::Threshold(e)
    }
}

/// Combine f+1 (or more) Certify replies into a verifiable certificate.
///
/// All replies must carry byte-identical tallies — a mismatch means some
/// replica lied, and the caller should gather a different reply set.
///
/// # Errors
/// [`CertificateError`] on disagreement, undecodable tallies, or too few
/// distinct partials.
pub fn assemble_certificate(
    group: &ThresholdGroup,
    replies: &[CertifyReply],
) -> Result<TallyCertificate, CertificateError> {
    let Some(first) = replies.first() else {
        return Err(CertificateError::Threshold(
            ThresholdError::NotEnoughShares {
                needed: group.threshold(),
                got: 0,
            },
        ));
    };
    if replies.iter().any(|r| r.tally != first.tally) {
        return Err(CertificateError::TallyMismatch);
    }
    let tally = decode_tally(&first.tally).ok_or(CertificateError::BadTally)?;
    let partials: Vec<PartialSignature> = replies.iter().map(|r| r.partial).collect();
    let signature = combine(group, &partials, &first.tally)?;
    Ok(TallyCertificate {
        tally,
        tally_bytes: first.tally.clone(),
        signature,
    })
}

/// Third-party verification: does `certificate` prove `tally_bytes` was
/// endorsed by at least a weak quorum of the group?
pub fn verify_certificate(group: &ThresholdGroup, certificate: &TallyCertificate) -> bool {
    group.verify(&certificate.tally_bytes, &certificate.signature)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbft_crypto::threshold::{partial_sign, SecretShare, ThresholdGroup};

    fn deal() -> (ThresholdGroup, Vec<SecretShare>) {
        ThresholdGroup::deal(0xE1EC, 2, 4) // f = 1: (f+1, 3f+1) = (2, 4)
    }

    /// A canonical tally reply as `SqlApp` encodes it.
    fn tally_bytes() -> Vec<u8> {
        use minisql::{Rows, Value};
        let rows = Rows {
            columns: vec!["choice".into(), "COUNT(*)".into()],
            rows: vec![
                vec![Value::Text("pbft".into()), Value::Integer(3)],
                vec![Value::Text("raft".into()), Value::Integer(1)],
            ],
        };
        pbft_sql::encode_outcome(&Ok(minisql::ExecOutcome::Rows(rows)))
    }

    fn replies(shares: &[SecretShare], who: &[u32], tally: &[u8]) -> Vec<CertifyReply> {
        who.iter()
            .map(|&x| CertifyReply {
                partial: partial_sign(&shares[(x - 1) as usize], who),
                tally: tally.to_vec(),
            })
            .collect()
    }

    #[test]
    fn certificate_roundtrip_and_verification() {
        let (group, shares) = deal();
        let tally = tally_bytes();
        let replies = replies(&shares, &[1, 3], &tally);
        let cert = assemble_certificate(&group, &replies).expect("assemble");
        assert_eq!(
            cert.tally,
            vec![("pbft".to_string(), 3), ("raft".to_string(), 1)]
        );
        assert!(verify_certificate(&group, &cert));
    }

    #[test]
    fn any_weak_quorum_produces_the_same_valid_signature() {
        let (group, shares) = deal();
        let tally = tally_bytes();
        for who in [[1u32, 2], [2, 3], [3, 4], [1, 4]] {
            let cert =
                assemble_certificate(&group, &replies(&shares, &who, &tally)).expect("assemble");
            assert!(verify_certificate(&group, &cert), "set {who:?}");
        }
    }

    #[test]
    fn forged_tally_fails_verification() {
        let (group, shares) = deal();
        let tally = tally_bytes();
        let cert =
            assemble_certificate(&group, &replies(&shares, &[1, 2], &tally)).expect("assemble");
        let mut forged = cert.clone();
        forged.tally_bytes[12] ^= 0xff;
        assert!(!verify_certificate(&group, &forged));
    }

    #[test]
    fn single_replica_cannot_certify() {
        let (group, shares) = deal();
        let tally = tally_bytes();
        let err = assemble_certificate(&group, &replies(&shares, &[2], &tally)).unwrap_err();
        assert!(matches!(err, CertificateError::Threshold(_)));
    }

    #[test]
    fn mismatched_tallies_detected() {
        let (group, shares) = deal();
        let tally = tally_bytes();
        let mut rs = replies(&shares, &[1, 2], &tally);
        rs[1].tally[9] ^= 1;
        assert_eq!(
            assemble_certificate(&group, &rs),
            Err(CertificateError::TallyMismatch)
        );
    }

    #[test]
    fn reply_encoding_roundtrips() {
        let (_, shares) = deal();
        let reply = CertifyReply {
            partial: partial_sign(&shares[0], &[1, 2]),
            tally: tally_bytes(),
        };
        assert_eq!(CertifyReply::decode(&reply.encode()), Some(reply));
        assert_eq!(CertifyReply::decode(&[1, 2, 3]), None);
    }
}
