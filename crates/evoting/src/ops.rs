//! Client-visible operations and their wire encoding.

use minisql::Value;
use pbft_sql::{decode_outcome, WireOutcome};

/// An e-voting operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VoteOp {
    /// Create a new election (administrative).
    CreateElection {
        /// Human-readable election title.
        title: String,
    },
    /// Cast (or replace) this session's vote in an election.
    CastVote {
        /// Election id.
        election: i64,
        /// The chosen option.
        choice: String,
    },
    /// Tally the votes of an election (read-only).
    Tally {
        /// Election id.
        election: i64,
    },
    /// List elections (read-only).
    ListElections,
    /// What did this session vote? (read-only)
    MyVote {
        /// Election id.
        election: i64,
    },
    /// Request this replica's partial threshold signature over the tally
    /// (read-only; the §3.3.1 certificate flow — see [`crate::certificate`]).
    Certify {
        /// Election id.
        election: i64,
        /// The weak-quorum signer set (1-based evaluation points) the
        /// requester intends to combine.
        participants: Vec<u32>,
    },
}

impl VoteOp {
    /// Is this operation safe for the PBFT read-only fast path?
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            VoteOp::Tally { .. }
                | VoteOp::ListElections
                | VoteOp::MyVote { .. }
                | VoteOp::Certify { .. }
        )
    }

    /// The operation's stable shard key, for routing in sharded multi-group
    /// deployments: all traffic of one election lands on one PBFT group (so
    /// casting, tallying and certifying election *e* serialize in a single
    /// total order), keyed by the election id's big-endian bytes.
    /// Election-catalog operations (`CreateElection`, `ListElections`) share
    /// the constant catalog key so the catalog itself lives on one group.
    pub fn shard_key(&self) -> Vec<u8> {
        match self {
            VoteOp::CreateElection { .. } | VoteOp::ListElections => b"#elections".to_vec(),
            VoteOp::CastVote { election, .. }
            | VoteOp::Tally { election }
            | VoteOp::MyVote { election }
            | VoteOp::Certify { election, .. } => election.to_be_bytes().to_vec(),
        }
    }

    /// Encode for transport inside a PBFT request.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            VoteOp::CreateElection { title } => {
                out.push(1);
                out.extend_from_slice(title.as_bytes());
            }
            VoteOp::CastVote { election, choice } => {
                out.push(2);
                out.extend_from_slice(&election.to_be_bytes());
                out.extend_from_slice(choice.as_bytes());
            }
            VoteOp::Tally { election } => {
                out.push(3);
                out.extend_from_slice(&election.to_be_bytes());
            }
            VoteOp::ListElections => out.push(4),
            VoteOp::MyVote { election } => {
                out.push(5);
                out.extend_from_slice(&election.to_be_bytes());
            }
            VoteOp::Certify {
                election,
                participants,
            } => {
                out.push(6);
                out.extend_from_slice(&election.to_be_bytes());
                out.push(participants.len() as u8);
                for p in participants {
                    out.extend_from_slice(&p.to_be_bytes());
                }
            }
        }
        out
    }

    /// Decode from request bytes.
    pub fn decode(bytes: &[u8]) -> Option<VoteOp> {
        let (&tag, rest) = bytes.split_first()?;
        Some(match tag {
            1 => VoteOp::CreateElection {
                title: String::from_utf8(rest.to_vec()).ok()?,
            },
            2 => {
                let election = i64::from_be_bytes(rest.get(..8)?.try_into().ok()?);
                let choice = String::from_utf8(rest.get(8..)?.to_vec()).ok()?;
                VoteOp::CastVote { election, choice }
            }
            3 => VoteOp::Tally {
                election: i64::from_be_bytes(rest.get(..8)?.try_into().ok()?),
            },
            4 => VoteOp::ListElections,
            5 => VoteOp::MyVote {
                election: i64::from_be_bytes(rest.get(..8)?.try_into().ok()?),
            },
            6 => {
                let election = i64::from_be_bytes(rest.get(..8)?.try_into().ok()?);
                let count = *rest.get(8)? as usize;
                let mut participants = Vec::with_capacity(count);
                for i in 0..count {
                    let off = 9 + i * 4;
                    participants.push(u32::from_be_bytes(rest.get(off..off + 4)?.try_into().ok()?));
                }
                VoteOp::Certify {
                    election,
                    participants,
                }
            }
            _ => return None,
        })
    }
}

/// A cross-precinct ballot: cast the same choice in several precinct
/// elections **atomically** (all precincts record it, or none do).
///
/// In a sharded deployment each election's traffic lives on the PBFT group
/// owning its id (see [`VoteOp::shard_key`]), so a multi-precinct ballot is
/// inherently cross-shard: the returned `(shard key, encoded op)` pairs are
/// the per-precinct sub-operations to feed into the two-phase commit of
/// `pbft_core::xshard` (one sub-op per election, each single-shard by
/// construction). Because every committed ballot adds exactly one vote in
/// *every* named precinct, equal per-precinct vote totals across the slate
/// double as a cheap atomicity audit.
pub fn cross_precinct_ballot(elections: &[i64], choice: &str) -> Vec<(Vec<u8>, Vec<u8>)> {
    elections
        .iter()
        .map(|&election| {
            let op = VoteOp::CastVote {
                election,
                choice: choice.to_string(),
            };
            (op.shard_key(), op.encode())
        })
        .collect()
}

/// Build the application identification buffer for the Join (§3.1): the
/// credentials the replicated voter registry checks.
pub fn idbuf(user: &str, secret: &str) -> Vec<u8> {
    format!("{user}:{secret}").into_bytes()
}

/// Decode a tally reply into `(choice, count)` pairs.
pub fn decode_tally(reply: &[u8]) -> Option<Vec<(String, i64)>> {
    match decode_outcome(reply)? {
        WireOutcome::Rows(rows) => rows
            .rows
            .into_iter()
            .map(|r| match (r.first(), r.get(1)) {
                (Some(Value::Text(c)), Some(Value::Integer(n))) => Some((c.clone(), *n)),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_roundtrip() {
        for op in [
            VoteOp::CreateElection {
                title: "Board 2026".into(),
            },
            VoteOp::CastVote {
                election: 3,
                choice: "alice".into(),
            },
            VoteOp::Tally { election: 3 },
            VoteOp::ListElections,
            VoteOp::MyVote { election: 1 },
            VoteOp::Certify {
                election: 2,
                participants: vec![1, 3],
            },
        ] {
            assert_eq!(VoteOp::decode(&op.encode()), Some(op));
        }
    }

    #[test]
    fn shard_keys_group_by_election() {
        let cast = VoteOp::CastVote {
            election: 3,
            choice: "alice".into(),
        };
        let tally = VoteOp::Tally { election: 3 };
        assert_eq!(
            cast.shard_key(),
            tally.shard_key(),
            "one election, one shard"
        );
        assert_ne!(tally.shard_key(), VoteOp::Tally { election: 4 }.shard_key());
        // Catalog ops share the catalog key.
        let create = VoteOp::CreateElection { title: "a".into() };
        assert_eq!(create.shard_key(), VoteOp::ListElections.shard_key());
    }

    #[test]
    fn read_only_classification() {
        assert!(!VoteOp::CreateElection { title: "x".into() }.is_read_only());
        assert!(!VoteOp::CastVote {
            election: 1,
            choice: "y".into()
        }
        .is_read_only());
        assert!(VoteOp::Tally { election: 1 }.is_read_only());
        assert!(VoteOp::ListElections.is_read_only());
        assert!(VoteOp::MyVote { election: 1 }.is_read_only());
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(VoteOp::decode(&[]), None);
        assert_eq!(VoteOp::decode(&[99]), None);
        assert_eq!(VoteOp::decode(&[2, 1]), None);
    }

    #[test]
    fn cross_precinct_ballot_is_one_sub_op_per_election() {
        let subs = cross_precinct_ballot(&[3, 7], "alice");
        assert_eq!(subs.len(), 2);
        assert_eq!(
            subs[0].0,
            3i64.to_be_bytes().to_vec(),
            "keyed by election id"
        );
        assert_ne!(subs[0].0, subs[1].0);
        for (key, op) in &subs {
            let decoded = VoteOp::decode(op).expect("sub-ops decode");
            match &decoded {
                VoteOp::CastVote { choice, .. } => assert_eq!(choice, "alice"),
                other => panic!("{other:?}"),
            }
            assert_eq!(
                &decoded.shard_key(),
                key,
                "sub-op keys match the op's own key"
            );
        }
    }

    #[test]
    fn idbuf_format() {
        assert_eq!(idbuf("alice", "s3cret"), b"alice:s3cret".to_vec());
    }
}
