//! The server-side e-voting application.

use minisql::JournalMode;
use pbft_core::app::{App, ExecMetrics, NonDet, StateHandle};
use pbft_core::types::ClientId;
use pbft_sql::{CostProfile, SqlApp};

use pbft_crypto::threshold::{partial_sign, SecretShare};

use crate::certificate::CertifyReply;
use crate::ops::VoteOp;

/// The replicated schema: elections, votes (the §4.2 benchmark row shape:
/// key, value, timestamp, random) and the voter registry the Join
/// authorization checks.
pub const EVOTING_SCHEMA: &str = "\
CREATE TABLE elections (id INTEGER PRIMARY KEY, title TEXT NOT NULL, open INTEGER NOT NULL);\
CREATE TABLE votes (id INTEGER PRIMARY KEY, election INTEGER NOT NULL, voter TEXT NOT NULL, \
choice TEXT NOT NULL, ts INTEGER, rnd INTEGER);\
CREATE TABLE voters (id INTEGER PRIMARY KEY, user TEXT NOT NULL, secret TEXT NOT NULL)";

/// Escape a string for inclusion in a SQL single-quoted literal.
fn sql_str(s: &str) -> String {
    s.replace('\'', "''")
}

/// The e-voting [`App`]: decodes [`VoteOp`]s, binds voter identity to the
/// PBFT session, and executes SQL over the replicated database.
pub struct EvotingApp {
    sql: SqlApp,
    /// This replica's threshold-signature share (§3.3.1), if dealt. Lives
    /// only in replica-local memory — never in the shared state region, so
    /// it is never transmitted by checkpoints or state transfer.
    threshold_share: Option<SecretShare>,
}

impl std::fmt::Debug for EvotingApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvotingApp").finish()
    }
}

impl EvotingApp {
    /// Open the service over a replica's state region; `voters` seeds the
    /// registry on first creation (deterministic across replicas).
    ///
    /// # Panics
    /// Panics if the region is too small for the schema — a deployment
    /// configuration error surfaced at construction.
    pub fn open(
        state: StateHandle,
        journal_mode: JournalMode,
        voters: &[(&str, &str)],
    ) -> EvotingApp {
        let mut setup = EVOTING_SCHEMA.to_string();
        for (user, secret) in voters {
            setup.push_str(&format!(
                ";INSERT INTO voters (user, secret) VALUES ('{}', '{}')",
                sql_str(user),
                sql_str(secret)
            ));
        }
        let sql = SqlApp::open(state, journal_mode, CostProfile::default(), Some(&setup))
            .expect("state region large enough for the e-voting schema");
        EvotingApp {
            sql,
            threshold_share: None,
        }
    }

    /// Install this replica's share of the group signing secret (dealt at
    /// deployment; enables [`VoteOp::Certify`]).
    pub fn set_threshold_share(&mut self, share: SecretShare) {
        self.threshold_share = Some(share);
    }

    /// Direct database access (tests and inspection).
    pub fn sql_mut(&mut self) -> &mut SqlApp {
        &mut self.sql
    }

    fn op_to_sql(&self, client: ClientId, op: &VoteOp) -> String {
        // Voter identity is the *session*, not anything client-supplied.
        let voter = format!("voter-{}", client.0);
        match op {
            VoteOp::CreateElection { title } => format!(
                "INSERT INTO elections (title, open) VALUES ('{}', 1)",
                sql_str(title)
            ),
            VoteOp::CastVote { election, choice } => format!(
                "BEGIN;\
                 DELETE FROM votes WHERE election = {election} AND voter = '{voter}';\
                 INSERT INTO votes (election, voter, choice, ts, rnd) \
                 VALUES ({election}, '{voter}', '{}', now(), random());\
                 COMMIT",
                sql_str(choice)
            ),
            VoteOp::Tally { election } => format!(
                "SELECT choice, COUNT(*) FROM votes WHERE election = {election} \
                 GROUP BY choice ORDER BY choice"
            ),
            VoteOp::ListElections => {
                "SELECT id, title, open FROM elections ORDER BY id".to_string()
            }
            VoteOp::MyVote { election } => format!(
                "SELECT choice FROM votes WHERE election = {election} AND voter = '{voter}'"
            ),
            // Handled before SQL generation (needs the threshold share);
            // reaching here is a bug.
            VoteOp::Certify { .. } => unreachable!("certify is intercepted in execute"),
        }
    }
}

impl App for EvotingApp {
    fn execute(
        &mut self,
        client: ClientId,
        op: &[u8],
        nondet: &NonDet,
        read_only: bool,
    ) -> (Vec<u8>, ExecMetrics) {
        let Some(vote_op) = VoteOp::decode(op) else {
            return (b"err:malformed operation".to_vec(), ExecMetrics::default());
        };
        if read_only && !vote_op.is_read_only() {
            return (
                b"err:write op on read-only path".to_vec(),
                ExecMetrics::default(),
            );
        }
        if let VoteOp::Certify {
            election,
            participants,
        } = &vote_op
        {
            let Some(share) = self.threshold_share else {
                return (
                    b"err:no threshold share dealt".to_vec(),
                    ExecMetrics::default(),
                );
            };
            if !participants.contains(&share.x) {
                return (
                    b"err:this replica is not in the signer set".to_vec(),
                    ExecMetrics::default(),
                );
            }
            let tally_sql = self.op_to_sql(
                client,
                &VoteOp::Tally {
                    election: *election,
                },
            );
            let (tally, metrics) = self.sql.execute(client, tally_sql.as_bytes(), nondet, true);
            let reply = CertifyReply {
                partial: partial_sign(&share, participants),
                tally,
            };
            return (reply.encode(), metrics);
        }
        let sql = self.op_to_sql(client, &vote_op);
        self.sql.execute(
            client,
            sql.as_bytes(),
            nondet,
            read_only && vote_op.is_read_only(),
        )
    }

    /// Check credentials against the replicated voter registry (§3.1's
    /// application-level identification buffer: "It might include, for
    /// example, an encrypted user id and password").
    fn authorize_join(&mut self, idbuf: &[u8]) -> Option<Vec<u8>> {
        let text = std::str::from_utf8(idbuf).ok()?;
        let (user, secret) = text.split_once(':')?;
        let sql = format!(
            "SELECT COUNT(*) FROM voters WHERE user = '{}' AND secret = '{}'",
            sql_str(user),
            sql_str(secret)
        );
        let rows = self.sql.db_mut().query(&sql).ok()?;
        match rows.rows.first().and_then(|r| r.first()) {
            Some(minisql::Value::Integer(n)) if *n > 0 => Some(user.as_bytes().to_vec()),
            _ => None,
        }
    }

    fn on_state_installed(&mut self) {
        self.sql.on_state_installed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::decode_tally;
    use minisql::Value;
    use pbft_sql::{decode_outcome, sql_state, WireOutcome};

    fn nd(ts: u64) -> NonDet {
        NonDet {
            timestamp_ns: ts,
            random: ts ^ 0xabcd,
        }
    }

    fn service() -> EvotingApp {
        EvotingApp::open(
            sql_state(64),
            JournalMode::Rollback,
            &[("alice", "pw-a"), ("bob", "pw-b")],
        )
    }

    #[test]
    fn election_lifecycle() {
        let mut app = service();
        let (reply, _) = app.execute(
            ClientId(1),
            &VoteOp::CreateElection {
                title: "Board".into(),
            }
            .encode(),
            &nd(1),
            false,
        );
        assert_eq!(decode_outcome(&reply), Some(WireOutcome::Affected(1)));

        // Three voters cast votes; one revises theirs.
        for (client, choice) in [(1u64, "yes"), (2, "no"), (3, "yes"), (2, "yes")] {
            let (reply, metrics) = app.execute(
                ClientId(client),
                &VoteOp::CastVote {
                    election: 1,
                    choice: choice.into(),
                }
                .encode(),
                &nd(10 + client),
                false,
            );
            // The cast is a BEGIN..COMMIT script; its outcome is the COMMIT.
            assert!(
                matches!(
                    decode_outcome(&reply),
                    Some(WireOutcome::Done) | Some(WireOutcome::Affected(_))
                ),
                "cast failed: {reply:?}"
            );
            assert!(metrics.disk_flushes > 0, "ACID vote storage flushes");
        }

        let (reply, _) = app.execute(
            ClientId(9),
            &VoteOp::Tally { election: 1 }.encode(),
            &nd(99),
            true,
        );
        let tally = decode_tally(&reply).expect("tally");
        assert_eq!(tally, vec![("yes".to_string(), 3)], "re-vote replaced 'no'");
    }

    #[test]
    fn my_vote_is_session_bound() {
        let mut app = service();
        app.execute(
            ClientId(1),
            &VoteOp::CreateElection { title: "X".into() }.encode(),
            &nd(1),
            false,
        );
        app.execute(
            ClientId(7),
            &VoteOp::CastVote {
                election: 1,
                choice: "blue".into(),
            }
            .encode(),
            &nd(2),
            false,
        );
        let (reply, _) = app.execute(
            ClientId(7),
            &VoteOp::MyVote { election: 1 }.encode(),
            &nd(3),
            true,
        );
        match decode_outcome(&reply) {
            Some(WireOutcome::Rows(rows)) => {
                assert_eq!(rows.rows[0][0], Value::Text("blue".into()));
            }
            other => panic!("{other:?}"),
        }
        // A different session sees no vote.
        let (reply, _) = app.execute(
            ClientId(8),
            &VoteOp::MyVote { election: 1 }.encode(),
            &nd(4),
            true,
        );
        match decode_outcome(&reply) {
            Some(WireOutcome::Rows(rows)) => assert!(rows.rows.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn authorization_checks_registry() {
        let mut app = service();
        assert_eq!(app.authorize_join(b"alice:pw-a"), Some(b"alice".to_vec()));
        assert_eq!(app.authorize_join(b"alice:wrong"), None);
        assert_eq!(app.authorize_join(b"mallory:pw-a"), None);
        assert_eq!(app.authorize_join(b"garbage"), None);
        // SQL injection in credentials does not help.
        assert_eq!(app.authorize_join(b"alice' -- : x"), None);
        assert_eq!(app.authorize_join(b"x:' OR '1'='1"), None);
    }

    #[test]
    fn malformed_ops_rejected_deterministically() {
        let mut a = service();
        let mut b = service();
        let (ra, _) = a.execute(ClientId(1), &[0xff, 0x01], &nd(1), false);
        let (rb, _) = b.execute(ClientId(1), &[0xff, 0x01], &nd(1), false);
        assert_eq!(ra, rb);
        assert!(ra.starts_with(b"err:"));
    }

    #[test]
    fn write_op_on_read_only_path_rejected() {
        let mut app = service();
        let (reply, _) = app.execute(
            ClientId(1),
            &VoteOp::CastVote {
                election: 1,
                choice: "x".into(),
            }
            .encode(),
            &nd(1),
            true,
        );
        assert!(reply.starts_with(b"err:"));
    }

    #[test]
    fn list_elections() {
        let mut app = service();
        for title in ["A", "B"] {
            app.execute(
                ClientId(1),
                &VoteOp::CreateElection {
                    title: title.into(),
                }
                .encode(),
                &nd(1),
                false,
            );
        }
        let (reply, _) = app.execute(ClientId(1), &VoteOp::ListElections.encode(), &nd(2), true);
        match decode_outcome(&reply) {
            Some(WireOutcome::Rows(rows)) => {
                assert_eq!(rows.rows.len(), 2);
                assert_eq!(rows.rows[0][1], Value::Text("A".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deterministic_across_replicas() {
        let mut a = service();
        let mut b = service();
        let ops = [
            VoteOp::CreateElection { title: "E".into() }.encode(),
            VoteOp::CastVote {
                election: 1,
                choice: "yes".into(),
            }
            .encode(),
            VoteOp::Tally { election: 1 }.encode(),
        ];
        for (i, op) in ops.iter().enumerate() {
            let (ra, _) = a.execute(ClientId(5), op, &nd(i as u64), false);
            let (rb, _) = b.execute(ClientId(5), op, &nd(i as u64), false);
            assert_eq!(ra, rb, "op {i}");
        }
    }
}
