//! Row (record) serialization: the payload stored in table B+tree leaves.

use crate::error::SqlError;
use crate::value::Value;

/// Serialize a row of values.
pub fn encode_row(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + values.len() * 8);
    out.extend_from_slice(&(values.len() as u16).to_be_bytes());
    for v in values {
        match v {
            Value::Null => out.push(0),
            Value::Integer(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_be_bytes());
            }
            Value::Real(r) => {
                out.push(2);
                out.extend_from_slice(&r.to_bits().to_be_bytes());
            }
            Value::Text(t) => {
                out.push(3);
                out.extend_from_slice(&(t.len() as u32).to_be_bytes());
                out.extend_from_slice(t.as_bytes());
            }
            Value::Blob(b) => {
                out.push(4);
                out.extend_from_slice(&(b.len() as u32).to_be_bytes());
                out.extend_from_slice(b);
            }
        }
    }
    out
}

/// Deserialize a row.
///
/// # Errors
/// [`SqlError::Corrupt`] on malformed payloads.
pub fn decode_row(data: &[u8]) -> Result<Vec<Value>, SqlError> {
    let corrupt = |m: &str| SqlError::Corrupt(format!("record: {m}"));
    if data.len() < 2 {
        return Err(corrupt("short header"));
    }
    let n = u16::from_be_bytes([data[0], data[1]]) as usize;
    let mut pos = 2usize;
    let mut out = Vec::with_capacity(n);
    let take = |pos: &mut usize, len: usize| -> Result<&[u8], SqlError> {
        if *pos + len > data.len() {
            return Err(SqlError::Corrupt("record: truncated field".into()));
        }
        let s = &data[*pos..*pos + len];
        *pos += len;
        Ok(s)
    };
    for _ in 0..n {
        let tag = *take(&mut pos, 1)?.first().expect("one byte");
        out.push(match tag {
            0 => Value::Null,
            1 => Value::Integer(i64::from_be_bytes(
                take(&mut pos, 8)?.try_into().expect("8 bytes"),
            )),
            2 => Value::Real(f64::from_bits(u64::from_be_bytes(
                take(&mut pos, 8)?.try_into().expect("8 bytes"),
            ))),
            3 => {
                let len =
                    u32::from_be_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
                let bytes = take(&mut pos, len)?;
                Value::Text(
                    String::from_utf8(bytes.to_vec())
                        .map_err(|_| corrupt("invalid utf-8 in text"))?,
                )
            }
            4 => {
                let len =
                    u32::from_be_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
                Value::Blob(take(&mut pos, len)?.to_vec())
            }
            other => return Err(corrupt(&format!("unknown value tag {other}"))),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let row = vec![
            Value::Null,
            Value::Integer(-42),
            Value::Real(1.5),
            Value::Text("héllo".into()),
            Value::Blob(vec![0, 1, 2, 255]),
        ];
        let bytes = encode_row(&row);
        assert_eq!(decode_row(&bytes).expect("decode"), row);
    }

    #[test]
    fn empty_row() {
        let bytes = encode_row(&[]);
        assert_eq!(decode_row(&bytes).expect("decode"), Vec::<Value>::new());
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode_row(&[Value::Text("hello".into())]);
        assert!(decode_row(&bytes[..bytes.len() - 2]).is_err());
        assert!(decode_row(&[]).is_err());
        assert!(decode_row(&[0, 1, 9]).is_err());
    }

    #[test]
    fn nan_and_negative_zero_roundtrip() {
        let row = vec![Value::Real(f64::NAN), Value::Real(-0.0)];
        let bytes = encode_row(&row);
        let back = decode_row(&bytes).expect("decode");
        match (&back[0], &back[1]) {
            (Value::Real(a), Value::Real(b)) => {
                assert!(a.is_nan());
                assert!(b.is_sign_negative() && *b == 0.0);
            }
            other => panic!("{other:?}"),
        }
    }
}
