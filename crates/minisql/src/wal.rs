//! The write-ahead log: minisql's second journal mode.
//!
//! The paper (§3.2) notes that SQLite's second file is "the rollback journal
//! (or write-ahead-log, in a different mode of operation)". In WAL mode a
//! commit *appends* the after-images of the dirty pages to the log and syncs
//! once; the database file is only touched when the log is *checkpointed*
//! back into it. Readers consult the log first (latest frame per page wins)
//! and fall back to the database file.
//!
//! # File format
//!
//! A 32-byte header (`MSQLWAL1`, page size, reset counter, salt) followed by
//! frames of `24 + page_size` bytes: page id, commit marker (zero for
//! non-final frames of a transaction; the new durable page count on the
//! final frame), and a cumulative Fletcher-style checksum chained from the
//! header salt. Recovery replays frames only up to the last frame whose
//! checksum verifies *and* that closes a transaction, so a torn append never
//! surfaces a half-committed transaction — the same guarantee the rollback
//! journal gives, with one sync per commit instead of three.
//!
//! Resetting the log after a checkpoint rewrites the header with a bumped
//! reset counter (and therefore a new salt) rather than truncating: stale
//! frames beyond the header fail their checksum chain and are ignored. The
//! reset counter makes the whole file's evolution deterministic, which the
//! PBFT embedding relies on (every replica's WAL is bit-identical).

use std::collections::BTreeMap;

use crate::error::SqlError;
use crate::vfs::Vfs;

const MAGIC: &[u8; 8] = b"MSQLWAL1";

/// WAL header length in bytes.
pub const WAL_HEADER: usize = 32;

/// Per-frame header length in bytes (page id, commit marker, checksum).
pub const FRAME_HEADER: usize = 24;

/// In-memory WAL state: the read index and append cursor.
///
/// Built by [`recover`] at open time and maintained by [`append_commit`] /
/// [`reset`] afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalState {
    /// Latest committed frame offset for each page.
    index: BTreeMap<u32, u64>,
    /// Offset one past the last committed frame (0 = no header written yet).
    end: u64,
    /// Committed frames currently in the log.
    frames: u64,
    /// Durable page count as of the last commit record (0 = none).
    durable_page_count: u32,
    /// Header reset counter (bumped by [`reset`]).
    reset_counter: u32,
    /// Running checksum state after the last committed frame.
    cksum: (u64, u64),
    page_size: usize,
}

impl WalState {
    /// State for an empty (or absent) log.
    pub fn empty(page_size: usize) -> WalState {
        WalState {
            index: BTreeMap::new(),
            end: 0,
            frames: 0,
            durable_page_count: 0,
            reset_counter: 0,
            cksum: salt_cksum(0),
            page_size,
        }
    }

    /// Latest committed frame offset for `page`, if the log holds one.
    pub fn frame_of(&self, page: u32) -> Option<u64> {
        self.index.get(&page).copied()
    }

    /// Number of committed frames in the log (the auto-checkpoint gauge).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Durable page count recorded by the last commit (0 when the log holds
    /// no commits).
    pub fn durable_page_count(&self) -> u32 {
        self.durable_page_count
    }

    /// Pages with committed frames, for checkpointing.
    pub fn pages(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.index.iter().map(|(&p, &o)| (p, o))
    }
}

/// Salt for a given reset counter; the checksum chain starts here so frames
/// written before the last [`reset`] can never validate.
fn salt_cksum(reset_counter: u32) -> (u64, u64) {
    let salt = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(reset_counter) + 1);
    (salt, salt ^ 0x6d53_514c_5741_4c31) // "mSQLWAL1"
}

/// Advance the Fletcher-style checksum over 8-byte big-endian words.
fn advance_cksum(mut s: (u64, u64), bytes: &[u8]) -> (u64, u64) {
    debug_assert_eq!(bytes.len() % 8, 0, "checksummed spans are word-aligned");
    for w in bytes.chunks_exact(8) {
        let v = u64::from_be_bytes(w.try_into().expect("8 bytes"));
        s.0 = s.0.wrapping_add(v).wrapping_add(s.1);
        s.1 = s.1.wrapping_add(s.0);
    }
    s
}

/// Whether the file begins with a WAL header (used for journal-mode
/// conversion at open time).
pub fn is_present(vfs: &dyn Vfs) -> bool {
    if vfs.len() < WAL_HEADER as u64 {
        return false;
    }
    let mut magic = [0u8; 8];
    if vfs.read_at(0, &mut magic).is_err() {
        return false;
    }
    &magic == MAGIC
}

fn encode_header(page_size: usize, reset_counter: u32) -> [u8; WAL_HEADER] {
    let mut h = [0u8; WAL_HEADER];
    h[..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&(page_size as u32).to_be_bytes());
    h[12..16].copy_from_slice(&reset_counter.to_be_bytes());
    h[16..24].copy_from_slice(&salt_cksum(reset_counter).0.to_be_bytes());
    h
}

/// Scan the log and rebuild the committed state.
///
/// Frames after the last valid commit record (torn appends, frames from an
/// interrupted transaction, stale frames from before a header reset) are
/// ignored; the next append overwrites them.
///
/// # Errors
/// Storage failures, or a header that declares a different page size.
pub fn recover(vfs: &dyn Vfs, page_size: usize) -> Result<WalState, SqlError> {
    if vfs.len() < WAL_HEADER as u64 {
        return Ok(WalState::empty(page_size));
    }
    let mut header = [0u8; WAL_HEADER];
    vfs.read_at(0, &mut header)?;
    if &header[..8] != MAGIC {
        return Ok(WalState::empty(page_size));
    }
    let hdr_page_size = u32::from_be_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
    if hdr_page_size != page_size {
        return Err(SqlError::Corrupt(format!(
            "wal page size {hdr_page_size} does not match database page size {page_size}"
        )));
    }
    let reset_counter = u32::from_be_bytes(header[12..16].try_into().expect("4 bytes"));
    let mut st = WalState {
        index: BTreeMap::new(),
        end: WAL_HEADER as u64,
        frames: 0,
        durable_page_count: 0,
        reset_counter,
        cksum: salt_cksum(reset_counter),
        page_size,
    };
    let frame_size = (FRAME_HEADER + page_size) as u64;
    // Frames staged since the last commit record (not yet durable).
    let mut staged: Vec<(u32, u64)> = Vec::new();
    let mut staged_cksum = st.cksum;
    let mut staged_frames = 0u64;
    let mut off = st.end;
    let mut hdr = vec![0u8; FRAME_HEADER];
    let mut page = vec![0u8; page_size];
    while off + frame_size <= vfs.len() {
        vfs.read_at(off, &mut hdr)?;
        vfs.read_at(off + FRAME_HEADER as u64, &mut page)?;
        let page_id = u32::from_be_bytes(hdr[..4].try_into().expect("4 bytes"));
        let commit = u32::from_be_bytes(hdr[4..8].try_into().expect("4 bytes"));
        let s1 = u64::from_be_bytes(hdr[8..16].try_into().expect("8 bytes"));
        let s2 = u64::from_be_bytes(hdr[16..24].try_into().expect("8 bytes"));
        let expect = advance_cksum(staged_cksum, &hdr[..8]);
        let expect = advance_cksum(expect, &page);
        if (s1, s2) != expect {
            break; // torn append or pre-reset garbage
        }
        staged_cksum = expect;
        staged.push((page_id, off));
        staged_frames += 1;
        off += frame_size;
        if commit != 0 {
            // Transaction boundary: everything staged becomes durable.
            for (p, o) in staged.drain(..) {
                st.index.insert(p, o);
            }
            st.frames += staged_frames;
            staged_frames = 0;
            st.durable_page_count = commit;
            st.end = off;
            st.cksum = staged_cksum;
        }
    }
    Ok(st)
}

/// Append one committed transaction: after-images of `pages`, the last frame
/// carrying `new_page_count` as the commit record, then (optionally) a
/// single sync. Returns the bytes written.
///
/// # Errors
/// Storage failures. `pages` must be non-empty.
pub fn append_commit(
    vfs: &mut dyn Vfs,
    st: &mut WalState,
    pages: &[(u32, &[u8])],
    new_page_count: u32,
    sync: bool,
) -> Result<u64, SqlError> {
    assert!(!pages.is_empty(), "a commit writes at least one page");
    let frame_size = (FRAME_HEADER + st.page_size) as u64;
    let fresh_header = st.end == 0;
    if fresh_header {
        st.end = WAL_HEADER as u64;
        st.cksum = salt_cksum(st.reset_counter);
    }
    let mut buf = Vec::with_capacity(
        pages.len() * frame_size as usize + if fresh_header { WAL_HEADER } else { 0 },
    );
    if fresh_header {
        buf.extend_from_slice(&encode_header(st.page_size, st.reset_counter));
    }
    let mut cksum = st.cksum;
    for (i, (page_id, data)) in pages.iter().enumerate() {
        debug_assert_eq!(data.len(), st.page_size);
        let commit = if i + 1 == pages.len() {
            new_page_count
        } else {
            0
        };
        let mut hdr = [0u8; FRAME_HEADER];
        hdr[..4].copy_from_slice(&page_id.to_be_bytes());
        hdr[4..8].copy_from_slice(&commit.to_be_bytes());
        cksum = advance_cksum(cksum, &hdr[..8]);
        cksum = advance_cksum(cksum, data);
        hdr[8..16].copy_from_slice(&cksum.0.to_be_bytes());
        hdr[16..24].copy_from_slice(&cksum.1.to_be_bytes());
        buf.extend_from_slice(&hdr);
        buf.extend_from_slice(data);
    }
    // Single contiguous write (header included when the file was empty),
    // then at most one sync — the whole point of WAL mode.
    let write_off = if fresh_header { 0 } else { st.end };
    vfs.write_at(write_off, &buf)?;
    if sync {
        vfs.sync()?;
    }
    for (i, (page_id, _)) in pages.iter().enumerate() {
        st.index.insert(*page_id, st.end + i as u64 * frame_size);
    }
    st.end += pages.len() as u64 * frame_size;
    st.frames += pages.len() as u64;
    st.durable_page_count = new_page_count;
    st.cksum = cksum;
    Ok(buf.len() as u64)
}

/// Read the page image stored in the frame at `offset`.
///
/// # Errors
/// Storage failures.
pub fn read_frame_page(vfs: &dyn Vfs, offset: u64, buf: &mut [u8]) -> Result<(), SqlError> {
    vfs.read_at(offset + FRAME_HEADER as u64, buf)?;
    Ok(())
}

/// Reset the log after a checkpoint: bump the reset counter and rewrite the
/// header so all existing frames become unreadable.
///
/// # Errors
/// Storage failures.
pub fn reset(vfs: &mut dyn Vfs, st: &mut WalState, sync: bool) -> Result<(), SqlError> {
    st.reset_counter = st.reset_counter.wrapping_add(1);
    vfs.write_at(0, &encode_header(st.page_size, st.reset_counter))?;
    if sync {
        vfs.sync()?;
    }
    st.index.clear();
    st.end = WAL_HEADER as u64;
    st.frames = 0;
    st.cksum = salt_cksum(st.reset_counter);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    const PS: usize = 64;

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PS]
    }

    #[test]
    fn empty_file_recovers_empty() {
        let v = MemVfs::new();
        let st = recover(&v, PS).expect("recover");
        assert_eq!(st, WalState::empty(PS));
        assert!(!is_present(&v));
    }

    #[test]
    fn append_then_recover_roundtrips() {
        let mut v = MemVfs::new();
        let mut st = WalState::empty(PS);
        let p1 = page(1);
        let p2 = page(2);
        append_commit(&mut v, &mut st, &[(0, &p1), (3, &p2)], 4, true).expect("append");
        assert!(is_present(&v));
        assert_eq!(st.frames(), 2);
        assert_eq!(st.durable_page_count(), 4);

        let back = recover(&v, PS).expect("recover");
        assert_eq!(back, st);
        let mut buf = page(0);
        read_frame_page(&v, back.frame_of(3).expect("indexed"), &mut buf).expect("read");
        assert_eq!(buf, p2);
    }

    #[test]
    fn later_frame_wins_for_same_page() {
        let mut v = MemVfs::new();
        let mut st = WalState::empty(PS);
        let old = page(1);
        let new = page(9);
        append_commit(&mut v, &mut st, &[(5, &old)], 6, true).expect("append");
        append_commit(&mut v, &mut st, &[(5, &new)], 6, true).expect("append");
        let back = recover(&v, PS).expect("recover");
        let mut buf = page(0);
        read_frame_page(&v, back.frame_of(5).expect("indexed"), &mut buf).expect("read");
        assert_eq!(buf, new);
        assert_eq!(back.frames(), 2, "both frames remain in the log");
    }

    #[test]
    fn uncommitted_tail_is_ignored() {
        let mut v = MemVfs::new();
        let mut st = WalState::empty(PS);
        let p = page(1);
        append_commit(&mut v, &mut st, &[(0, &p)], 2, true).expect("append");
        // Hand-craft a frame with commit = 0 (transaction never finished).
        let stale = st.clone();
        let mut hdr = [0u8; FRAME_HEADER];
        hdr[..4].copy_from_slice(&7u32.to_be_bytes());
        let c = advance_cksum(stale.cksum, &hdr[..8]);
        let c = advance_cksum(c, &page(8));
        hdr[8..16].copy_from_slice(&c.0.to_be_bytes());
        hdr[16..24].copy_from_slice(&c.1.to_be_bytes());
        v.write_at(stale.end, &hdr).expect("write");
        v.write_at(stale.end + FRAME_HEADER as u64, &page(8))
            .expect("write");
        v.sync().expect("sync");

        let back = recover(&v, PS).expect("recover");
        assert_eq!(back.frames(), 1, "open transaction's frame not durable");
        assert_eq!(back.frame_of(7), None);
        assert_eq!(back.end, st.end);
    }

    #[test]
    fn torn_append_is_ignored() {
        let mut v = MemVfs::new();
        let mut st = WalState::empty(PS);
        let p = page(1);
        append_commit(&mut v, &mut st, &[(0, &p)], 2, true).expect("append");
        let good = v.clone();
        // A second commit whose page bytes got mangled "on disk".
        let p2 = page(2);
        append_commit(&mut v, &mut st, &[(1, &p2)], 3, true).expect("append");
        let mut torn = v.clone();
        torn.write_at(good.len() + FRAME_HEADER as u64, &[0xff; 8])
            .expect("mangle");
        torn.sync().expect("sync");
        let back = recover(&torn, PS).expect("recover");
        assert_eq!(back.frames(), 1);
        assert_eq!(back.durable_page_count(), 2);
        assert_eq!(back.frame_of(1), None);
    }

    #[test]
    fn unsynced_append_lost_on_crash() {
        let mut v = MemVfs::new();
        let mut st = WalState::empty(PS);
        let p = page(1);
        append_commit(&mut v, &mut st, &[(0, &p)], 2, false).expect("append");
        let crashed = v.crash();
        let back = recover(&crashed, PS).expect("recover");
        assert_eq!(back.frames(), 0);
    }

    #[test]
    fn reset_hides_all_frames() {
        let mut v = MemVfs::new();
        let mut st = WalState::empty(PS);
        let p = page(1);
        append_commit(&mut v, &mut st, &[(0, &p), (1, &p)], 3, true).expect("append");
        reset(&mut v, &mut st, true).expect("reset");
        assert_eq!(st.frames(), 0);
        let back = recover(&v, PS).expect("recover");
        assert_eq!(back.frames(), 0, "stale frames fail the new salt's chain");
        assert_eq!(back.reset_counter, 1);

        // Appending after a reset works and recovers cleanly.
        let p2 = page(7);
        append_commit(&mut v, &mut st, &[(2, &p2)], 4, true).expect("append");
        let back = recover(&v, PS).expect("recover");
        assert_eq!(back.frames(), 1);
        let mut buf = page(0);
        read_frame_page(&v, back.frame_of(2).expect("indexed"), &mut buf).expect("read");
        assert_eq!(buf, p2);
    }

    #[test]
    fn page_size_mismatch_rejected() {
        let mut v = MemVfs::new();
        let mut st = WalState::empty(PS);
        let p = page(1);
        append_commit(&mut v, &mut st, &[(0, &p)], 2, true).expect("append");
        assert!(recover(&v, 128).is_err());
    }

    #[test]
    fn multi_transaction_recovery_applies_prefix() {
        let mut v = MemVfs::new();
        let mut st = WalState::empty(PS);
        for i in 0..5u8 {
            let p = page(i + 1);
            append_commit(&mut v, &mut st, &[(u32::from(i), &p)], 6, true).expect("append");
        }
        let back = recover(&v, PS).expect("recover");
        assert_eq!(back.frames(), 5);
        for i in 0..5u32 {
            let mut buf = page(0);
            read_frame_page(&v, back.frame_of(i).expect("indexed"), &mut buf).expect("read");
            assert_eq!(buf, page(i as u8 + 1));
        }
    }
}
