//! The pager: page cache, allocation, transactions and crash recovery.
//!
//! All reads and writes go through an in-memory page cache; nothing touches
//! the database file until commit. At commit, pre-images of the dirty pages
//! are written to the rollback journal (ACID mode), the dirty pages are
//! written back, the database is synced, and the journal is cleared. Opening
//! a database with a live journal rolls the interrupted commit back.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::SqlError;
use crate::journal::{clear_journal, read_journal, write_journal};
use crate::vfs::Vfs;

/// Database page size — matches `pbft_state::PAGE_SIZE` so the database file
/// maps 1:1 onto replicated state pages.
pub const PAGE_SIZE: usize = 4096;

const MAGIC: &[u8; 8] = b"MINISQL1";

/// Journal / durability mode (the paper's §4.2 ACID vs no-ACID axis; §3.2
/// names the write-ahead log as the rollback journal's alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalMode {
    /// Rollback journal + synchronous flushes: full ACID, three syncs per
    /// commit (journal, database, journal clear).
    Rollback,
    /// Write-ahead log: full ACID with a single sync per commit; the
    /// database file is updated lazily at checkpoints.
    Wal,
    /// No journal, no flushing — fast and fragile ("No-ACID").
    Off,
}

/// I/O work performed, drained by the embedding layer for cost accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages written to the database file.
    pub db_pages_written: u64,
    /// Bytes written to the journal.
    pub journal_bytes: u64,
    /// Synchronous flushes (database + journal).
    pub syncs: u64,
    /// Pages read from the database file (cache misses).
    pub pages_read: u64,
    /// WAL checkpoints performed (WAL mode only).
    pub wal_checkpoints: u64,
}

impl IoStats {
    /// Accumulate.
    pub fn add(&mut self, other: &IoStats) {
        self.db_pages_written += other.db_pages_written;
        self.journal_bytes += other.journal_bytes;
        self.syncs += other.syncs;
        self.pages_read += other.pages_read;
        self.wal_checkpoints += other.wal_checkpoints;
    }
}

/// Header fields stored in page 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    page_count: u32,
    freelist_head: u32,
    catalog_root: u32,
}

/// Default WAL auto-checkpoint threshold, in committed frames.
pub const DEFAULT_WAL_AUTOCHECKPOINT: u64 = 256;

/// The pager. See the module docs.
pub struct Pager {
    db: Box<dyn Vfs>,
    journal: Box<dyn Vfs>,
    mode: JournalMode,
    cache: BTreeMap<u32, Vec<u8>>,
    dirty: BTreeSet<u32>,
    header: Header,
    /// Durable page count (on disk, or committed to the WAL).
    disk_page_count: u32,
    /// WAL read index + append cursor (`Some` iff `mode == Wal`).
    wal: Option<crate::wal::WalState>,
    /// Checkpoint the WAL back into the database once it holds this many
    /// committed frames.
    wal_autocheckpoint: u64,
    stats: IoStats,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("pages", &self.header.page_count)
            .field("dirty", &self.dirty.len())
            .field("mode", &self.mode)
            .finish()
    }
}

impl Pager {
    /// Open (or create) a database. Performs journal recovery if needed.
    ///
    /// # Errors
    /// Storage failures or a corrupt header.
    pub fn open(
        mut db: Box<dyn Vfs>,
        mut journal: Box<dyn Vfs>,
        mode: JournalMode,
    ) -> Result<Pager, SqlError> {
        // Crash recovery: a valid rollback journal means an interrupted
        // commit (a WAL in the same file slot has a different magic and is
        // handled below).
        if let Some(j) = read_journal(journal.as_ref(), PAGE_SIZE)? {
            for (page_id, data) in &j.entries {
                db.write_at(*page_id as u64 * PAGE_SIZE as u64, data)?;
            }
            db.set_len(j.old_page_count as u64 * PAGE_SIZE as u64)?;
            db.sync()?;
            clear_journal(journal.as_mut(), true)?;
        }
        // Journal-mode conversion: opening in rollback/off mode a database
        // whose previous incarnation ran in WAL mode folds the committed
        // WAL frames into the database file first.
        if mode != JournalMode::Wal && crate::wal::is_present(journal.as_ref()) {
            let st = crate::wal::recover(journal.as_ref(), PAGE_SIZE)?;
            if st.frames() > 0 {
                let frames: Vec<(u32, u64)> = st.pages().collect();
                let mut buf = vec![0u8; PAGE_SIZE];
                for (page_id, off) in frames {
                    crate::wal::read_frame_page(journal.as_ref(), off, &mut buf)?;
                    db.write_at(page_id as u64 * PAGE_SIZE as u64, &buf)?;
                }
                db.set_len(st.durable_page_count() as u64 * PAGE_SIZE as u64)?;
                db.sync()?;
            }
            journal.set_len(0)?;
            journal.sync()?;
        }
        let wal = if mode == JournalMode::Wal {
            Some(crate::wal::recover(journal.as_ref(), PAGE_SIZE)?)
        } else {
            None
        };
        let wal_frames = wal.as_ref().map_or(0, |w| w.frames());
        if db.is_empty() && wal_frames == 0 {
            // Fresh database: header page + catalog root at page 1.
            let header = Header {
                page_count: 2,
                freelist_head: 0,
                catalog_root: 1,
            };
            let mut pager = Pager {
                db,
                journal,
                mode,
                cache: BTreeMap::new(),
                dirty: BTreeSet::new(),
                header,
                disk_page_count: 0,
                wal,
                wal_autocheckpoint: DEFAULT_WAL_AUTOCHECKPOINT,
                stats: IoStats::default(),
            };
            // Materialize both pages as dirty; the first commit writes them.
            pager.cache.insert(0, pager.encode_header());
            pager.dirty.insert(0);
            let catalog = crate::btree::empty_leaf_page();
            pager.cache.insert(1, catalog);
            pager.dirty.insert(1);
            pager.commit()?;
            return Ok(pager);
        }
        let mut page0 = vec![0u8; PAGE_SIZE];
        read_durable_page(db.as_ref(), journal.as_ref(), wal.as_ref(), 0, &mut page0)?;
        if &page0[..8] != MAGIC {
            return Err(SqlError::Corrupt("bad magic".into()));
        }
        let header = Header {
            page_count: u32::from_be_bytes(page0[8..12].try_into().expect("4 bytes")),
            freelist_head: u32::from_be_bytes(page0[12..16].try_into().expect("4 bytes")),
            catalog_root: u32::from_be_bytes(page0[16..20].try_into().expect("4 bytes")),
        };
        let disk_page_count = header.page_count;
        Ok(Pager {
            db,
            journal,
            mode,
            cache: BTreeMap::new(),
            dirty: BTreeSet::new(),
            header,
            disk_page_count,
            wal,
            wal_autocheckpoint: DEFAULT_WAL_AUTOCHECKPOINT,
            stats: IoStats::default(),
        })
    }

    /// Set the WAL auto-checkpoint threshold (committed frames). No effect
    /// outside WAL mode.
    pub fn set_wal_autocheckpoint(&mut self, frames: u64) {
        self.wal_autocheckpoint = frames.max(1);
    }

    fn encode_header(&self) -> Vec<u8> {
        let mut page = vec![0u8; PAGE_SIZE];
        page[..8].copy_from_slice(MAGIC);
        page[8..12].copy_from_slice(&self.header.page_count.to_be_bytes());
        page[12..16].copy_from_slice(&self.header.freelist_head.to_be_bytes());
        page[16..20].copy_from_slice(&self.header.catalog_root.to_be_bytes());
        page
    }

    /// The catalog B+tree root page.
    pub fn catalog_root(&self) -> u32 {
        self.header.catalog_root
    }

    /// Total pages (including uncommitted extensions).
    pub fn page_count(&self) -> u32 {
        self.header.page_count
    }

    /// Drain accumulated I/O statistics.
    pub fn take_stats(&mut self) -> IoStats {
        std::mem::take(&mut self.stats)
    }

    /// Read access to the database file (diagnostics and tests).
    pub fn db_vfs(&self) -> &dyn Vfs {
        self.db.as_ref()
    }

    /// Read access to the journal file (diagnostics and tests).
    pub fn journal_vfs(&self) -> &dyn Vfs {
        self.journal.as_ref()
    }

    /// Read a page (through the cache).
    ///
    /// # Errors
    /// Storage failures / out-of-range page ids.
    pub fn page(&mut self, id: u32) -> Result<&[u8], SqlError> {
        if id >= self.header.page_count {
            return Err(SqlError::Corrupt(format!("page {id} out of range")));
        }
        if !self.cache.contains_key(&id) {
            let mut buf = vec![0u8; PAGE_SIZE];
            read_durable_page(
                self.db.as_ref(),
                self.journal.as_ref(),
                self.wal.as_ref(),
                id,
                &mut buf,
            )?;
            self.stats.pages_read += 1;
            self.cache.insert(id, buf);
        }
        Ok(self.cache.get(&id).expect("just inserted").as_slice())
    }

    /// Mutable access to a page; marks it dirty.
    ///
    /// # Errors
    /// Storage failures / out-of-range page ids.
    pub fn page_mut(&mut self, id: u32) -> Result<&mut Vec<u8>, SqlError> {
        self.page(id)?;
        self.dirty.insert(id);
        Ok(self.cache.get_mut(&id).expect("cached"))
    }

    /// Allocate a fresh page (freelist first, then file extension).
    ///
    /// # Errors
    /// Storage failures.
    pub fn allocate(&mut self) -> Result<u32, SqlError> {
        if self.header.freelist_head != 0 {
            let id = self.header.freelist_head;
            let page = self.page(id)?;
            let next = u32::from_be_bytes(page[..4].try_into().expect("4 bytes"));
            self.header.freelist_head = next;
            self.dirty.insert(0);
            let p = self.page_mut(id)?;
            p.fill(0);
            Ok(id)
        } else {
            let id = self.header.page_count;
            self.header.page_count += 1;
            self.cache.insert(id, vec![0u8; PAGE_SIZE]);
            self.dirty.insert(id);
            self.dirty.insert(0);
            Ok(id)
        }
    }

    /// Return a page to the freelist.
    ///
    /// # Errors
    /// Storage failures.
    pub fn free(&mut self, id: u32) -> Result<(), SqlError> {
        let head = self.header.freelist_head;
        let p = self.page_mut(id)?;
        p.fill(0);
        p[..4].copy_from_slice(&head.to_be_bytes());
        self.header.freelist_head = id;
        self.dirty.insert(0);
        Ok(())
    }

    /// Whether uncommitted changes exist.
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Commit: journal pre-images (ACID), write back, sync, clear journal.
    ///
    /// # Errors
    /// Storage failures; on error the transaction is left uncommitted.
    pub fn commit(&mut self) -> Result<(), SqlError> {
        if self.dirty.is_empty() {
            return Ok(());
        }
        self.dirty.insert(0);
        let header_page = self.encode_header();
        self.cache.insert(0, header_page);

        if self.mode == JournalMode::Wal {
            return self.commit_wal();
        }
        if self.mode == JournalMode::Rollback {
            // Pre-images of dirty pages that already exist on disk.
            let mut entries = Vec::new();
            for &id in &self.dirty {
                if id < self.disk_page_count {
                    let mut pre = vec![0u8; PAGE_SIZE];
                    self.db.read_at(id as u64 * PAGE_SIZE as u64, &mut pre)?;
                    entries.push((id, pre));
                }
            }
            self.stats.journal_bytes += (entries.len() * (4 + PAGE_SIZE) + 16) as u64;
            write_journal(
                self.journal.as_mut(),
                PAGE_SIZE,
                self.disk_page_count,
                &entries,
                true,
            )?;
            self.stats.syncs += 1;
        }

        for &id in &self.dirty {
            let data = self.cache.get(&id).expect("dirty pages are cached");
            self.db.write_at(id as u64 * PAGE_SIZE as u64, data)?;
            self.stats.db_pages_written += 1;
        }
        if self.mode == JournalMode::Rollback {
            self.db.sync()?;
            self.stats.syncs += 1;
            clear_journal(self.journal.as_mut(), true)?;
            self.stats.syncs += 1;
        }
        self.dirty.clear();
        self.disk_page_count = self.header.page_count;
        Ok(())
    }

    /// WAL-mode commit: append after-images of the dirty pages plus a commit
    /// record, then a single sync. The database file is untouched until the
    /// next checkpoint.
    fn commit_wal(&mut self) -> Result<(), SqlError> {
        let mut st = self.wal.take().expect("wal state exists in wal mode");
        let pages: Vec<(u32, &[u8])> = self
            .dirty
            .iter()
            .map(|&id| {
                (
                    id,
                    self.cache
                        .get(&id)
                        .expect("dirty pages are cached")
                        .as_slice(),
                )
            })
            .collect();
        let outcome = crate::wal::append_commit(
            self.journal.as_mut(),
            &mut st,
            &pages,
            self.header.page_count,
            true,
        );
        drop(pages);
        let frames = st.frames();
        self.wal = Some(st);
        let bytes = outcome?;
        self.stats.journal_bytes += bytes;
        self.stats.syncs += 1;
        self.dirty.clear();
        self.disk_page_count = self.header.page_count;
        if frames >= self.wal_autocheckpoint {
            self.wal_checkpoint()?;
        }
        Ok(())
    }

    /// Fold the committed WAL frames back into the database file and reset
    /// the log. A no-op outside WAL mode or when the log is empty.
    ///
    /// # Errors
    /// Storage failures; the WAL itself is only reset after the database
    /// sync succeeds, so a crash mid-checkpoint just replays it.
    pub fn wal_checkpoint(&mut self) -> Result<(), SqlError> {
        let Some(st) = self.wal.as_ref() else {
            return Ok(());
        };
        if st.frames() == 0 {
            return Ok(());
        }
        let frames: Vec<(u32, u64)> = st.pages().collect();
        let durable = st.durable_page_count();
        let mut buf = vec![0u8; PAGE_SIZE];
        for &(page_id, off) in &frames {
            crate::wal::read_frame_page(self.journal.as_ref(), off, &mut buf)?;
            self.db.write_at(page_id as u64 * PAGE_SIZE as u64, &buf)?;
        }
        self.db.set_len(u64::from(durable) * PAGE_SIZE as u64)?;
        self.db.sync()?;
        let mut st = self.wal.take().expect("checked above");
        let reset = crate::wal::reset(self.journal.as_mut(), &mut st, true);
        self.wal = Some(st);
        reset?;
        self.stats.db_pages_written += frames.len() as u64;
        self.stats.syncs += 2;
        self.stats.wal_checkpoints += 1;
        Ok(())
    }

    /// Committed frames currently in the WAL (0 outside WAL mode).
    pub fn wal_frames(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.frames())
    }

    /// Roll back: drop all uncommitted changes (cache reverts to disk).
    pub fn rollback(&mut self) {
        for id in std::mem::take(&mut self.dirty) {
            self.cache.remove(&id);
        }
        // Reload the durable header.
        self.cache.remove(&0);
        if self.disk_page_count > 0 {
            let mut page0 = vec![0u8; PAGE_SIZE];
            if read_durable_page(
                self.db.as_ref(),
                self.journal.as_ref(),
                self.wal.as_ref(),
                0,
                &mut page0,
            )
            .is_ok()
                && &page0[..8] == MAGIC
            {
                self.header = Header {
                    page_count: u32::from_be_bytes(page0[8..12].try_into().expect("4 bytes")),
                    freelist_head: u32::from_be_bytes(page0[12..16].try_into().expect("4 bytes")),
                    catalog_root: u32::from_be_bytes(page0[16..20].try_into().expect("4 bytes")),
                };
            }
        }
    }

    /// Drop the entire cache (the backing bytes changed underneath us, e.g.
    /// after PBFT state transfer installed new pages).
    ///
    /// # Errors
    /// [`SqlError::Corrupt`] if the new backing content has a bad header.
    pub fn invalidate_cache(&mut self) -> Result<(), SqlError> {
        self.cache.clear();
        self.dirty.clear();
        if self.mode == JournalMode::Wal {
            // The WAL bytes may have changed too (it lives in the replicated
            // region under the PBFT embedding); rebuild the read index.
            self.wal = Some(crate::wal::recover(self.journal.as_ref(), PAGE_SIZE)?);
        }
        let mut page0 = vec![0u8; PAGE_SIZE];
        read_durable_page(
            self.db.as_ref(),
            self.journal.as_ref(),
            self.wal.as_ref(),
            0,
            &mut page0,
        )?;
        if &page0[..8] != MAGIC {
            return Err(SqlError::Corrupt(
                "bad magic after cache invalidation".into(),
            ));
        }
        self.header = Header {
            page_count: u32::from_be_bytes(page0[8..12].try_into().expect("4 bytes")),
            freelist_head: u32::from_be_bytes(page0[12..16].try_into().expect("4 bytes")),
            catalog_root: u32::from_be_bytes(page0[16..20].try_into().expect("4 bytes")),
        };
        self.disk_page_count = self.header.page_count;
        Ok(())
    }
}

/// Read the durable image of a page: the latest committed WAL frame when one
/// exists, the database file otherwise.
fn read_durable_page(
    db: &dyn Vfs,
    journal: &dyn Vfs,
    wal: Option<&crate::wal::WalState>,
    id: u32,
    buf: &mut [u8],
) -> Result<(), SqlError> {
    if let Some(off) = wal.and_then(|w| w.frame_of(id)) {
        crate::wal::read_frame_page(journal, off, buf)?;
        return Ok(());
    }
    db.read_at(u64::from(id) * PAGE_SIZE as u64, buf)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn fresh(mode: JournalMode) -> Pager {
        Pager::open(Box::new(MemVfs::new()), Box::new(MemVfs::new()), mode).expect("open")
    }

    #[test]
    fn fresh_database_has_header_and_catalog() {
        let mut p = fresh(JournalMode::Rollback);
        assert_eq!(p.page_count(), 2);
        assert_eq!(p.catalog_root(), 1);
        assert!(!p.has_dirty());
        let page1 = p.page(1).expect("catalog page");
        assert_eq!(page1[0], 1, "catalog root is a leaf");
    }

    #[test]
    fn allocate_and_free_cycle() {
        let mut p = fresh(JournalMode::Rollback);
        let a = p.allocate().expect("alloc");
        let b = p.allocate().expect("alloc");
        assert_ne!(a, b);
        assert_eq!(p.page_count(), 4);
        p.commit().expect("commit");
        p.free(a).expect("free");
        p.commit().expect("commit");
        let c = p.allocate().expect("alloc reuses freelist");
        assert_eq!(c, a);
    }

    #[test]
    fn commit_persists_across_reopen() {
        let mut db = MemVfs::new();
        let mut journal = MemVfs::new();
        {
            let mut p = Pager::open(
                Box::new(db.clone()),
                Box::new(journal.clone()),
                JournalMode::Rollback,
            )
            .expect("open");
            let id = p.allocate().expect("alloc");
            p.page_mut(id).expect("page")[100] = 0xab;
            p.commit().expect("commit");
            // Extract the final bytes for "reopen".
            db = clone_vfs(p.db.as_ref());
            journal = clone_vfs(p.journal.as_ref());
        }
        let mut p2 =
            Pager::open(Box::new(db), Box::new(journal), JournalMode::Rollback).expect("reopen");
        assert_eq!(p2.page_count(), 3);
        assert_eq!(p2.page(2).expect("page")[100], 0xab);
    }

    /// Test helper: recover the concrete MemVfs from the boxed trait object.
    fn clone_vfs(v: &dyn Vfs) -> MemVfs {
        let mut out = MemVfs::new();
        let len = v.len();
        let mut buf = vec![0u8; len as usize];
        v.read_at(0, &mut buf).expect("read");
        out.write_at(0, &buf).expect("write");
        out.sync().expect("sync");
        out
    }

    #[test]
    fn rollback_discards_changes() {
        let mut p = fresh(JournalMode::Rollback);
        let id = p.allocate().expect("alloc");
        p.page_mut(id).expect("page")[0] = 9;
        p.rollback();
        assert_eq!(p.page_count(), 2, "allocation rolled back");
        assert!(!p.has_dirty());
    }

    #[test]
    fn interrupted_commit_rolls_back_on_open() {
        // Simulate: journal written+synced, db partially written, crash
        // before db sync.
        let mut p = fresh(JournalMode::Rollback);
        let id = p.allocate().expect("alloc");
        p.page_mut(id).expect("page")[7] = 0x77;
        p.commit().expect("commit");
        let committed_db = clone_vfs(p.db.as_ref());

        // Second transaction: stage the journal by hand, corrupt the db,
        // "crash" before syncing the db.
        let mut db = committed_db.clone();
        let mut journal = MemVfs::new();
        let pre_image = {
            let mut buf = vec![0u8; PAGE_SIZE];
            db.read_at(id as u64 * PAGE_SIZE as u64, &mut buf)
                .expect("read");
            buf
        };
        write_journal(&mut journal, PAGE_SIZE, 3, &[(id, pre_image)], true).expect("journal");
        // Partial overwrite that never got synced: the crash image keeps the
        // synced content, so emulate a *synced* torn write to be pessimistic.
        db.write_at(id as u64 * PAGE_SIZE as u64, &[0xff; PAGE_SIZE])
            .expect("write");
        db.sync().expect("sync");

        let p2 = Pager::open(
            Box::new(db.crash()),
            Box::new(journal.crash()),
            JournalMode::Rollback,
        )
        .expect("recovering open");
        let mut p2 = p2;
        assert_eq!(p2.page(id).expect("page")[7], 0x77, "pre-image restored");
    }

    #[test]
    fn no_acid_mode_never_syncs() {
        let mut p = fresh(JournalMode::Off);
        let id = p.allocate().expect("alloc");
        p.page_mut(id).expect("page")[0] = 1;
        p.commit().expect("commit");
        let stats = p.take_stats();
        assert_eq!(stats.syncs, 0);
        assert_eq!(stats.journal_bytes, 0);
        assert!(stats.db_pages_written > 0);
    }

    #[test]
    fn acid_mode_syncs_and_journals() {
        let mut p = fresh(JournalMode::Rollback);
        let _ = p.take_stats(); // discard creation stats
        let id = p.allocate().expect("alloc");
        p.page_mut(id).expect("page")[0] = 1;
        p.commit().expect("commit");
        let stats = p.take_stats();
        assert!(stats.syncs >= 3, "journal sync + db sync + clear sync");
        assert!(stats.journal_bytes > 0);
    }

    #[test]
    fn out_of_range_page_rejected() {
        let mut p = fresh(JournalMode::Rollback);
        assert!(p.page(99).is_err());
        assert!(p.page_mut(99).is_err());
    }

    // ------------------------------------------------------------------
    // WAL mode
    // ------------------------------------------------------------------

    #[test]
    fn wal_commit_leaves_database_file_untouched() {
        let mut p = fresh(JournalMode::Wal);
        let db_before = clone_vfs(p.db.as_ref());
        let id = p.allocate().expect("alloc");
        p.page_mut(id).expect("page")[0] = 0x42;
        p.commit().expect("commit");
        assert_eq!(
            p.db.len(),
            db_before.len(),
            "db file only changes at checkpoint"
        );
        assert!(p.wal_frames() > 0);
        // But the committed page reads back through the WAL.
        assert_eq!(p.page(id).expect("page")[0], 0x42);
    }

    #[test]
    fn wal_single_sync_per_commit() {
        let mut p = fresh(JournalMode::Wal);
        let _ = p.take_stats();
        let id = p.allocate().expect("alloc");
        p.page_mut(id).expect("page")[0] = 1;
        p.commit().expect("commit");
        let stats = p.take_stats();
        assert_eq!(stats.syncs, 1, "WAL mode: exactly one sync per commit");
        assert!(stats.journal_bytes > 0);
        assert_eq!(stats.db_pages_written, 0, "no checkpoint yet");
    }

    #[test]
    fn wal_commit_survives_crash_and_reopen() {
        let mut p = fresh(JournalMode::Wal);
        let id = p.allocate().expect("alloc");
        p.page_mut(id).expect("page")[9] = 0x99;
        p.commit().expect("commit");
        let db = clone_vfs(p.db.as_ref());
        let wal = clone_vfs(p.journal.as_ref());
        let mut p2 = Pager::open(Box::new(db), Box::new(wal), JournalMode::Wal).expect("reopen");
        assert_eq!(p2.page(id).expect("page")[9], 0x99);
        assert_eq!(p2.page_count(), 3);
    }

    #[test]
    fn wal_unsynced_transaction_lost_on_crash() {
        // First commit establishes durable state; a second one crashes
        // before its (only) sync.
        let mut db = MemVfs::new();
        let mut wal = MemVfs::new();
        {
            let mut p = Pager::open(
                Box::new(db.clone()),
                Box::new(wal.clone()),
                JournalMode::Wal,
            )
            .expect("open");
            let id = p.allocate().expect("alloc");
            p.page_mut(id).expect("page")[0] = 1;
            p.commit().expect("commit");
            db = clone_vfs(p.db.as_ref());
            // Take the *synced* wal image, then append unsynced garbage the
            // crash discards (emulating a torn in-flight commit).
            wal = clone_vfs(p.journal.as_ref());
        }
        let mut torn = wal.clone();
        let end = torn.len();
        torn.write_at(end, &[0xaau8; 100]).expect("write");
        let crashed = torn.crash();
        let mut p2 =
            Pager::open(Box::new(db), Box::new(crashed), JournalMode::Wal).expect("reopen");
        assert_eq!(p2.page(2).expect("page")[0], 1, "synced commit survives");
        assert_eq!(p2.page_count(), 3);
    }

    #[test]
    fn wal_checkpoint_folds_into_database() {
        let mut p = fresh(JournalMode::Wal);
        let id = p.allocate().expect("alloc");
        p.page_mut(id).expect("page")[3] = 0x33;
        p.commit().expect("commit");
        let _ = p.take_stats();
        p.wal_checkpoint().expect("checkpoint");
        let stats = p.take_stats();
        assert_eq!(stats.wal_checkpoints, 1);
        assert!(stats.db_pages_written > 0);
        assert_eq!(p.wal_frames(), 0, "log reset after checkpoint");
        // The database file alone (no WAL) now holds everything.
        let db = clone_vfs(p.db.as_ref());
        let mut p2 =
            Pager::open(Box::new(db), Box::new(MemVfs::new()), JournalMode::Wal).expect("reopen");
        assert_eq!(p2.page(id).expect("page")[3], 0x33);
    }

    #[test]
    fn wal_autocheckpoint_triggers() {
        let mut p = fresh(JournalMode::Wal);
        p.set_wal_autocheckpoint(4);
        let _ = p.take_stats();
        for i in 0..4u8 {
            let id = p.allocate().expect("alloc");
            p.page_mut(id).expect("page")[0] = i;
            p.commit().expect("commit");
        }
        let stats = p.take_stats();
        assert!(stats.wal_checkpoints >= 1, "threshold crossed");
        assert!(p.wal_frames() < 4);
    }

    #[test]
    fn wal_to_rollback_conversion_on_open() {
        let mut p = fresh(JournalMode::Wal);
        let id = p.allocate().expect("alloc");
        p.page_mut(id).expect("page")[5] = 0x55;
        p.commit().expect("commit");
        let db = clone_vfs(p.db.as_ref());
        let wal = clone_vfs(p.journal.as_ref());
        // Reopen in rollback mode: the WAL folds into the db file.
        let mut p2 =
            Pager::open(Box::new(db), Box::new(wal), JournalMode::Rollback).expect("convert");
        assert_eq!(p2.page(id).expect("page")[5], 0x55);
        assert_eq!(p2.journal_vfs().len(), 0, "wal truncated after conversion");
    }

    #[test]
    fn wal_rollback_reverts_to_last_commit() {
        let mut p = fresh(JournalMode::Wal);
        let id = p.allocate().expect("alloc");
        p.page_mut(id).expect("page")[0] = 1;
        p.commit().expect("commit");
        p.page_mut(id).expect("page")[0] = 2;
        p.rollback();
        assert_eq!(p.page(id).expect("page")[0], 1, "reverts to the WAL image");
    }

    #[test]
    fn wal_invalidate_cache_rescans_log() {
        let mut p = fresh(JournalMode::Wal);
        let id = p.allocate().expect("alloc");
        p.page_mut(id).expect("page")[0] = 7;
        p.commit().expect("commit");
        p.invalidate_cache().expect("invalidate");
        assert_eq!(p.page(id).expect("page")[0], 7);
        assert!(p.wal_frames() > 0, "index rebuilt from the log");
    }

    #[test]
    fn wal_many_transactions_roundtrip() {
        let mut p = fresh(JournalMode::Wal);
        p.set_wal_autocheckpoint(7); // exercise mid-stream checkpoints
        let mut ids = Vec::new();
        for i in 0..20u8 {
            let id = p.allocate().expect("alloc");
            p.page_mut(id).expect("page")[1] = i;
            p.commit().expect("commit");
            ids.push((id, i));
        }
        let db = clone_vfs(p.db.as_ref());
        let wal = clone_vfs(p.journal.as_ref());
        let mut p2 = Pager::open(Box::new(db), Box::new(wal), JournalMode::Wal).expect("reopen");
        for (id, i) in ids {
            assert_eq!(p2.page(id).expect("page")[1], i);
        }
    }
}
