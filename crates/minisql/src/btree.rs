//! B+tree keyed by 64-bit rowids — the storage structure behind every table
//! (and the catalog). Interior nodes route by max-key; leaves form a chain
//! for in-order scans. Pages are rewritten wholesale on modification (4 KiB
//! memcpy), which keeps the code simple and the layout deterministic.

use crate::error::SqlError;
use crate::pager::{Pager, PAGE_SIZE};

const LEAF: u8 = 1;
const INTERIOR: u8 = 2;
const HDR: usize = 7; // type u8, nkeys u16, aux u32

/// Maximum payload stored in one leaf cell (one row). Rows larger than this
/// are rejected with [`SqlError::RowTooLarge`] — minisql does not implement
/// overflow pages (a documented simplification vs. SQLite).
pub const MAX_PAYLOAD: usize = PAGE_SIZE - HDR - 16;

/// A fresh, empty leaf page (used for new roots).
pub fn empty_leaf_page() -> Vec<u8> {
    let mut page = vec![0u8; PAGE_SIZE];
    page[0] = LEAF;
    page
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        next: u32,
        cells: Vec<(i64, Vec<u8>)>,
    },
    Interior {
        rightmost: u32,
        cells: Vec<(i64, u32)>,
    },
}

impl Node {
    fn parse(page: &[u8]) -> Result<Node, SqlError> {
        let corrupt = |m: &str| SqlError::Corrupt(format!("btree: {m}"));
        let ty = page[0];
        let n = u16::from_be_bytes([page[1], page[2]]) as usize;
        let aux = u32::from_be_bytes(page[3..7].try_into().expect("4 bytes"));
        let mut pos = HDR;
        match ty {
            LEAF => {
                let mut cells = Vec::with_capacity(n);
                for _ in 0..n {
                    if pos + 10 > PAGE_SIZE {
                        return Err(corrupt("leaf cell header past page end"));
                    }
                    let key = i64::from_be_bytes(page[pos..pos + 8].try_into().expect("8 bytes"));
                    let len = u16::from_be_bytes([page[pos + 8], page[pos + 9]]) as usize;
                    pos += 10;
                    if pos + len > PAGE_SIZE {
                        return Err(corrupt("leaf payload past page end"));
                    }
                    cells.push((key, page[pos..pos + len].to_vec()));
                    pos += len;
                }
                Ok(Node::Leaf { next: aux, cells })
            }
            INTERIOR => {
                let mut cells = Vec::with_capacity(n);
                for _ in 0..n {
                    if pos + 12 > PAGE_SIZE {
                        return Err(corrupt("interior cell past page end"));
                    }
                    let key = i64::from_be_bytes(page[pos..pos + 8].try_into().expect("8 bytes"));
                    let child =
                        u32::from_be_bytes(page[pos + 8..pos + 12].try_into().expect("4 bytes"));
                    cells.push((key, child));
                    pos += 12;
                }
                Ok(Node::Interior {
                    rightmost: aux,
                    cells,
                })
            }
            other => Err(corrupt(&format!("unknown node type {other}"))),
        }
    }

    fn size(&self) -> usize {
        match self {
            Node::Leaf { cells, .. } => {
                HDR + cells.iter().map(|(_, p)| 10 + p.len()).sum::<usize>()
            }
            Node::Interior { cells, .. } => HDR + cells.len() * 12,
        }
    }

    fn serialize(&self) -> Vec<u8> {
        debug_assert!(self.size() <= PAGE_SIZE, "node overflows page");
        let mut page = vec![0u8; PAGE_SIZE];
        match self {
            Node::Leaf { next, cells } => {
                page[0] = LEAF;
                page[1..3].copy_from_slice(&(cells.len() as u16).to_be_bytes());
                page[3..7].copy_from_slice(&next.to_be_bytes());
                let mut pos = HDR;
                for (key, payload) in cells {
                    page[pos..pos + 8].copy_from_slice(&key.to_be_bytes());
                    page[pos + 8..pos + 10].copy_from_slice(&(payload.len() as u16).to_be_bytes());
                    pos += 10;
                    page[pos..pos + payload.len()].copy_from_slice(payload);
                    pos += payload.len();
                }
            }
            Node::Interior { rightmost, cells } => {
                page[0] = INTERIOR;
                page[1..3].copy_from_slice(&(cells.len() as u16).to_be_bytes());
                page[3..7].copy_from_slice(&rightmost.to_be_bytes());
                let mut pos = HDR;
                for (key, child) in cells {
                    page[pos..pos + 8].copy_from_slice(&key.to_be_bytes());
                    page[pos + 8..pos + 12].copy_from_slice(&child.to_be_bytes());
                    pos += 12;
                }
            }
        }
        page
    }
}

/// Result of an insertion that overflowed a node.
struct Split {
    /// The original node now holds keys ≤ `sep`…
    sep: i64,
    /// …and this new node holds the rest.
    right: u32,
}

/// A B+tree rooted at a fixed page (the root page id never changes, so
/// catalog entries stay valid across splits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTree {
    /// Root page id.
    pub root: u32,
}

impl BTree {
    /// Create an empty tree on a freshly allocated page.
    ///
    /// # Errors
    /// Storage failures.
    pub fn create(pager: &mut Pager) -> Result<BTree, SqlError> {
        let root = pager.allocate()?;
        *pager.page_mut(root)? = empty_leaf_page();
        Ok(BTree { root })
    }

    /// Point lookup.
    ///
    /// # Errors
    /// Storage failures / corruption.
    pub fn get(&self, pager: &mut Pager, key: i64) -> Result<Option<Vec<u8>>, SqlError> {
        let mut page_id = self.root;
        loop {
            let node = Node::parse(pager.page(page_id)?)?;
            match node {
                Node::Leaf { cells, .. } => {
                    return Ok(cells
                        .iter()
                        .find(|(k, _)| *k == key)
                        .map(|(_, p)| p.clone()));
                }
                Node::Interior { rightmost, cells } => {
                    page_id = cells
                        .iter()
                        .find(|(k, _)| key <= *k)
                        .map(|(_, c)| *c)
                        .unwrap_or(rightmost);
                }
            }
        }
    }

    /// Insert a new `(key, payload)`; duplicate keys are a constraint error.
    ///
    /// # Errors
    /// [`SqlError::Constraint`] on duplicates, [`SqlError::RowTooLarge`] on
    /// oversized payloads, storage failures.
    pub fn insert(&self, pager: &mut Pager, key: i64, payload: Vec<u8>) -> Result<(), SqlError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(SqlError::RowTooLarge(payload.len()));
        }
        if let Some(split) = self.insert_into(pager, self.root, key, payload)? {
            // Root split: copy the (already-split) root into a fresh left
            // page and convert the root into an interior node so its page id
            // stays stable.
            let left = pager.allocate()?;
            let root_bytes = pager.page(self.root)?.to_vec();
            *pager.page_mut(left)? = root_bytes;
            let new_root = Node::Interior {
                rightmost: split.right,
                cells: vec![(split.sep, left)],
            };
            *pager.page_mut(self.root)? = new_root.serialize();
        }
        Ok(())
    }

    fn insert_into(
        &self,
        pager: &mut Pager,
        page_id: u32,
        key: i64,
        payload: Vec<u8>,
    ) -> Result<Option<Split>, SqlError> {
        let node = Node::parse(pager.page(page_id)?)?;
        match node {
            Node::Leaf { next, mut cells } => {
                match cells.binary_search_by_key(&key, |(k, _)| *k) {
                    Ok(_) => return Err(SqlError::Constraint(format!("duplicate rowid {key}"))),
                    Err(pos) => cells.insert(pos, (key, payload)),
                }
                let mut node = Node::Leaf { next, cells };
                if node.size() <= PAGE_SIZE {
                    *pager.page_mut(page_id)? = node.serialize();
                    return Ok(None);
                }
                // Split the leaf: move the upper half to a new right page.
                let Node::Leaf { next, cells } = &mut node else {
                    unreachable!()
                };
                let mid = cells.len() / 2;
                let right_cells = cells.split_off(mid);
                let right_id = pager.allocate()?;
                let right = Node::Leaf {
                    next: *next,
                    cells: right_cells,
                };
                *next = right_id;
                let sep = cells.last().expect("left half non-empty").0;
                *pager.page_mut(right_id)? = right.serialize();
                *pager.page_mut(page_id)? = node.serialize();
                Ok(Some(Split {
                    sep,
                    right: right_id,
                }))
            }
            Node::Interior {
                mut rightmost,
                mut cells,
            } => {
                let (slot, child) = match cells.iter().position(|(k, _)| key <= *k) {
                    Some(i) => (Some(i), cells[i].1),
                    None => (None, rightmost),
                };
                let Some(split) = self.insert_into(pager, child, key, payload)? else {
                    return Ok(None);
                };
                // The child now holds ≤ sep; `split.right` holds the rest.
                match slot {
                    Some(i) => {
                        let old_key = cells[i].0;
                        cells[i] = (split.sep, child);
                        cells.insert(i + 1, (old_key, split.right));
                    }
                    None => {
                        cells.push((split.sep, child));
                        rightmost = split.right;
                    }
                }
                let mut node = Node::Interior { rightmost, cells };
                if node.size() <= PAGE_SIZE {
                    *pager.page_mut(page_id)? = node.serialize();
                    return Ok(None);
                }
                // Split the interior node.
                let Node::Interior { rightmost, cells } = &mut node else {
                    unreachable!()
                };
                let mid = cells.len() / 2;
                let sep_entry = cells[mid];
                let right_cells: Vec<(i64, u32)> = cells[mid + 1..].to_vec();
                cells.truncate(mid);
                let left_rightmost = sep_entry.1;
                let right = Node::Interior {
                    rightmost: *rightmost,
                    cells: right_cells,
                };
                *rightmost = left_rightmost;
                let right_id = pager.allocate()?;
                *pager.page_mut(right_id)? = right.serialize();
                *pager.page_mut(page_id)? = node.serialize();
                Ok(Some(Split {
                    sep: sep_entry.0,
                    right: right_id,
                }))
            }
        }
    }

    /// Replace the payload of an existing key (same-size-or-smaller fast
    /// path; falls back to delete+insert).
    ///
    /// # Errors
    /// [`SqlError::Constraint`] if the key does not exist.
    pub fn update(&self, pager: &mut Pager, key: i64, payload: Vec<u8>) -> Result<(), SqlError> {
        if !self.delete(pager, key)? {
            return Err(SqlError::Constraint(format!(
                "update of missing rowid {key}"
            )));
        }
        self.insert(pager, key, payload)
    }

    /// Delete a key; returns whether it existed. (No page merging: pages may
    /// stay sparse until the table is dropped — a documented simplification.)
    ///
    /// # Errors
    /// Storage failures / corruption.
    pub fn delete(&self, pager: &mut Pager, key: i64) -> Result<bool, SqlError> {
        let mut page_id = self.root;
        loop {
            let node = Node::parse(pager.page(page_id)?)?;
            match node {
                Node::Leaf { next, mut cells } => {
                    let Ok(pos) = cells.binary_search_by_key(&key, |(k, _)| *k) else {
                        return Ok(false);
                    };
                    cells.remove(pos);
                    *pager.page_mut(page_id)? = Node::Leaf { next, cells }.serialize();
                    return Ok(true);
                }
                Node::Interior { rightmost, cells } => {
                    page_id = cells
                        .iter()
                        .find(|(k, _)| key <= *k)
                        .map(|(_, c)| *c)
                        .unwrap_or(rightmost);
                }
            }
        }
    }

    /// All `(key, payload)` pairs in key order.
    ///
    /// # Errors
    /// Storage failures / corruption.
    pub fn collect_all(&self, pager: &mut Pager) -> Result<Vec<(i64, Vec<u8>)>, SqlError> {
        // Find the leftmost leaf, then follow the chain.
        let mut page_id = self.root;
        loop {
            match Node::parse(pager.page(page_id)?)? {
                Node::Leaf { .. } => break,
                Node::Interior { rightmost, cells } => {
                    page_id = cells.first().map(|(_, c)| *c).unwrap_or(rightmost);
                }
            }
        }
        let mut out = Vec::new();
        loop {
            let Node::Leaf { next, cells } = Node::parse(pager.page(page_id)?)? else {
                return Err(SqlError::Corrupt("leaf chain hit an interior node".into()));
            };
            out.extend(cells);
            if next == 0 {
                break;
            }
            page_id = next;
        }
        Ok(out)
    }

    /// Largest key in the tree (next-rowid assignment).
    ///
    /// # Errors
    /// Storage failures / corruption.
    pub fn max_key(&self, pager: &mut Pager) -> Result<Option<i64>, SqlError> {
        let mut page_id = self.root;
        loop {
            match Node::parse(pager.page(page_id)?)? {
                Node::Leaf { cells, .. } => {
                    if let Some((k, _)) = cells.last() {
                        return Ok(Some(*k));
                    }
                    // The rightmost leaf can be empty after deletions; fall
                    // back to a full scan.
                    let all = self.collect_all(pager)?;
                    return Ok(all.last().map(|(k, _)| *k));
                }
                Node::Interior { rightmost, .. } => page_id = rightmost,
            }
        }
    }

    /// Free every page of the tree except the root, which is reset to an
    /// empty leaf (DELETE without WHERE).
    ///
    /// # Errors
    /// Storage failures / corruption.
    pub fn clear(&self, pager: &mut Pager) -> Result<(), SqlError> {
        let pages = self.all_pages(pager)?;
        for p in pages {
            if p != self.root {
                pager.free(p)?;
            }
        }
        *pager.page_mut(self.root)? = empty_leaf_page();
        Ok(())
    }

    /// Free the entire tree including the root (DROP TABLE).
    ///
    /// # Errors
    /// Storage failures / corruption.
    pub fn destroy(self, pager: &mut Pager) -> Result<(), SqlError> {
        let pages = self.all_pages(pager)?;
        for p in pages {
            pager.free(p)?;
        }
        Ok(())
    }

    fn all_pages(&self, pager: &mut Pager) -> Result<Vec<u32>, SqlError> {
        let mut stack = vec![self.root];
        let mut out = Vec::new();
        while let Some(p) = stack.pop() {
            out.push(p);
            if let Node::Interior { rightmost, cells } = Node::parse(pager.page(p)?)? {
                stack.push(rightmost);
                stack.extend(cells.iter().map(|(_, c)| *c));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::JournalMode;
    use crate::vfs::MemVfs;

    fn fresh() -> (Pager, BTree) {
        let mut pager = Pager::open(
            Box::new(MemVfs::new()),
            Box::new(MemVfs::new()),
            JournalMode::Off,
        )
        .expect("open");
        let tree = BTree::create(&mut pager).expect("create");
        (pager, tree)
    }

    fn payload(i: i64) -> Vec<u8> {
        format!("row-{i:08}").into_bytes()
    }

    #[test]
    fn insert_get_small() {
        let (mut pager, tree) = fresh();
        for i in [5i64, 1, 9, 3] {
            tree.insert(&mut pager, i, payload(i)).expect("insert");
        }
        assert_eq!(tree.get(&mut pager, 3).expect("get"), Some(payload(3)));
        assert_eq!(tree.get(&mut pager, 4).expect("get"), None);
    }

    #[test]
    fn duplicate_rejected() {
        let (mut pager, tree) = fresh();
        tree.insert(&mut pager, 1, payload(1)).expect("insert");
        assert!(matches!(
            tree.insert(&mut pager, 1, payload(1)),
            Err(SqlError::Constraint(_))
        ));
    }

    #[test]
    fn oversized_payload_rejected() {
        let (mut pager, tree) = fresh();
        assert!(matches!(
            tree.insert(&mut pager, 1, vec![0u8; MAX_PAYLOAD + 1]),
            Err(SqlError::RowTooLarge(_))
        ));
    }

    #[test]
    fn thousands_of_keys_with_splits() {
        let (mut pager, tree) = fresh();
        // Insert in a scrambled order to exercise interior splits.
        let mut keys: Vec<i64> = (0..3000).collect();
        let mut state = 12345u64;
        for i in (1..keys.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            keys.swap(i, j);
        }
        for &k in &keys {
            tree.insert(&mut pager, k, payload(k)).expect("insert");
        }
        // Spot-check lookups.
        for k in [0i64, 1, 1499, 2998, 2999] {
            assert_eq!(
                tree.get(&mut pager, k).expect("get"),
                Some(payload(k)),
                "key {k}"
            );
        }
        // Ordered scan returns everything in order.
        let all = tree.collect_all(&mut pager).expect("scan");
        assert_eq!(all.len(), 3000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(tree.max_key(&mut pager).expect("max"), Some(2999));
    }

    #[test]
    fn large_payloads_split_early() {
        let (mut pager, tree) = fresh();
        let big = vec![0xabu8; 1000];
        for i in 0..50 {
            tree.insert(&mut pager, i, big.clone()).expect("insert");
        }
        let all = tree.collect_all(&mut pager).expect("scan");
        assert_eq!(all.len(), 50);
        assert!(all.iter().all(|(_, p)| p == &big));
    }

    #[test]
    fn delete_and_rescan() {
        let (mut pager, tree) = fresh();
        for i in 0..100 {
            tree.insert(&mut pager, i, payload(i)).expect("insert");
        }
        for i in (0..100).step_by(2) {
            assert!(tree.delete(&mut pager, i).expect("delete"));
        }
        assert!(
            !tree.delete(&mut pager, 2).expect("delete again"),
            "already gone"
        );
        let all = tree.collect_all(&mut pager).expect("scan");
        assert_eq!(all.len(), 50);
        assert!(all.iter().all(|(k, _)| k % 2 == 1));
    }

    #[test]
    fn max_key_with_emptied_rightmost_leaf() {
        let (mut pager, tree) = fresh();
        for i in 0..500 {
            tree.insert(&mut pager, i, payload(i)).expect("insert");
        }
        // Delete a tail range that likely empties the rightmost leaf.
        for i in 300..500 {
            tree.delete(&mut pager, i).expect("delete");
        }
        assert_eq!(tree.max_key(&mut pager).expect("max"), Some(299));
    }

    #[test]
    fn update_replaces_payload() {
        let (mut pager, tree) = fresh();
        tree.insert(&mut pager, 7, payload(7)).expect("insert");
        tree.update(&mut pager, 7, b"new".to_vec()).expect("update");
        assert_eq!(tree.get(&mut pager, 7).expect("get"), Some(b"new".to_vec()));
        assert!(tree.update(&mut pager, 8, b"x".to_vec()).is_err());
    }

    #[test]
    fn clear_resets_and_frees() {
        let (mut pager, tree) = fresh();
        for i in 0..1000 {
            tree.insert(&mut pager, i, payload(i)).expect("insert");
        }
        let pages_before = pager.page_count();
        tree.clear(&mut pager).expect("clear");
        assert!(tree.collect_all(&mut pager).expect("scan").is_empty());
        assert_eq!(tree.max_key(&mut pager).expect("max"), None);
        // Freed pages are reused by new allocations rather than growing the
        // file.
        let again = BTree::create(&mut pager).expect("create");
        assert!(pager.page_count() <= pages_before, "freelist reuse");
        let _ = again;
    }

    #[test]
    fn persists_across_commit_and_cache_invalidation() {
        let (mut pager, tree) = fresh();
        for i in 0..200 {
            tree.insert(&mut pager, i, payload(i)).expect("insert");
        }
        pager.commit().expect("commit");
        pager.invalidate_cache().expect("invalidate");
        let all = tree.collect_all(&mut pager).expect("scan");
        assert_eq!(all.len(), 200);
    }

    #[test]
    fn empty_tree_scan_and_max() {
        let (mut pager, tree) = fresh();
        assert!(tree.collect_all(&mut pager).expect("scan").is_empty());
        assert_eq!(tree.max_key(&mut pager).expect("max"), None);
        assert_eq!(tree.get(&mut pager, 1).expect("get"), None);
    }
}
