//! minisql — an embedded relational database engine, built from scratch as
//! the reproduction's stand-in for SQLite (paper §3.2).
//!
//! The paper's SQL state abstraction requires an engine with a specific set
//! of properties, all reproduced here:
//!
//! * **single-file storage**: every object lives in one paged database file
//!   whose bytes can be mapped onto the PBFT state region,
//! * **a VFS layer** ([`Vfs`]) between the engine and its storage, which is
//!   where the PBFT integration hooks `modify()` notifications and where
//!   deterministic `now()`/`random()` replacements are injected ([`Env`]),
//! * **rollback-journal ACID transactions** ([`JournalMode::Rollback`]): a
//!   committed transaction survives crashes, an uncommitted one is rolled
//!   back on the next open — and a **no-ACID mode** ([`JournalMode::Off`],
//!   "no rollback journal and no flushing to disk on each operation") for
//!   the paper's §4.2 comparison,
//! * enough SQL to host real applications: CREATE/DROP TABLE, INSERT,
//!   SELECT with WHERE/GROUP BY/ORDER BY/LIMIT, UPDATE, DELETE, BEGIN/
//!   COMMIT/ROLLBACK, scalar functions and aggregates.
//!
//! Storage is a B+tree per table keyed by a 64-bit rowid, with a catalog
//! B+tree (root at page 1) playing the role of `sqlite_master`.
//!
//! # Example
//!
//! ```
//! use minisql::{Database, DbOptions, ExecOutcome, MemVfs, Value};
//!
//! # fn main() -> Result<(), minisql::SqlError> {
//! let mut db = Database::open(
//!     Box::new(MemVfs::new()),
//!     Box::new(MemVfs::new()),
//!     DbOptions::default(),
//! )?;
//! db.execute("CREATE TABLE votes (id INTEGER PRIMARY KEY, voter TEXT, choice TEXT)")?;
//! db.execute("INSERT INTO votes (voter, choice) VALUES ('alice', 'yes'), ('bob', 'no')")?;
//! let rows = db.query("SELECT choice, COUNT(*) FROM votes GROUP BY choice ORDER BY choice")?;
//! assert_eq!(rows.rows.len(), 2);
//! assert_eq!(rows.rows[0][0], Value::Text("no".into()));
//! # Ok(())
//! # }
//! ```

mod ast;
mod btree;
mod db;
mod env;
mod error;
mod journal;
mod pager;
mod parser;
mod record;
mod schema;
mod token;
mod value;
mod vfs;
pub mod wal;

pub use db::{Database, DbOptions, ExecOutcome, Rows};
pub use env::{Env, FixedEnv, SystemEnv};
pub use error::SqlError;
pub use pager::{IoStats, JournalMode, DEFAULT_WAL_AUTOCHECKPOINT, PAGE_SIZE};
pub use record::{decode_row, encode_row};
pub use value::Value;
pub use vfs::{MemVfs, Vfs, VfsError};
