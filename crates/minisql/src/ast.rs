//! The abstract syntax tree.

use crate::value::Value;

/// A column data type (SQLite-style affinities).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integer.
    Integer,
    /// 64-bit float.
    Real,
    /// UTF-8 text.
    Text,
    /// Binary blob.
    Blob,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ctype: ColType,
    /// INTEGER PRIMARY KEY → rowid alias.
    pub primary_key: bool,
    /// NOT NULL constraint.
    pub not_null: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `||`
    Concat,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `LIKE`
    Like,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT(*) / COUNT(expr)
    Count,
    /// SUM(expr)
    Sum,
    /// AVG(expr)
    Avg,
    /// MIN(expr)
    Min,
    /// MAX(expr)
    Max,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference.
    Column(String),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// Scalar function call.
    Call {
        /// Function name (lowercased).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Aggregate call; `None` argument means COUNT(*).
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Argument (`None` for `*`).
        arg: Option<Box<Expr>>,
    },
}

/// A SELECT output column.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// Expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// AS alias.
        alias: Option<String>,
    },
}

/// ORDER BY term.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// Sort key expression.
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// IF NOT EXISTS.
        if_not_exists: bool,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
        /// IF EXISTS.
        if_exists: bool,
    },
    /// INSERT.
    Insert {
        /// Target table.
        table: String,
        /// Column list (empty = declared order).
        columns: Vec<String>,
        /// One or more value tuples.
        rows: Vec<Vec<Expr>>,
    },
    /// SELECT.
    Select(Box<SelectStmt>),
    /// UPDATE.
    Update {
        /// Target table.
        table: String,
        /// SET assignments.
        sets: Vec<(String, Expr)>,
        /// WHERE filter.
        filter: Option<Expr>,
    },
    /// DELETE.
    Delete {
        /// Target table.
        table: String,
        /// WHERE filter.
        filter: Option<Expr>,
    },
    /// BEGIN.
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
}

/// The body of a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Output columns.
    pub items: Vec<SelectItem>,
    /// FROM table (optional: `SELECT 1+1`).
    pub from: Option<String>,
    /// WHERE filter.
    pub filter: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// ORDER BY terms.
    pub order_by: Vec<OrderBy>,
    /// LIMIT.
    pub limit: Option<u64>,
}
