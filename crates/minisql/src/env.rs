//! The environment hooks for non-deterministic SQL functions.
//!
//! "By hooking into this subsystem, we ... also re-implement
//! non-deterministic functions, such as system time and random values, by
//! using the upcalls described in Section 2" (paper §3.2). `now()` and
//! `random()` route through this trait; `pbft-sql` supplies an
//! implementation fed by the primary's agreed non-deterministic data, so
//! every replica evaluates them identically.

/// Source of time and randomness for SQL functions.
pub trait Env {
    /// Current time in nanoseconds (returned by `now()`).
    fn now_ns(&mut self) -> i64;
    /// A random 63-bit value (returned by `random()`).
    fn random(&mut self) -> i64;
}

/// A fixed environment — deterministic values set by the embedder.
#[derive(Debug, Clone, Default)]
pub struct FixedEnv {
    /// Value `now()` returns.
    pub now_ns: i64,
    /// Seed for the `random()` sequence (advances per call so that two
    /// `random()` calls in one statement differ, deterministically).
    pub random_state: i64,
}

impl Env for FixedEnv {
    fn now_ns(&mut self) -> i64 {
        self.now_ns
    }

    fn random(&mut self) -> i64 {
        // SplitMix64 step, truncated to the positive range.
        let mut z = (self.random_state as u64).wrapping_add(0x9e3779b97f4a7c15);
        self.random_state = z as i64;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        ((z ^ (z >> 31)) >> 1) as i64
    }
}

/// The real system environment (what a standalone, non-replicated database
/// would use — and exactly what a replicated one must *not* use).
#[derive(Debug, Clone, Default)]
pub struct SystemEnv {
    counter: u64,
}

impl Env for SystemEnv {
    fn now_ns(&mut self) -> i64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as i64)
            .unwrap_or(0)
    }

    fn random(&mut self) -> i64 {
        // Hash of time + counter; not cryptographic, like SQLite's default.
        self.counter = self.counter.wrapping_add(1);
        let t = self.now_ns() as u64 ^ self.counter.rotate_left(32);
        let mut z = t.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        ((z ^ (z >> 27)) >> 1) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_env_is_deterministic() {
        let mut a = FixedEnv {
            now_ns: 42,
            random_state: 7,
        };
        let mut b = FixedEnv {
            now_ns: 42,
            random_state: 7,
        };
        assert_eq!(a.now_ns(), 42);
        assert_eq!(a.random(), b.random());
        assert_eq!(a.random(), b.random());
    }

    #[test]
    fn fixed_env_random_advances() {
        let mut e = FixedEnv::default();
        assert_ne!(e.random(), e.random());
    }

    #[test]
    fn random_is_non_negative() {
        let mut e = FixedEnv {
            now_ns: 0,
            random_state: -12345,
        };
        for _ in 0..100 {
            assert!(e.random() >= 0);
        }
        let mut s = SystemEnv::default();
        assert!(s.random() >= 0);
        assert!(s.now_ns() > 0);
    }
}
