//! SQL values and their comparison/arithmetic semantics.

use std::cmp::Ordering;
use std::fmt;

/// A SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Integer(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 text.
    Text(String),
    /// Binary blob.
    Blob(Vec<u8>),
}

impl Value {
    /// SQL truthiness: NULL and zero are false.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Integer(i) => *i != 0,
            Value::Real(r) => *r != 0.0,
            Value::Text(t) => !t.is_empty(),
            Value::Blob(b) => !b.is_empty(),
        }
    }

    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (integers and reals; NULL propagates as `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            Value::Real(r) => Some(*r as i64),
            _ => None,
        }
    }

    /// SQL three-valued comparison; `None` when either side is NULL.
    /// Cross-type ordering follows SQLite's storage-class order:
    /// numbers < text < blob.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Integer(a), Integer(b)) => Some(a.cmp(b)),
            (Real(a), Real(b)) => Some(a.partial_cmp(b).unwrap_or(Ordering::Equal)),
            (Integer(a), Real(b)) => Some((*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal)),
            (Real(a), Integer(b)) => Some(a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Blob(a), Blob(b)) => Some(a.cmp(b)),
            (Integer(_) | Real(_), Text(_) | Blob(_)) => Some(Ordering::Less),
            (Text(_) | Blob(_), Integer(_) | Real(_)) => Some(Ordering::Greater),
            (Text(_), Blob(_)) => Some(Ordering::Less),
            (Blob(_), Text(_)) => Some(Ordering::Greater),
        }
    }

    /// Total order for ORDER BY / GROUP BY (NULLs first, like SQLite).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self.compare(other).unwrap_or(Ordering::Equal),
        }
    }

    /// Type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Integer(_) => "integer",
            Value::Real(_) => "real",
            Value::Text(_) => "text",
            Value::Blob(_) => "blob",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(t) => write!(f, "{t}"),
            Value::Blob(b) => {
                write!(f, "x'")?;
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                write!(f, "'")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Integer(0).is_truthy());
        assert!(Value::Integer(1).is_truthy());
        assert!(!Value::Real(0.0).is_truthy());
        assert!(Value::Text("x".into()).is_truthy());
        assert!(!Value::Text(String::new()).is_truthy());
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.compare(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).compare(&Value::Null), None);
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(
            Value::Integer(2).compare(&Value::Real(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Integer(2).compare(&Value::Real(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Real(3.0).compare(&Value::Integer(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn storage_class_ordering() {
        assert_eq!(
            Value::Integer(9).compare(&Value::Text("a".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Text("z".into()).compare(&Value::Blob(vec![0])),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Blob(vec![0]).compare(&Value::Integer(5)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn total_order_puts_nulls_first() {
        let mut vals = [Value::Integer(1), Value::Null, Value::Text("a".into())];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Integer(-5).to_string(), "-5");
        assert_eq!(Value::Text("hi".into()).to_string(), "hi");
        assert_eq!(Value::Blob(vec![0xab, 0x01]).to_string(), "x'ab01'");
    }
}
