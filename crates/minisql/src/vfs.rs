//! The virtual file system layer.
//!
//! "In SQLite's quest to be a multi-platform product, the authors have
//! defined an abstraction layer called VFS that sits between the relational
//! engine and the operating system. By hooking into this subsystem, we not
//! only can manage memory mapping and perform PBFT-required memory
//! modification notifications..." (paper §3.2). `pbft-sql` provides exactly
//! such a hook by implementing [`Vfs`] over the replicated state region.

use std::fmt;

/// Storage-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// An access outside the current file length that cannot be satisfied.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Current file length.
        file_len: u64,
    },
    /// The backing store refused the operation.
    Backend(String),
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::OutOfBounds {
                offset,
                len,
                file_len,
            } => write!(f, "access at {offset}+{len} beyond file length {file_len}"),
            VfsError::Backend(m) => write!(f, "backend error: {m}"),
        }
    }
}

impl std::error::Error for VfsError {}

/// A random-access file abstraction. Reads past the end return zeros (sparse
/// semantics, matching the paper's sparse-file trick); writes extend the
/// file as needed.
pub trait Vfs {
    /// Read `buf.len()` bytes at `offset` (zero-filled past the end).
    ///
    /// # Errors
    /// Backend failures only.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), VfsError>;

    /// Write `data` at `offset`, extending the file if needed.
    ///
    /// # Errors
    /// Backend failures (e.g. a fixed-size region overflowing).
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), VfsError>;

    /// Current file length in bytes.
    fn len(&self) -> u64;

    /// True when the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Truncate or extend to `len`.
    ///
    /// # Errors
    /// Backend failures.
    fn set_len(&mut self, len: u64) -> Result<(), VfsError>;

    /// Flush to stable storage (the fsync equivalent the ACID mode relies
    /// on; implementations model durability and may count cost).
    ///
    /// # Errors
    /// Backend failures.
    fn sync(&mut self) -> Result<(), VfsError>;
}

/// An in-memory file with crash-durability modeling: [`MemVfs::crash`]
/// yields the file as it would be found after a power failure — only
/// content present at the last `sync` survives.
#[derive(Debug, Clone, Default)]
pub struct MemVfs {
    data: Vec<u8>,
    stable: Vec<u8>,
    syncs: u64,
}

impl MemVfs {
    /// An empty in-memory file.
    pub fn new() -> MemVfs {
        MemVfs::default()
    }

    /// The file a post-crash open would see (last synced image).
    pub fn crash(&self) -> MemVfs {
        MemVfs {
            data: self.stable.clone(),
            stable: self.stable.clone(),
            syncs: 0,
        }
    }

    /// Number of syncs performed (tests assert on durability behaviour).
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// Current (volatile) contents.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

impl Vfs for MemVfs {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), VfsError> {
        let off = offset as usize;
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.data.get(off + i).copied().unwrap_or(0);
        }
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), VfsError> {
        let end = offset as usize + data.len();
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.data[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn set_len(&mut self, len: u64) -> Result<(), VfsError> {
        self.data.resize(len as usize, 0);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), VfsError> {
        self.stable = self.data.clone();
        self.syncs += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_reads_return_zeros() {
        let v = MemVfs::new();
        let mut buf = [1u8; 8];
        v.read_at(100, &mut buf).expect("read");
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn write_extends_and_reads_back() {
        let mut v = MemVfs::new();
        v.write_at(10, b"hello").expect("write");
        assert_eq!(v.len(), 15);
        let mut buf = [0u8; 5];
        v.read_at(10, &mut buf).expect("read");
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn crash_loses_unsynced_writes() {
        let mut v = MemVfs::new();
        v.write_at(0, b"durable").expect("write");
        v.sync().expect("sync");
        v.write_at(0, b"vanishd").expect("write");
        let crashed = v.crash();
        let mut buf = [0u8; 7];
        crashed.read_at(0, &mut buf).expect("read");
        assert_eq!(&buf, b"durable");
        assert_eq!(v.sync_count(), 1);
    }

    #[test]
    fn set_len_truncates() {
        let mut v = MemVfs::new();
        v.write_at(0, b"0123456789").expect("write");
        v.set_len(4).expect("truncate");
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        let mut buf = [9u8; 6];
        v.read_at(2, &mut buf).expect("read");
        assert_eq!(&buf, &[b'2', b'3', 0, 0, 0, 0]);
    }
}
