//! The engine's error type.

use std::fmt;

use crate::vfs::VfsError;

/// Errors returned by every fallible minisql operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Tokenizer rejected the input.
    Lex(String),
    /// Parser rejected the statement.
    Parse(String),
    /// Schema-level problem (unknown table/column, duplicate, …).
    Schema(String),
    /// Runtime evaluation problem (type mismatch, division by zero, …).
    Runtime(String),
    /// Constraint violation (primary key, not null).
    Constraint(String),
    /// A row exceeded the single-page payload limit.
    RowTooLarge(usize),
    /// Storage-layer failure.
    Io(VfsError),
    /// The database file is corrupt or not a minisql file.
    Corrupt(String),
    /// Transaction state misuse (nested BEGIN, COMMIT without BEGIN).
    Txn(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Schema(m) => write!(f, "schema error: {m}"),
            SqlError::Runtime(m) => write!(f, "runtime error: {m}"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::RowTooLarge(n) => {
                write!(f, "row of {n} bytes exceeds the page payload limit")
            }
            SqlError::Io(e) => write!(f, "io error: {e}"),
            SqlError::Corrupt(m) => write!(f, "database corrupt: {m}"),
            SqlError::Txn(m) => write!(f, "transaction error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<VfsError> for SqlError {
    fn from(e: VfsError) -> Self {
        SqlError::Io(e)
    }
}
