//! SQL tokenizer.

use crate::error::SqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (keywords are matched case-insensitively
    /// at parse time).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// 'single quoted' string ('' escapes a quote).
    Str(String),
    /// x'hex' blob literal.
    Hex(Vec<u8>),
    /// Punctuation / operator.
    Punct(&'static str),
}

impl Token {
    /// Is this the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
///
/// # Errors
/// [`SqlError::Lex`] on unterminated strings, bad hex, or unknown bytes.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | ';' | '+' | '-' | '/' | '%' | '*' | '.' => {
                out.push(Token::Punct(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    ';' => ";",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    '%' => "%",
                    '*' => "*",
                    _ => ".",
                }));
                i += 1;
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                out.push(Token::Punct("||"));
                i += 2;
            }
            '=' => {
                out.push(Token::Punct("="));
                i += 1;
                if bytes.get(i) == Some(&b'=') {
                    i += 1; // accept == as =
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Punct("!="));
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Punct("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Punct("!="));
                    i += 2;
                } else {
                    out.push(Token::Punct("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Punct(">="));
                    i += 2;
                } else {
                    out.push(Token::Punct(">"));
                    i += 1;
                }
            }
            '\'' => {
                let (s, ni) = lex_string(sql, i)?;
                out.push(Token::Str(s));
                i = ni;
            }
            'x' | 'X' if bytes.get(i + 1) == Some(&b'\'') => {
                let (s, ni) = lex_string(sql, i + 1)?;
                let mut blob = Vec::with_capacity(s.len() / 2);
                if s.len() % 2 != 0 {
                    return Err(SqlError::Lex("odd-length hex literal".into()));
                }
                for pair in s.as_bytes().chunks(2) {
                    let hi = hex_digit(pair[0])?;
                    let lo = hex_digit(pair[1])?;
                    blob.push(hi << 4 | lo);
                }
                out.push(Token::Hex(blob));
                i = ni;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit()) {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &sql[start..i];
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| SqlError::Lex(format!("bad float literal {text}")))?;
                    out.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| SqlError::Lex(format!("bad integer literal {text}")))?;
                    out.push(Token::Int(v));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_owned()));
            }
            '"' => {
                // Quoted identifier.
                let end = sql[i + 1..]
                    .find('"')
                    .ok_or_else(|| SqlError::Lex("unterminated quoted identifier".into()))?;
                out.push(Token::Ident(sql[i + 1..i + 1 + end].to_owned()));
                i += end + 2;
            }
            other => return Err(SqlError::Lex(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

fn lex_string(sql: &str, start: usize) -> Result<(String, usize), SqlError> {
    debug_assert_eq!(sql.as_bytes()[start], b'\'');
    // Scan raw bytes for the terminating quote (UTF-8 continuation bytes can
    // never equal the ASCII quote), then decode the whole slice at once so
    // multi-byte characters survive.
    let bytes = sql.as_bytes();
    let mut raw = Vec::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                raw.push(b'\'');
                i += 2;
            } else {
                let s = String::from_utf8(raw)
                    .map_err(|_| SqlError::Lex("invalid utf-8 in string literal".into()))?;
                return Ok((s, i + 1));
            }
        } else {
            raw.push(bytes[i]);
            i += 1;
        }
    }
    Err(SqlError::Lex("unterminated string literal".into()))
}

fn hex_digit(b: u8) -> Result<u8, SqlError> {
    match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        b'A'..=b'F' => Ok(b - b'A' + 10),
        other => Err(SqlError::Lex(format!("bad hex digit {:?}", other as char))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_idents() {
        let toks = tokenize("SELECT foo FROM Bar_9").expect("lex");
        assert_eq!(toks.len(), 4);
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Ident("foo".into()));
    }

    #[test]
    fn numbers() {
        let toks = tokenize("1 2.5 1e3 -7").expect("lex");
        assert_eq!(toks[0], Token::Int(1));
        assert_eq!(toks[1], Token::Float(2.5));
        assert_eq!(toks[2], Token::Float(1000.0));
        assert_eq!(toks[3], Token::Punct("-"));
        assert_eq!(toks[4], Token::Int(7));
    }

    #[test]
    fn strings_with_escapes() {
        let toks = tokenize("'it''s'").expect("lex");
        assert_eq!(toks[0], Token::Str("it's".into()));
    }

    #[test]
    fn hex_blobs() {
        let toks = tokenize("x'DEADbeef'").expect("lex");
        assert_eq!(toks[0], Token::Hex(vec![0xde, 0xad, 0xbe, 0xef]));
        assert!(tokenize("x'abc'").is_err());
        assert!(tokenize("x'zz'").is_err());
    }

    #[test]
    fn operators() {
        let toks = tokenize("a <= b <> c == d || e").expect("lex");
        assert_eq!(toks[1], Token::Punct("<="));
        assert_eq!(toks[3], Token::Punct("!="));
        assert_eq!(toks[5], Token::Punct("="));
        assert_eq!(toks[7], Token::Punct("||"));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT 1 -- the answer\n, 2").expect("lex");
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("\"weird name\"").expect("lex");
        assert_eq!(toks[0], Token::Ident("weird name".into()));
    }
}
