//! The database engine: statement execution over the pager/B+tree storage.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use crate::ast::*;
use crate::btree::BTree;
use crate::env::{Env, SystemEnv};
use crate::error::SqlError;
use crate::pager::{IoStats, JournalMode, Pager};
use crate::parser::{parse, parse_script};
use crate::record::{decode_row, encode_row};
use crate::schema::{delete_table, load_catalog, save_new_table, TableSchema};
use crate::value::Value;
use crate::vfs::Vfs;

/// Result rows from a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Rows {
    /// Output column names.
    pub columns: Vec<String>,
    /// Row values.
    pub rows: Vec<Vec<Value>>,
}

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// SELECT results.
    Rows(Rows),
    /// Rows affected by INSERT/UPDATE/DELETE.
    Affected(u64),
    /// DDL / transaction control.
    Done,
}

/// Database configuration.
pub struct DbOptions {
    /// Journal / durability mode (paper §4.2's ACID axis).
    pub journal_mode: JournalMode,
    /// WAL auto-checkpoint threshold in committed frames (WAL mode only).
    pub wal_autocheckpoint: u64,
    /// Environment for `now()` / `random()`.
    pub env: Box<dyn Env>,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            journal_mode: JournalMode::Rollback,
            wal_autocheckpoint: crate::pager::DEFAULT_WAL_AUTOCHECKPOINT,
            env: Box::new(SystemEnv::default()),
        }
    }
}

impl std::fmt::Debug for DbOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbOptions")
            .field("journal_mode", &self.journal_mode)
            .finish()
    }
}

/// An open database.
pub struct Database {
    pager: Pager,
    env: Box<dyn Env>,
    catalog: Option<BTreeMap<String, TableSchema>>,
    in_txn: bool,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("pager", &self.pager)
            .field("in_txn", &self.in_txn)
            .finish()
    }
}

impl Database {
    /// Open (or create) a database over the given VFS pair. Journal recovery
    /// runs here — "an uncommitted transaction will be rolled back on the
    /// next attempt to access the database file" (§3.2).
    ///
    /// # Errors
    /// Storage failures or a corrupt file.
    pub fn open(
        db: Box<dyn Vfs>,
        journal: Box<dyn Vfs>,
        opts: DbOptions,
    ) -> Result<Database, SqlError> {
        let mut pager = Pager::open(db, journal, opts.journal_mode)?;
        pager.set_wal_autocheckpoint(opts.wal_autocheckpoint);
        Ok(Database {
            pager,
            env: opts.env,
            catalog: None,
            in_txn: false,
        })
    }

    /// Fold the WAL into the database file now (no-op outside WAL mode).
    ///
    /// # Errors
    /// Storage failures.
    pub fn wal_checkpoint(&mut self) -> Result<(), SqlError> {
        self.pager.wal_checkpoint()
    }

    /// Committed frames currently in the WAL (0 outside WAL mode).
    pub fn wal_frames(&self) -> u64 {
        self.pager.wal_frames()
    }

    /// Total pages in the database file (including uncommitted extensions).
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Whether an uncommitted transaction is in progress.
    pub fn has_uncommitted(&self) -> bool {
        self.pager.has_dirty()
    }

    /// Replace the environment (e.g. per-request deterministic values).
    pub fn set_env(&mut self, env: Box<dyn Env>) {
        self.env = env;
    }

    /// Drain I/O statistics (for execution-cost accounting).
    pub fn take_io_stats(&mut self) -> IoStats {
        self.pager.take_stats()
    }

    /// Read access to the backing database file (snapshots, diagnostics).
    pub fn db_file(&self) -> &dyn Vfs {
        self.pager.db_vfs()
    }

    /// Read access to the rollback journal file.
    pub fn journal_file(&self) -> &dyn Vfs {
        self.pager.journal_vfs()
    }

    /// Drop all caches because the backing file changed underneath (PBFT
    /// state transfer).
    ///
    /// # Errors
    /// [`SqlError::Corrupt`] if the new content is not a database.
    pub fn invalidate_cache(&mut self) -> Result<(), SqlError> {
        self.catalog = None;
        self.in_txn = false;
        self.pager.invalidate_cache()
    }

    /// Execute one statement.
    ///
    /// # Errors
    /// Parse/validation/storage errors. Outside an explicit transaction the
    /// statement is atomic; inside one, an error aborts the whole
    /// transaction (a documented simplification vs. SQLite's statement-level
    /// rollback).
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome, SqlError> {
        let stmt = parse(sql)?;
        self.execute_stmt(&stmt)
    }

    /// Execute several `;`-separated statements; returns the last outcome.
    ///
    /// # Errors
    /// Stops at the first failing statement.
    pub fn execute_script(&mut self, sql: &str) -> Result<ExecOutcome, SqlError> {
        let stmts = parse_script(sql)?;
        let mut last = ExecOutcome::Done;
        for stmt in &stmts {
            last = self.execute_stmt(stmt)?;
        }
        Ok(last)
    }

    /// Convenience: execute and expect rows.
    ///
    /// # Errors
    /// As [`Database::execute`], plus a runtime error when the statement
    /// produced no rows.
    pub fn query(&mut self, sql: &str) -> Result<Rows, SqlError> {
        match self.execute(sql)? {
            ExecOutcome::Rows(r) => Ok(r),
            other => Err(SqlError::Runtime(format!(
                "statement produced {other:?}, not rows"
            ))),
        }
    }

    fn execute_stmt(&mut self, stmt: &Stmt) -> Result<ExecOutcome, SqlError> {
        match stmt {
            Stmt::Begin => {
                if self.in_txn {
                    return Err(SqlError::Txn("nested BEGIN".into()));
                }
                self.in_txn = true;
                return Ok(ExecOutcome::Done);
            }
            Stmt::Commit => {
                if !self.in_txn {
                    return Err(SqlError::Txn("COMMIT outside a transaction".into()));
                }
                self.pager.commit()?;
                self.in_txn = false;
                return Ok(ExecOutcome::Done);
            }
            Stmt::Rollback => {
                if !self.in_txn {
                    return Err(SqlError::Txn("ROLLBACK outside a transaction".into()));
                }
                self.pager.rollback();
                self.catalog = None;
                self.in_txn = false;
                return Ok(ExecOutcome::Done);
            }
            _ => {}
        }
        let result = self.run(stmt);
        match result {
            Ok(outcome) => {
                if !self.in_txn {
                    self.pager.commit()?;
                }
                Ok(outcome)
            }
            Err(e) => {
                self.pager.rollback();
                self.catalog = None;
                self.in_txn = false;
                Err(e)
            }
        }
    }

    fn run(&mut self, stmt: &Stmt) -> Result<ExecOutcome, SqlError> {
        match stmt {
            Stmt::CreateTable {
                name,
                columns,
                if_not_exists,
            } => self.create_table(name, columns, *if_not_exists),
            Stmt::DropTable { name, if_exists } => self.drop_table(name, *if_exists),
            Stmt::Insert {
                table,
                columns,
                rows,
            } => self.insert(table, columns, rows),
            Stmt::Select(s) => Ok(ExecOutcome::Rows(self.select(s)?)),
            Stmt::Update {
                table,
                sets,
                filter,
            } => self.update(table, sets, filter.as_ref()),
            Stmt::Delete { table, filter } => self.delete(table, filter.as_ref()),
            Stmt::Begin | Stmt::Commit | Stmt::Rollback => unreachable!("handled above"),
        }
    }

    // ------------------------------------------------------------------
    // Catalog
    // ------------------------------------------------------------------

    fn catalog(&mut self) -> Result<&BTreeMap<String, TableSchema>, SqlError> {
        if self.catalog.is_none() {
            self.catalog = Some(load_catalog(&mut self.pager)?);
        }
        Ok(self.catalog.as_ref().expect("just loaded"))
    }

    fn table(&mut self, name: &str) -> Result<TableSchema, SqlError> {
        self.catalog()?
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| SqlError::Schema(format!("no such table: {name}")))
    }

    fn create_table(
        &mut self,
        name: &str,
        columns: &[ColumnDef],
        if_not_exists: bool,
    ) -> Result<ExecOutcome, SqlError> {
        if columns.is_empty() {
            return Err(SqlError::Schema("a table needs at least one column".into()));
        }
        let mut seen = Vec::new();
        for c in columns {
            let lower = c.name.to_ascii_lowercase();
            if seen.contains(&lower) {
                return Err(SqlError::Schema(format!("duplicate column {}", c.name)));
            }
            seen.push(lower);
            if c.primary_key && c.ctype != ColType::Integer {
                return Err(SqlError::Schema(
                    "only INTEGER PRIMARY KEY is supported".into(),
                ));
            }
        }
        if columns.iter().filter(|c| c.primary_key).count() > 1 {
            return Err(SqlError::Schema("multiple primary keys".into()));
        }
        if self.catalog()?.contains_key(&name.to_ascii_lowercase()) {
            if if_not_exists {
                return Ok(ExecOutcome::Done);
            }
            return Err(SqlError::Schema(format!("table {name} already exists")));
        }
        let tree = BTree::create(&mut self.pager)?;
        let mut schema = TableSchema {
            id: 0,
            name: name.to_owned(),
            columns: columns.to_vec(),
            root: tree.root,
        };
        save_new_table(&mut self.pager, &mut schema)?;
        self.catalog = None;
        Ok(ExecOutcome::Done)
    }

    fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<ExecOutcome, SqlError> {
        let schema = match self.table(name) {
            Ok(s) => s,
            Err(_) if if_exists => return Ok(ExecOutcome::Done),
            Err(e) => return Err(e),
        };
        BTree { root: schema.root }.destroy(&mut self.pager)?;
        delete_table(&mut self.pager, schema.id)?;
        self.catalog = None;
        Ok(ExecOutcome::Done)
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    fn insert(
        &mut self,
        table: &str,
        columns: &[String],
        rows: &[Vec<Expr>],
    ) -> Result<ExecOutcome, SqlError> {
        let schema = self.table(table)?;
        let tree = BTree { root: schema.root };
        // Map the provided column list to schema indices.
        let indices: Vec<usize> = if columns.is_empty() {
            (0..schema.columns.len()).collect()
        } else {
            columns
                .iter()
                .map(|c| {
                    schema
                        .column_index(c)
                        .ok_or_else(|| SqlError::Schema(format!("no such column: {c}")))
                })
                .collect::<Result<_, _>>()?
        };
        let mut affected = 0u64;
        let mut next_rowid = tree.max_key(&mut self.pager)?.unwrap_or(0) + 1;
        for tuple in rows {
            if tuple.len() != indices.len() {
                return Err(SqlError::Schema(format!(
                    "{} values for {} columns",
                    tuple.len(),
                    indices.len()
                )));
            }
            let mut row = vec![Value::Null; schema.columns.len()];
            for (expr, &idx) in tuple.iter().zip(&indices) {
                let v = self.eval(expr, &Ctx::none())?;
                row[idx] = coerce(v, schema.columns[idx].ctype)?;
            }
            // Rowid assignment via the INTEGER PRIMARY KEY alias.
            let rowid = match schema.pk_index() {
                Some(pk) => match &row[pk] {
                    Value::Null => {
                        let id = next_rowid;
                        row[pk] = Value::Integer(id);
                        id
                    }
                    Value::Integer(i) => *i,
                    other => {
                        return Err(SqlError::Constraint(format!(
                            "primary key must be an integer, got {}",
                            other.type_name()
                        )))
                    }
                },
                None => next_rowid,
            };
            next_rowid = next_rowid.max(rowid + 1);
            for (i, c) in schema.columns.iter().enumerate() {
                if c.not_null && row[i].is_null() {
                    return Err(SqlError::Constraint(format!(
                        "{}.{} is NOT NULL",
                        table, c.name
                    )));
                }
            }
            tree.insert(&mut self.pager, rowid, encode_row(&row))?;
            affected += 1;
        }
        Ok(ExecOutcome::Affected(affected))
    }

    /// Rows of a table, honoring a `pk = literal` point-lookup fast path.
    fn scan(
        &mut self,
        schema: &TableSchema,
        filter: Option<&Expr>,
    ) -> Result<Vec<(i64, Vec<Value>)>, SqlError> {
        let tree = BTree { root: schema.root };
        if let Some(rowid) = filter.and_then(|f| pk_eq_literal(f, schema)) {
            return match tree.get(&mut self.pager, rowid)? {
                Some(payload) => Ok(vec![(rowid, decode_row(&payload)?)]),
                None => Ok(Vec::new()),
            };
        }
        let mut out = Vec::new();
        for (rowid, payload) in tree.collect_all(&mut self.pager)? {
            let row = decode_row(&payload)?;
            if let Some(f) = filter {
                let keep = self.eval(f, &Ctx::row(schema, &row))?;
                if !keep.is_truthy() {
                    continue;
                }
            }
            out.push((rowid, row));
        }
        Ok(out)
    }

    fn update(
        &mut self,
        table: &str,
        sets: &[(String, Expr)],
        filter: Option<&Expr>,
    ) -> Result<ExecOutcome, SqlError> {
        let schema = self.table(table)?;
        let tree = BTree { root: schema.root };
        let set_indices: Vec<(usize, &Expr)> = sets
            .iter()
            .map(|(c, e)| {
                schema
                    .column_index(c)
                    .map(|i| (i, e))
                    .ok_or_else(|| SqlError::Schema(format!("no such column: {c}")))
            })
            .collect::<Result<_, _>>()?;
        let matching = self.scan(&schema, filter)?;
        let mut affected = 0u64;
        for (rowid, row) in matching {
            let mut new_row = row.clone();
            for (idx, expr) in &set_indices {
                let v = self.eval(expr, &Ctx::row(&schema, &row))?;
                new_row[*idx] = coerce(v, schema.columns[*idx].ctype)?;
            }
            for (i, c) in schema.columns.iter().enumerate() {
                if c.not_null && new_row[i].is_null() {
                    return Err(SqlError::Constraint(format!(
                        "{}.{} is NOT NULL",
                        table, c.name
                    )));
                }
            }
            // A changed primary key moves the row.
            let new_rowid = match schema.pk_index() {
                Some(pk) => match &new_row[pk] {
                    Value::Integer(i) => *i,
                    other => {
                        return Err(SqlError::Constraint(format!(
                            "primary key must be an integer, got {}",
                            other.type_name()
                        )))
                    }
                },
                None => rowid,
            };
            if new_rowid != rowid {
                tree.delete(&mut self.pager, rowid)?;
                tree.insert(&mut self.pager, new_rowid, encode_row(&new_row))?;
            } else {
                tree.update(&mut self.pager, rowid, encode_row(&new_row))?;
            }
            affected += 1;
        }
        Ok(ExecOutcome::Affected(affected))
    }

    fn delete(&mut self, table: &str, filter: Option<&Expr>) -> Result<ExecOutcome, SqlError> {
        let schema = self.table(table)?;
        let tree = BTree { root: schema.root };
        if filter.is_none() {
            let count = tree.collect_all(&mut self.pager)?.len() as u64;
            tree.clear(&mut self.pager)?;
            return Ok(ExecOutcome::Affected(count));
        }
        let matching = self.scan(&schema, filter)?;
        let mut affected = 0u64;
        for (rowid, _) in matching {
            tree.delete(&mut self.pager, rowid)?;
            affected += 1;
        }
        Ok(ExecOutcome::Affected(affected))
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn select(&mut self, s: &SelectStmt) -> Result<Rows, SqlError> {
        let schema = match &s.from {
            Some(t) => Some(self.table(t)?),
            None => None,
        };
        let source: Vec<(i64, Vec<Value>)> = match &schema {
            Some(sch) => self.scan(sch, s.filter.as_ref())?,
            None => {
                // FROM-less SELECT: one synthetic row (with WHERE applied).
                let keep = match &s.filter {
                    Some(f) => self.eval(f, &Ctx::none())?.is_truthy(),
                    None => true,
                };
                if keep {
                    vec![(0, Vec::new())]
                } else {
                    Vec::new()
                }
            }
        };

        let aggregate_mode = !s.group_by.is_empty()
            || s.items
                .iter()
                .any(|i| matches!(i, SelectItem::Expr { expr, .. } if contains_aggregate(expr)));

        let columns = self.output_names(s, schema.as_ref());
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::new(); // (order keys, output)

        if aggregate_mode {
            // Group rows: (group key, member rows borrowed from `source`).
            type Groups<'a> = Vec<(Vec<Value>, Vec<&'a (i64, Vec<Value>)>)>;
            let mut groups: Groups<'_> = Vec::new();
            for row in &source {
                let key: Vec<Value> = s
                    .group_by
                    .iter()
                    .map(|e| self.eval(e, &Ctx::maybe(schema.as_ref(), Some(&row.1))))
                    .collect::<Result<_, _>>()?;
                match groups.iter_mut().find(|(k, _)| {
                    k.len() == key.len()
                        && k.iter()
                            .zip(&key)
                            .all(|(a, b)| a.total_cmp(b) == Ordering::Equal)
                }) {
                    Some((_, members)) => members.push(row),
                    None => groups.push((key, vec![row])),
                }
            }
            if groups.is_empty() && s.group_by.is_empty() {
                // Aggregate over an empty source still yields one row.
                groups.push((Vec::new(), Vec::new()));
            }
            for (_, members) in &groups {
                let rows: Vec<&[Value]> = members.iter().map(|(_, r)| r.as_slice()).collect();
                let mut out_row = Vec::new();
                for item in &s.items {
                    match item {
                        SelectItem::Wildcard => {
                            if let Some(first) = rows.first() {
                                out_row.extend(first.iter().cloned());
                            }
                        }
                        SelectItem::Expr { expr, .. } => {
                            out_row.push(self.eval_agg(expr, schema.as_ref(), &rows)?);
                        }
                    }
                }
                let order_keys: Vec<Value> = s
                    .order_by
                    .iter()
                    .map(|o| self.eval_agg(&o.expr, schema.as_ref(), &rows))
                    .collect::<Result<_, _>>()?;
                keyed.push((order_keys, out_row));
            }
        } else {
            for (_, row) in &source {
                let ctx = Ctx::maybe(schema.as_ref(), Some(row));
                let mut out_row = Vec::new();
                for item in &s.items {
                    match item {
                        SelectItem::Wildcard => out_row.extend(row.iter().cloned()),
                        SelectItem::Expr { expr, .. } => out_row.push(self.eval(expr, &ctx)?),
                    }
                }
                let order_keys: Vec<Value> = s
                    .order_by
                    .iter()
                    .map(|o| self.eval(&o.expr, &ctx))
                    .collect::<Result<_, _>>()?;
                keyed.push((order_keys, out_row));
            }
        }

        if !s.order_by.is_empty() {
            let descs: Vec<bool> = s.order_by.iter().map(|o| o.desc).collect();
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, (ka, kb)) in a.iter().zip(b).enumerate() {
                    let ord = ka.total_cmp(kb);
                    let ord = if descs[i] { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
        }
        let mut rows: Vec<Vec<Value>> = keyed.into_iter().map(|(_, r)| r).collect();
        if let Some(limit) = s.limit {
            rows.truncate(limit as usize);
        }
        Ok(Rows { columns, rows })
    }

    fn output_names(&self, s: &SelectStmt, schema: Option<&TableSchema>) -> Vec<String> {
        let mut out = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    if let Some(sch) = schema {
                        out.extend(sch.columns.iter().map(|c| c.name.clone()));
                    }
                }
                SelectItem::Expr { expr, alias } => out.push(match alias {
                    Some(a) => a.clone(),
                    None => expr_name(expr),
                }),
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Expression evaluation
    // ------------------------------------------------------------------

    fn eval(&mut self, expr: &Expr, ctx: &Ctx<'_>) -> Result<Value, SqlError> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(name) => ctx.column(name),
            Expr::Neg(e) => match self.eval(e, ctx)? {
                Value::Null => Ok(Value::Null),
                Value::Integer(i) => Ok(Value::Integer(-i)),
                Value::Real(r) => Ok(Value::Real(-r)),
                other => Err(SqlError::Runtime(format!(
                    "cannot negate {}",
                    other.type_name()
                ))),
            },
            Expr::Not(e) => match self.eval(e, ctx)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Integer(i64::from(!v.is_truthy()))),
            },
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, ctx)?;
                Ok(Value::Integer(i64::from(v.is_null() != *negated)))
            }
            Expr::Binary { op, left, right } => {
                // AND/OR need SQL three-valued short-circuit logic.
                if *op == BinOp::And || *op == BinOp::Or {
                    return self.eval_logic(*op, left, right, ctx);
                }
                let l = self.eval(left, ctx)?;
                let r = self.eval(right, ctx)?;
                eval_binary(*op, l, r)
            }
            Expr::Call { name, args } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval(a, ctx))
                    .collect::<Result<_, _>>()?;
                self.call_function(name, vals)
            }
            Expr::Aggregate { .. } => Err(SqlError::Runtime(
                "aggregate used outside an aggregate query".into(),
            )),
        }
    }

    fn eval_logic(
        &mut self,
        op: BinOp,
        left: &Expr,
        right: &Expr,
        ctx: &Ctx<'_>,
    ) -> Result<Value, SqlError> {
        let l = self.eval(left, ctx)?;
        match (op, l.is_null(), l.is_truthy()) {
            (BinOp::And, false, false) => return Ok(Value::Integer(0)),
            (BinOp::Or, false, true) => return Ok(Value::Integer(1)),
            _ => {}
        }
        let r = self.eval(right, ctx)?;
        let lv = if l.is_null() {
            None
        } else {
            Some(l.is_truthy())
        };
        let rv = if r.is_null() {
            None
        } else {
            Some(r.is_truthy())
        };
        let out = match (op, lv, rv) {
            (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Some(false),
            (BinOp::And, Some(true), Some(true)) => Some(true),
            (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Some(true),
            (BinOp::Or, Some(false), Some(false)) => Some(false),
            _ => None,
        };
        Ok(out
            .map(|b| Value::Integer(i64::from(b)))
            .unwrap_or(Value::Null))
    }

    /// Evaluate an expression in aggregate context: aggregates consume the
    /// group's rows; bare columns resolve to the group's first row.
    fn eval_agg(
        &mut self,
        expr: &Expr,
        schema: Option<&TableSchema>,
        rows: &[&[Value]],
    ) -> Result<Value, SqlError> {
        match expr {
            Expr::Aggregate { func, arg } => {
                let mut count = 0i64;
                let mut sum = 0f64;
                let mut sum_is_int = true;
                let mut isum = 0i64;
                let mut min: Option<Value> = None;
                let mut max: Option<Value> = None;
                for row in rows {
                    let v = match arg {
                        None => Value::Integer(1), // COUNT(*)
                        Some(a) => self.eval(a, &Ctx::maybe(schema, Some(row)))?,
                    };
                    if v.is_null() {
                        continue;
                    }
                    count += 1;
                    if let Some(f) = v.as_f64() {
                        sum += f;
                        if let Value::Integer(i) = v {
                            isum = isum.wrapping_add(i);
                        } else {
                            sum_is_int = false;
                        }
                    }
                    min = Some(match min {
                        None => v.clone(),
                        Some(m) => {
                            if v.total_cmp(&m) == Ordering::Less {
                                v.clone()
                            } else {
                                m
                            }
                        }
                    });
                    max = Some(match max {
                        None => v.clone(),
                        Some(m) => {
                            if v.total_cmp(&m) == Ordering::Greater {
                                v.clone()
                            } else {
                                m
                            }
                        }
                    });
                }
                Ok(match func {
                    AggFunc::Count => Value::Integer(count),
                    AggFunc::Sum if count == 0 => Value::Null,
                    AggFunc::Sum if sum_is_int => Value::Integer(isum),
                    AggFunc::Sum => Value::Real(sum),
                    AggFunc::Avg if count == 0 => Value::Null,
                    AggFunc::Avg => Value::Real(sum / count as f64),
                    AggFunc::Min => min.unwrap_or(Value::Null),
                    AggFunc::Max => max.unwrap_or(Value::Null),
                })
            }
            Expr::Binary { op, left, right } => {
                let l = self.eval_agg(left, schema, rows)?;
                let r = self.eval_agg(right, schema, rows)?;
                eval_binary(*op, l, r)
            }
            Expr::Neg(e) => {
                let v = self.eval_agg(e, schema, rows)?;
                self.eval(&Expr::Neg(Box::new(Expr::Literal(v))), &Ctx::none())
            }
            _ => {
                let first = rows.first().copied();
                self.eval(expr, &Ctx::maybe(schema, first))
            }
        }
    }

    fn call_function(&mut self, name: &str, args: Vec<Value>) -> Result<Value, SqlError> {
        let arity = |n: usize| -> Result<(), SqlError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(SqlError::Runtime(format!(
                    "{name}() takes {n} argument(s), got {}",
                    args.len()
                )))
            }
        };
        match name {
            "now" => {
                arity(0)?;
                Ok(Value::Integer(self.env.now_ns()))
            }
            "random" => {
                arity(0)?;
                Ok(Value::Integer(self.env.random()))
            }
            "length" => {
                arity(1)?;
                Ok(match &args[0] {
                    Value::Null => Value::Null,
                    Value::Text(t) => Value::Integer(t.chars().count() as i64),
                    Value::Blob(b) => Value::Integer(b.len() as i64),
                    v => Value::Integer(v.to_string().len() as i64),
                })
            }
            "abs" => {
                arity(1)?;
                Ok(match &args[0] {
                    Value::Null => Value::Null,
                    Value::Integer(i) => Value::Integer(i.wrapping_abs()),
                    Value::Real(r) => Value::Real(r.abs()),
                    other => {
                        return Err(SqlError::Runtime(format!("abs() of {}", other.type_name())))
                    }
                })
            }
            "upper" | "lower" => {
                arity(1)?;
                Ok(match &args[0] {
                    Value::Null => Value::Null,
                    Value::Text(t) => Value::Text(if name == "upper" {
                        t.to_uppercase()
                    } else {
                        t.to_lowercase()
                    }),
                    other => other.clone(),
                })
            }
            "hex" => {
                arity(1)?;
                let bytes = match &args[0] {
                    Value::Blob(b) => b.clone(),
                    Value::Text(t) => t.clone().into_bytes(),
                    Value::Null => return Ok(Value::Text(String::new())),
                    v => v.to_string().into_bytes(),
                };
                Ok(Value::Text(
                    bytes.iter().map(|b| format!("{b:02X}")).collect(),
                ))
            }
            "coalesce" => Ok(args
                .into_iter()
                .find(|v| !v.is_null())
                .unwrap_or(Value::Null)),
            "typeof" => {
                arity(1)?;
                Ok(Value::Text(args[0].type_name().into()))
            }
            other => Err(SqlError::Runtime(format!("no such function: {other}"))),
        }
    }
}

/// Evaluation context: the current row, if any.
struct Ctx<'a> {
    schema: Option<&'a TableSchema>,
    row: Option<&'a [Value]>,
}

impl<'a> Ctx<'a> {
    fn none() -> Ctx<'static> {
        Ctx {
            schema: None,
            row: None,
        }
    }

    fn row(schema: &'a TableSchema, row: &'a [Value]) -> Ctx<'a> {
        Ctx {
            schema: Some(schema),
            row: Some(row),
        }
    }

    fn maybe(schema: Option<&'a TableSchema>, row: Option<&'a [Value]>) -> Ctx<'a> {
        Ctx { schema, row }
    }

    fn column(&self, name: &str) -> Result<Value, SqlError> {
        let (Some(schema), Some(row)) = (self.schema, self.row) else {
            return Err(SqlError::Runtime(format!("no such column: {name}")));
        };
        match schema.column_index(name) {
            Some(i) => Ok(row.get(i).cloned().unwrap_or(Value::Null)),
            None => Err(SqlError::Runtime(format!("no such column: {name}"))),
        }
    }
}

/// Does the expression contain an aggregate call?
fn contains_aggregate(expr: &Expr) -> bool {
    match expr {
        Expr::Aggregate { .. } => true,
        Expr::Neg(e) | Expr::Not(e) => contains_aggregate(e),
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::Call { args, .. } => args.iter().any(contains_aggregate),
        Expr::Literal(_) | Expr::Column(_) => false,
    }
}

/// Detect `pk = <integer literal>` (either operand order).
fn pk_eq_literal(filter: &Expr, schema: &TableSchema) -> Option<i64> {
    let pk = schema.pk_index()?;
    let pk_name = &schema.columns[pk].name;
    let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = filter
    else {
        return None;
    };
    match (left.as_ref(), right.as_ref()) {
        (Expr::Column(c), Expr::Literal(Value::Integer(i)))
        | (Expr::Literal(Value::Integer(i)), Expr::Column(c))
            if c.eq_ignore_ascii_case(pk_name) =>
        {
            Some(*i)
        }
        _ => None,
    }
}

fn expr_name(expr: &Expr) -> String {
    match expr {
        Expr::Column(c) => c.clone(),
        Expr::Aggregate { func, arg } => {
            let f = match func {
                AggFunc::Count => "count",
                AggFunc::Sum => "sum",
                AggFunc::Avg => "avg",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
            };
            match arg {
                None => format!("{f}(*)"),
                Some(a) => format!("{f}({})", expr_name(a)),
            }
        }
        Expr::Call { name, .. } => format!("{name}(..)"),
        Expr::Literal(v) => v.to_string(),
        _ => "expr".into(),
    }
}

/// Coerce a value to a column's declared type (affinity-lite).
fn coerce(v: Value, ctype: ColType) -> Result<Value, SqlError> {
    Ok(match (ctype, v) {
        (ColType::Integer, Value::Real(r)) if r.fract() == 0.0 => Value::Integer(r as i64),
        (ColType::Real, Value::Integer(i)) => Value::Real(i as f64),
        (_, v) => v,
    })
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value, SqlError> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Rem => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let both_int = matches!((&l, &r), (Value::Integer(_), Value::Integer(_)));
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Err(SqlError::Runtime(format!(
                    "arithmetic on {} and {}",
                    l.type_name(),
                    r.type_name()
                )));
            };
            if both_int {
                let (ia, ib) = (l.as_i64().expect("int"), r.as_i64().expect("int"));
                return Ok(match op {
                    Add => Value::Integer(ia.wrapping_add(ib)),
                    Sub => Value::Integer(ia.wrapping_sub(ib)),
                    Mul => Value::Integer(ia.wrapping_mul(ib)),
                    Div if ib == 0 => Value::Null, // SQLite semantics
                    Div => Value::Integer(ia.wrapping_div(ib)),
                    Rem if ib == 0 => Value::Null,
                    Rem => Value::Integer(ia.wrapping_rem(ib)),
                    _ => unreachable!(),
                });
            }
            Ok(match op {
                Add => Value::Real(a + b),
                Sub => Value::Real(a - b),
                Mul => Value::Real(a * b),
                Div if b == 0.0 => Value::Null,
                Div => Value::Real(a / b),
                Rem if b == 0.0 => Value::Null,
                Rem => Value::Real(a % b),
                _ => unreachable!(),
            })
        }
        Concat => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Text(format!("{l}{r}")))
        }
        Eq | Ne | Lt | Le | Gt | Ge => match l.compare(&r) {
            None => Ok(Value::Null),
            Some(ord) => {
                let b = match op {
                    Eq => ord == Ordering::Equal,
                    Ne => ord != Ordering::Equal,
                    Lt => ord == Ordering::Less,
                    Le => ord != Ordering::Greater,
                    Gt => ord == Ordering::Greater,
                    Ge => ord != Ordering::Less,
                    _ => unreachable!(),
                };
                Ok(Value::Integer(i64::from(b)))
            }
        },
        Like => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let text = l.to_string();
            let pattern = r.to_string();
            Ok(Value::Integer(i64::from(like_match(
                &pattern.to_lowercase(),
                &text.to_lowercase(),
            ))))
        }
        And | Or => unreachable!("handled by eval_logic"),
    }
}

/// SQL LIKE: `%` matches any run, `_` matches one character.
fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    fn rec(p: &[char], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => (0..=t.len()).any(|i| rec(&p[1..], &t[i..])),
            Some('_') => !t.is_empty() && rec(&p[1..], &t[1..]),
            Some(c) => t.first() == Some(c) && rec(&p[1..], &t[1..]),
        }
    }
    rec(&p, &t)
}

impl Database {
    #[cfg(test)]
    fn pager_db(&self) -> &dyn Vfs {
        self.pager.db_vfs()
    }

    #[cfg(test)]
    fn pager_journal(&self) -> &dyn Vfs {
        self.pager.journal_vfs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::FixedEnv;
    use crate::vfs::MemVfs;

    fn db() -> Database {
        Database::open(
            Box::new(MemVfs::new()),
            Box::new(MemVfs::new()),
            DbOptions {
                journal_mode: JournalMode::Rollback,
                wal_autocheckpoint: crate::pager::DEFAULT_WAL_AUTOCHECKPOINT,
                env: Box::new(FixedEnv {
                    now_ns: 1_000,
                    random_state: 1,
                }),
            },
        )
        .expect("open")
    }

    fn ints(rows: &Rows, col: usize) -> Vec<i64> {
        rows.rows
            .iter()
            .map(|r| match &r[col] {
                Value::Integer(i) => *i,
                other => panic!("not an int: {other:?}"),
            })
            .collect()
    }

    #[test]
    fn create_insert_select() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, age INTEGER)")
            .expect("create");
        let out = db
            .execute("INSERT INTO t (name, age) VALUES ('alice', 30), ('bob', 25)")
            .expect("insert");
        assert_eq!(out, ExecOutcome::Affected(2));
        let rows = db.query("SELECT * FROM t ORDER BY id").expect("select");
        assert_eq!(rows.columns, vec!["id", "name", "age"]);
        assert_eq!(rows.rows.len(), 2);
        assert_eq!(rows.rows[0][1], Value::Text("alice".into()));
        assert_eq!(rows.rows[0][0], Value::Integer(1), "rowid auto-assigned");
    }

    #[test]
    fn where_and_point_lookup() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            .expect("create");
        for i in 1..=10 {
            db.execute(&format!("INSERT INTO t (id, v) VALUES ({i}, {})", i * 10))
                .expect("insert");
        }
        let rows = db.query("SELECT v FROM t WHERE id = 7").expect("select");
        assert_eq!(ints(&rows, 0), vec![70]);
        let rows = db.query("SELECT v FROM t WHERE 7 = id").expect("select");
        assert_eq!(ints(&rows, 0), vec![70]);
        let rows = db
            .query("SELECT id FROM t WHERE v > 70 ORDER BY id")
            .expect("select");
        assert_eq!(ints(&rows, 0), vec![8, 9, 10]);
    }

    #[test]
    fn update_and_delete() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            .expect("create");
        db.execute("INSERT INTO t (v) VALUES (1), (2), (3)")
            .expect("insert");
        assert_eq!(
            db.execute("UPDATE t SET v = v * 100 WHERE v >= 2")
                .expect("update"),
            ExecOutcome::Affected(2)
        );
        let rows = db.query("SELECT v FROM t ORDER BY v").expect("select");
        assert_eq!(ints(&rows, 0), vec![1, 200, 300]);
        assert_eq!(
            db.execute("DELETE FROM t WHERE v = 200").expect("delete"),
            ExecOutcome::Affected(1)
        );
        assert_eq!(
            db.execute("DELETE FROM t").expect("delete all"),
            ExecOutcome::Affected(2)
        );
        assert!(db.query("SELECT * FROM t").expect("select").rows.is_empty());
    }

    #[test]
    fn aggregates_and_group_by() {
        let mut db = db();
        db.execute("CREATE TABLE votes (id INTEGER PRIMARY KEY, choice TEXT, weight REAL)")
            .expect("create");
        db.execute(
            "INSERT INTO votes (choice, weight) VALUES ('a', 1.0), ('b', 2.0), ('a', 3.0), ('a', 2.0)",
        )
        .expect("insert");
        let rows = db
            .query("SELECT choice, COUNT(*), SUM(weight), AVG(weight) FROM votes GROUP BY choice ORDER BY choice")
            .expect("select");
        assert_eq!(rows.rows.len(), 2);
        assert_eq!(rows.rows[0][0], Value::Text("a".into()));
        assert_eq!(rows.rows[0][1], Value::Integer(3));
        assert_eq!(rows.rows[0][2], Value::Real(6.0));
        assert_eq!(rows.rows[0][3], Value::Real(2.0));
        // Global aggregate without GROUP BY.
        let rows = db
            .query("SELECT COUNT(*), MIN(weight), MAX(weight) FROM votes")
            .expect("agg");
        assert_eq!(
            rows.rows[0],
            vec![Value::Integer(4), Value::Real(1.0), Value::Real(3.0)]
        );
        // Aggregate over empty table yields one row.
        db.execute("DELETE FROM votes").expect("clear");
        let rows = db
            .query("SELECT COUNT(*), SUM(weight) FROM votes")
            .expect("agg");
        assert_eq!(rows.rows[0], vec![Value::Integer(0), Value::Null]);
    }

    #[test]
    fn order_by_desc_and_limit() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            .expect("create");
        db.execute("INSERT INTO t (v) VALUES (5), (3), (9), (1)")
            .expect("insert");
        let rows = db
            .query("SELECT v FROM t ORDER BY v DESC LIMIT 2")
            .expect("select");
        assert_eq!(ints(&rows, 0), vec![9, 5]);
        let rows = db
            .query("SELECT v FROM t ORDER BY v LIMIT 0")
            .expect("select");
        assert!(rows.rows.is_empty());
    }

    #[test]
    fn expressions_and_functions() {
        let mut db = db();
        let rows = db
            .query("SELECT 1 + 2 * 3, 'a' || 'b', length('héllo'), abs(-4), upper('x'), coalesce(NULL, 7)")
            .expect("select");
        assert_eq!(
            rows.rows[0],
            vec![
                Value::Integer(7),
                Value::Text("ab".into()),
                Value::Integer(5),
                Value::Integer(4),
                Value::Text("X".into()),
                Value::Integer(7),
            ]
        );
        // Deterministic env functions.
        let rows = db.query("SELECT now(), typeof(random())").expect("select");
        assert_eq!(rows.rows[0][0], Value::Integer(1_000));
        assert_eq!(rows.rows[0][1], Value::Text("integer".into()));
    }

    #[test]
    fn null_semantics() {
        let mut db = db();
        let rows = db
            .query("SELECT 1 = NULL, NULL IS NULL, 5 IS NOT NULL, 1 + NULL, 1 / 0, NULL OR 1, NULL AND 0")
            .expect("select");
        assert_eq!(
            rows.rows[0],
            vec![
                Value::Null,
                Value::Integer(1),
                Value::Integer(1),
                Value::Null,
                Value::Null,
                Value::Integer(1),
                Value::Integer(0),
            ]
        );
    }

    #[test]
    fn like_patterns() {
        let mut db = db();
        let rows = db
            .query(
                "SELECT 'hello' LIKE 'h%', 'hello' LIKE 'H_LLO', 'hello' LIKE 'x%', 'a' LIKE '%'",
            )
            .expect("select");
        assert_eq!(
            rows.rows[0],
            vec![
                Value::Integer(1),
                Value::Integer(1),
                Value::Integer(0),
                Value::Integer(1)
            ]
        );
    }

    #[test]
    fn constraints_enforced() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL)")
            .expect("create");
        assert!(matches!(
            db.execute("INSERT INTO t (id, name) VALUES (1, NULL)"),
            Err(SqlError::Constraint(_))
        ));
        db.execute("INSERT INTO t (id, name) VALUES (1, 'x')")
            .expect("insert");
        assert!(matches!(
            db.execute("INSERT INTO t (id, name) VALUES (1, 'dup')"),
            Err(SqlError::Constraint(_))
        ));
    }

    #[test]
    fn schema_errors() {
        let mut db = db();
        assert!(matches!(
            db.execute("SELECT * FROM missing"),
            Err(SqlError::Schema(_))
        ));
        db.execute("CREATE TABLE t (a INTEGER)").expect("create");
        assert!(matches!(
            db.execute("CREATE TABLE t (a INTEGER)"),
            Err(SqlError::Schema(_))
        ));
        db.execute("CREATE TABLE IF NOT EXISTS t (a INTEGER)")
            .expect("idempotent");
        assert!(matches!(
            db.execute("INSERT INTO t (nope) VALUES (1)"),
            Err(SqlError::Schema(_))
        ));
        assert!(matches!(
            db.execute("CREATE TABLE bad (a TEXT PRIMARY KEY)"),
            Err(SqlError::Schema(_))
        ));
        db.execute("DROP TABLE t").expect("drop");
        assert!(db.execute("DROP TABLE t").is_err());
        db.execute("DROP TABLE IF EXISTS t")
            .expect("idempotent drop");
    }

    #[test]
    fn explicit_transactions() {
        let mut db = db();
        db.execute("CREATE TABLE t (v INTEGER)").expect("create");
        db.execute("BEGIN").expect("begin");
        db.execute("INSERT INTO t (v) VALUES (1)").expect("insert");
        db.execute("ROLLBACK").expect("rollback");
        assert!(db.query("SELECT * FROM t").expect("select").rows.is_empty());

        db.execute("BEGIN").expect("begin");
        db.execute("INSERT INTO t (v) VALUES (2)").expect("insert");
        db.execute("COMMIT").expect("commit");
        assert_eq!(db.query("SELECT * FROM t").expect("select").rows.len(), 1);

        assert!(matches!(db.execute("COMMIT"), Err(SqlError::Txn(_))));
        assert!(matches!(db.execute("ROLLBACK"), Err(SqlError::Txn(_))));
        db.execute("BEGIN").expect("begin");
        assert!(matches!(db.execute("BEGIN"), Err(SqlError::Txn(_))));
    }

    #[test]
    fn failed_statement_rolls_back() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT NOT NULL)")
            .expect("create");
        db.execute("INSERT INTO t (id, v) VALUES (1, 'keep')")
            .expect("insert");
        // Multi-row insert where the second row violates NOT NULL: the whole
        // statement must be rolled back.
        let err = db.execute("INSERT INTO t (id, v) VALUES (2, 'x'), (3, NULL)");
        assert!(matches!(err, Err(SqlError::Constraint(_))));
        let rows = db.query("SELECT id FROM t").expect("select");
        assert_eq!(ints(&rows, 0), vec![1]);
    }

    #[test]
    fn durability_across_reopen() {
        let mut dbf = MemVfs::new();
        let mut jf = MemVfs::new();
        {
            let mut d = Database::open(
                Box::new(dbf.clone()),
                Box::new(jf.clone()),
                DbOptions::default(),
            )
            .expect("open");
            d.execute("CREATE TABLE t (v INTEGER)").expect("create");
            d.execute("INSERT INTO t (v) VALUES (42)").expect("insert");
            // Pull out the backing bytes (committed + synced).
            dbf = extract(&mut d, true);
            jf = extract(&mut d, false);
        }
        let mut d2 =
            Database::open(Box::new(dbf), Box::new(jf), DbOptions::default()).expect("reopen");
        let rows = d2.query("SELECT v FROM t").expect("select");
        assert_eq!(ints(&rows, 0), vec![42]);
    }

    /// Test helper: copy a database's backing store out through the Vfs API.
    fn extract(d: &mut Database, db_file: bool) -> MemVfs {
        let src: &dyn Vfs = if db_file {
            d.pager_db()
        } else {
            d.pager_journal()
        };
        let mut out = MemVfs::new();
        let mut buf = vec![0u8; src.len() as usize];
        src.read_at(0, &mut buf).expect("read");
        out.write_at(0, &buf).expect("write");
        out.sync().expect("sync");
        out
    }

    #[test]
    fn select_without_from() {
        let mut db = db();
        let rows = db.query("SELECT 2 + 2 AS four WHERE 1").expect("select");
        assert_eq!(rows.columns, vec!["four"]);
        assert_eq!(rows.rows[0][0], Value::Integer(4));
        let rows = db.query("SELECT 1 WHERE 0").expect("select");
        assert!(rows.rows.is_empty());
    }

    #[test]
    fn script_execution() {
        let mut db = db();
        let out = db
            .execute_script(
                "CREATE TABLE t (v INTEGER); INSERT INTO t (v) VALUES (1); SELECT COUNT(*) FROM t",
            )
            .expect("script");
        match out {
            ExecOutcome::Rows(r) => assert_eq!(r.rows[0][0], Value::Integer(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn changed_primary_key_moves_row() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
            .expect("create");
        db.execute("INSERT INTO t (id, v) VALUES (1, 'a')")
            .expect("insert");
        db.execute("UPDATE t SET id = 100 WHERE id = 1")
            .expect("update");
        let rows = db.query("SELECT id FROM t WHERE id = 100").expect("select");
        assert_eq!(ints(&rows, 0), vec![100]);
        assert!(db
            .query("SELECT id FROM t WHERE id = 1")
            .expect("select")
            .rows
            .is_empty());
    }

    #[test]
    fn many_rows_survive_splits_end_to_end() {
        let mut db = db();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, blob TEXT)")
            .expect("create");
        db.execute("BEGIN").expect("begin");
        for i in 0..500 {
            db.execute(&format!(
                "INSERT INTO t (blob) VALUES ('row number {i} padding padding')"
            ))
            .expect("insert");
        }
        db.execute("COMMIT").expect("commit");
        let rows = db.query("SELECT COUNT(*) FROM t").expect("count");
        assert_eq!(rows.rows[0][0], Value::Integer(500));
        let rows = db
            .query("SELECT id FROM t ORDER BY id DESC LIMIT 1")
            .expect("max");
        assert_eq!(rows.rows[0][0], Value::Integer(500));
    }

    // ------------------------------------------------------------------
    // WAL mode end-to-end
    // ------------------------------------------------------------------

    fn wal_db() -> Database {
        Database::open(
            Box::new(MemVfs::new()),
            Box::new(MemVfs::new()),
            DbOptions {
                journal_mode: JournalMode::Wal,
                wal_autocheckpoint: 1_000,
                env: Box::new(FixedEnv {
                    now_ns: 1_000,
                    random_state: 1,
                }),
            },
        )
        .expect("open")
    }

    fn snapshot_vfs(v: &dyn Vfs) -> MemVfs {
        let mut out = MemVfs::new();
        let mut buf = vec![0u8; v.len() as usize];
        v.read_at(0, &mut buf).expect("read");
        out.write_at(0, &buf).expect("write");
        out.sync().expect("sync");
        out
    }

    #[test]
    fn wal_mode_crud_roundtrip() {
        let mut db = wal_db();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
            .expect("create");
        db.execute("INSERT INTO t (v) VALUES ('a'), ('b'), ('c')")
            .expect("insert");
        db.execute("UPDATE t SET v = 'B' WHERE id = 2")
            .expect("update");
        db.execute("DELETE FROM t WHERE id = 3").expect("delete");
        let rows = db.query("SELECT v FROM t ORDER BY id").expect("select");
        assert_eq!(
            rows.rows,
            vec![vec![Value::Text("a".into())], vec![Value::Text("B".into())]]
        );
        assert!(db.wal_frames() > 0, "commits accumulated in the log");
    }

    #[test]
    fn wal_mode_reopen_sees_committed_data() {
        let mut db = wal_db();
        db.execute("CREATE TABLE t (v INTEGER)").expect("create");
        db.execute("INSERT INTO t (v) VALUES (42)").expect("insert");
        let files = (
            snapshot_vfs(db.pager_db()),
            snapshot_vfs(db.pager_journal()),
        );
        let mut db2 = Database::open(
            Box::new(files.0),
            Box::new(files.1),
            DbOptions {
                journal_mode: JournalMode::Wal,
                wal_autocheckpoint: 1_000,
                env: Box::new(FixedEnv {
                    now_ns: 1,
                    random_state: 1,
                }),
            },
        )
        .expect("reopen");
        let rows = db2.query("SELECT v FROM t").expect("select");
        assert_eq!(rows.rows[0][0], Value::Integer(42));
    }

    #[test]
    fn wal_checkpoint_then_reopen_without_log() {
        let mut db = wal_db();
        db.execute("CREATE TABLE t (v INTEGER)").expect("create");
        db.execute("INSERT INTO t (v) VALUES (7)").expect("insert");
        db.wal_checkpoint().expect("checkpoint");
        assert_eq!(db.wal_frames(), 0);
        // Drop the WAL entirely: the db file alone must suffice.
        let dbfile = snapshot_vfs(db.pager_db());
        let mut db2 = Database::open(
            Box::new(dbfile),
            Box::new(MemVfs::new()),
            DbOptions {
                journal_mode: JournalMode::Wal,
                wal_autocheckpoint: 1_000,
                env: Box::new(FixedEnv {
                    now_ns: 1,
                    random_state: 1,
                }),
            },
        )
        .expect("reopen");
        let rows = db2.query("SELECT v FROM t").expect("select");
        assert_eq!(rows.rows[0][0], Value::Integer(7));
    }

    #[test]
    fn wal_mode_explicit_transaction_atomicity() {
        let mut db = wal_db();
        db.execute("CREATE TABLE t (v INTEGER)").expect("create");
        db.execute("BEGIN").expect("begin");
        db.execute("INSERT INTO t (v) VALUES (1)").expect("insert");
        db.execute("INSERT INTO t (v) VALUES (2)").expect("insert");
        db.execute("ROLLBACK").expect("rollback");
        let rows = db.query("SELECT COUNT(*) FROM t").expect("count");
        assert_eq!(
            rows.rows[0][0],
            Value::Integer(0),
            "rolled-back txn invisible"
        );
        db.execute("BEGIN").expect("begin");
        db.execute("INSERT INTO t (v) VALUES (3)").expect("insert");
        db.execute("COMMIT").expect("commit");
        let rows = db.query("SELECT v FROM t").expect("select");
        assert_eq!(rows.rows[0][0], Value::Integer(3));
    }

    #[test]
    fn wal_mode_identical_scripts_identical_files() {
        // Determinism: the property the PBFT embedding relies on. Two
        // databases running the same script produce bit-identical database
        // *and* WAL files.
        let script = "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT);\n\
                      INSERT INTO t (v) VALUES ('x');\n\
                      INSERT INTO t (v) VALUES ('y');\n\
                      UPDATE t SET v = 'z' WHERE id = 1;";
        let run = || {
            let mut db = wal_db();
            db.execute_script(script).expect("script");
            (
                snapshot_vfs(db.pager_db()),
                snapshot_vfs(db.pager_journal()),
            )
        };
        let (db_a, wal_a) = run();
        let (db_b, wal_b) = run();
        assert_eq!(db_a.bytes(), db_b.bytes());
        assert_eq!(wal_a.bytes(), wal_b.bytes());
    }
}
