//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::error::SqlError;
use crate::token::{tokenize, Token};
use crate::value::Value;

/// Parse one SQL statement (a trailing semicolon is allowed).
///
/// # Errors
/// [`SqlError::Lex`] / [`SqlError::Parse`] on malformed input.
pub fn parse(sql: &str) -> Result<Stmt, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_punct(";");
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse(format!(
            "unexpected trailing input at token {}",
            p.pos
        )));
    }
    Ok(stmt)
}

/// Split a script on top-level semicolons and parse each statement.
///
/// # Errors
/// Propagates the first statement error.
pub fn parse_script(sql: &str) -> Result<Vec<Stmt>, SqlError> {
    let mut out = Vec::new();
    for piece in split_statements(sql) {
        let trimmed = piece.trim();
        if !trimmed.is_empty() {
            out.push(parse(trimmed)?);
        }
    }
    Ok(out)
}

/// Split on semicolons that are not inside string literals.
fn split_statements(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in sql.chars() {
        match c {
            '\'' => {
                in_str = !in_str;
                cur.push(c);
            }
            ';' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

/// Keywords that cannot appear as bare column references.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "by", "limit", "insert", "into", "update",
    "delete", "create", "drop", "table", "values", "set", "begin", "commit", "rollback", "as",
];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, SqlError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| SqlError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Token::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), SqlError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {p:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Stmt, SqlError> {
        let head = self
            .peek()
            .ok_or_else(|| SqlError::Parse("empty statement".into()))?
            .clone();
        let Token::Ident(kw) = &head else {
            return Err(SqlError::Parse(format!(
                "statement cannot start with {head:?}"
            )));
        };
        match kw.to_ascii_lowercase().as_str() {
            "create" => self.create_table(),
            "drop" => self.drop_table(),
            "insert" => self.insert(),
            "select" => Ok(Stmt::Select(Box::new(self.select()?))),
            "update" => self.update(),
            "delete" => self.delete(),
            "begin" => {
                self.pos += 1;
                self.eat_kw("transaction");
                Ok(Stmt::Begin)
            }
            "commit" => {
                self.pos += 1;
                Ok(Stmt::Commit)
            }
            "rollback" => {
                self.pos += 1;
                Ok(Stmt::Rollback)
            }
            other => Err(SqlError::Parse(format!("unknown statement {other}"))),
        }
    }

    fn create_table(&mut self) -> Result<Stmt, SqlError> {
        self.expect_kw("create")?;
        self.expect_kw("table")?;
        let if_not_exists = if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let ctype = match self.next()? {
                Token::Ident(t) => match t.to_ascii_lowercase().as_str() {
                    "integer" | "int" => ColType::Integer,
                    "real" | "float" | "double" => ColType::Real,
                    "text" | "varchar" | "char" | "string" => ColType::Text,
                    "blob" => ColType::Blob,
                    other => return Err(SqlError::Parse(format!("unknown column type {other}"))),
                },
                other => return Err(SqlError::Parse(format!("expected type, found {other:?}"))),
            };
            let mut primary_key = false;
            let mut not_null = false;
            loop {
                if self.eat_kw("primary") {
                    self.expect_kw("key")?;
                    primary_key = true;
                } else if self.eat_kw("not") {
                    self.expect_kw("null")?;
                    not_null = true;
                } else {
                    break;
                }
            }
            columns.push(ColumnDef {
                name: col_name,
                ctype,
                primary_key,
                not_null,
            });
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(Stmt::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn drop_table(&mut self) -> Result<Stmt, SqlError> {
        self.expect_kw("drop")?;
        self.expect_kw("table")?;
        let if_exists = if self.eat_kw("if") {
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        Ok(Stmt::DropTable {
            name: self.ident()?,
            if_exists,
        })
    }

    fn insert(&mut self) -> Result<Stmt, SqlError> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_punct("(") {
            loop {
                columns.push(self.ident()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_punct("(")?;
            let mut vals = Vec::new();
            loop {
                vals.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            rows.push(vals);
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(Stmt::Insert {
            table,
            columns,
            rows,
        })
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw("select")?;
        let mut items = Vec::new();
        loop {
            if self.eat_punct("*") {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        let from = if self.eat_kw("from") {
            Some(self.ident()?)
        } else {
            None
        };
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderBy { expr, desc });
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(SqlError::Parse(format!("bad LIMIT {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            filter,
            group_by,
            order_by,
            limit,
        })
    }

    fn update(&mut self) -> Result<Stmt, SqlError> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_punct("=")?;
            sets.push((col, self.expr()?));
            if !self.eat_punct(",") {
                break;
            }
        }
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            filter,
        })
    }

    fn delete(&mut self) -> Result<Stmt, SqlError> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete { table, filter })
    }

    // Expression precedence (loosest to tightest):
    // OR < AND < NOT < comparison/LIKE/IS < add < mul < unary < primary
    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, SqlError> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Punct("=")) => Some(BinOp::Eq),
            Some(Token::Punct("!=")) => Some(BinOp::Ne),
            Some(Token::Punct("<")) => Some(BinOp::Lt),
            Some(Token::Punct("<=")) => Some(BinOp::Le),
            Some(Token::Punct(">")) => Some(BinOp::Gt),
            Some(Token::Punct(">=")) => Some(BinOp::Ge),
            Some(t) if t.is_kw("like") => Some(BinOp::Like),
            Some(t) if t.is_kw("is") => {
                self.pos += 1;
                let negated = self.eat_kw("not");
                self.expect_kw("null")?;
                return Ok(Expr::IsNull {
                    expr: Box::new(left),
                    negated,
                });
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let right = self.add_expr()?;
                Ok(Expr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            None => Ok(left),
        }
    }

    fn add_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Punct("+")) => BinOp::Add,
                Some(Token::Punct("-")) => BinOp::Sub,
                Some(Token::Punct("||")) => BinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Punct("*")) => BinOp::Mul,
                Some(Token::Punct("/")) => BinOp::Div,
                Some(Token::Punct("%")) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_punct("-") {
            Ok(Expr::Neg(Box::new(self.unary_expr()?)))
        } else if self.eat_punct("+") {
            self.unary_expr()
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.next()? {
            Token::Int(v) => Ok(Expr::Literal(Value::Integer(v))),
            Token::Float(v) => Ok(Expr::Literal(Value::Real(v))),
            Token::Str(s) => Ok(Expr::Literal(Value::Text(s))),
            Token::Hex(b) => Ok(Expr::Literal(Value::Blob(b))),
            Token::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Token::Ident(name) => {
                let lower = name.to_ascii_lowercase();
                if lower == "null" {
                    return Ok(Expr::Literal(Value::Null));
                }
                if lower == "true" {
                    return Ok(Expr::Literal(Value::Integer(1)));
                }
                if lower == "false" {
                    return Ok(Expr::Literal(Value::Integer(0)));
                }
                if self.eat_punct("(") {
                    return self.call(lower);
                }
                if RESERVED.contains(&lower.as_str()) {
                    return Err(SqlError::Parse(format!(
                        "keyword {name} cannot be used as a column reference"
                    )));
                }
                Ok(Expr::Column(name))
            }
            other => Err(SqlError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    fn call(&mut self, name: String) -> Result<Expr, SqlError> {
        let agg = match name.as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        };
        if let Some(func) = agg {
            if self.eat_punct("*") {
                self.expect_punct(")")?;
                if func != AggFunc::Count {
                    return Err(SqlError::Parse(format!("{name}(*) is not valid")));
                }
                return Ok(Expr::Aggregate { func, arg: None });
            }
            let arg = self.expr()?;
            self.expect_punct(")")?;
            return Ok(Expr::Aggregate {
                func,
                arg: Some(Box::new(arg)),
            });
        }
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            loop {
                args.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        Ok(Expr::Call { name, args })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_full() {
        let stmt = parse(
            "CREATE TABLE IF NOT EXISTS votes (id INTEGER PRIMARY KEY, voter TEXT NOT NULL, w REAL, raw BLOB);",
        )
        .expect("parse");
        match stmt {
            Stmt::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                assert_eq!(name, "votes");
                assert!(if_not_exists);
                assert_eq!(columns.len(), 4);
                assert!(columns[0].primary_key);
                assert!(columns[1].not_null);
                assert_eq!(columns[2].ctype, ColType::Real);
                assert_eq!(columns[3].ctype, ColType::Blob);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").expect("parse");
        match stmt {
            Stmt::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_everything() {
        let stmt = parse(
            "SELECT a, COUNT(*) AS n FROM t WHERE a > 3 AND b IS NOT NULL GROUP BY a ORDER BY n DESC, a LIMIT 10",
        )
        .expect("parse");
        match stmt {
            Stmt::Select(s) => {
                assert_eq!(s.items.len(), 2);
                assert_eq!(s.from.as_deref(), Some("t"));
                assert!(s.filter.is_some());
                assert_eq!(s.group_by.len(), 1);
                assert_eq!(s.order_by.len(), 2);
                assert!(s.order_by[0].desc);
                assert_eq!(s.limit, Some(10));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let stmt = parse("SELECT 1 + 2 * 3").expect("parse");
        match stmt {
            Stmt::Select(s) => match &s.items[0] {
                SelectItem::Expr {
                    expr:
                        Expr::Binary {
                            op: BinOp::Add,
                            right,
                            ..
                        },
                    ..
                } => {
                    assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        assert!(matches!(
            parse("UPDATE t SET a = a + 1 WHERE id = 5").expect("parse"),
            Stmt::Update { .. }
        ));
        assert!(matches!(
            parse("DELETE FROM t WHERE a LIKE 'x%'").expect("parse"),
            Stmt::Delete { .. }
        ));
    }

    #[test]
    fn transactions() {
        assert_eq!(parse("BEGIN").expect("parse"), Stmt::Begin);
        assert_eq!(parse("BEGIN TRANSACTION").expect("parse"), Stmt::Begin);
        assert_eq!(parse("COMMIT;").expect("parse"), Stmt::Commit);
        assert_eq!(parse("ROLLBACK").expect("parse"), Stmt::Rollback);
    }

    #[test]
    fn script_splitting() {
        let stmts =
            parse_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); SELECT ';' ")
                .expect("parse");
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("SELEKT 1").is_err());
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("INSERT INTO t").is_err());
        assert!(parse("CREATE TABLE t (a FANCYTYPE)").is_err());
        assert!(parse("SELECT 1 2").is_err());
        assert!(parse("SELECT SUM(*)").is_err());
    }

    #[test]
    fn functions_and_aggregates() {
        let stmt = parse("SELECT length(name), now(), random(), MAX(age) FROM t").expect("parse");
        match stmt {
            Stmt::Select(s) => {
                assert_eq!(s.items.len(), 4);
                assert!(matches!(
                    &s.items[3],
                    SelectItem::Expr {
                        expr: Expr::Aggregate {
                            func: AggFunc::Max,
                            ..
                        },
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }
}
