//! The rollback journal: pre-images of pages about to be overwritten.
//!
//! minisql journals at commit time: before the pager writes dirty pages back
//! to the database file, it saves the *on-disk* versions to the journal and
//! syncs it. A crash between journal sync and database sync is recovered on
//! the next open by copying the pre-images back (then truncating the
//! journal). This is the mechanism behind the paper's observation that "an
//! uncommitted transaction will be rolled back on the next attempt to access
//! the database file".

use crate::error::SqlError;
use crate::vfs::Vfs;

const MAGIC: u64 = 0x4d49_4e49_4a52_4e4c; // "MINIJRNL"

/// Journal header + entry layout constants.
const HEADER: usize = 8 + 4 + 4; // magic, old_page_count, entry count

/// Write a journal with the given pre-images and sync it.
///
/// # Errors
/// Storage failures.
pub fn write_journal(
    vfs: &mut dyn Vfs,
    page_size: usize,
    old_page_count: u32,
    entries: &[(u32, Vec<u8>)],
    sync: bool,
) -> Result<(), SqlError> {
    let mut buf = Vec::with_capacity(HEADER + entries.len() * (4 + page_size));
    buf.extend_from_slice(&MAGIC.to_be_bytes());
    buf.extend_from_slice(&old_page_count.to_be_bytes());
    buf.extend_from_slice(&(entries.len() as u32).to_be_bytes());
    for (page_id, data) in entries {
        debug_assert_eq!(data.len(), page_size);
        buf.extend_from_slice(&page_id.to_be_bytes());
        buf.extend_from_slice(data);
    }
    vfs.set_len(0)?;
    vfs.write_at(0, &buf)?;
    if sync {
        vfs.sync()?;
    }
    Ok(())
}

/// Clear the journal (after a successful commit) and sync the truncation.
///
/// # Errors
/// Storage failures.
pub fn clear_journal(vfs: &mut dyn Vfs, sync: bool) -> Result<(), SqlError> {
    vfs.set_len(0)?;
    if sync {
        vfs.sync()?;
    }
    Ok(())
}

/// A parsed journal: the pre-images to restore.
#[derive(Debug, PartialEq, Eq)]
pub struct JournalContents {
    /// Page count the database had before the interrupted commit.
    pub old_page_count: u32,
    /// `(page id, pre-image)` pairs.
    pub entries: Vec<(u32, Vec<u8>)>,
}

/// Read the journal. Returns `None` when it is empty or clearly not a
/// journal (nothing to recover).
///
/// # Errors
/// [`SqlError::Corrupt`] when a journal with a valid magic is truncated —
/// the safe response is to treat the *whole* journal as garbage, which
/// callers do by ignoring the error only if no entry was applied yet.
pub fn read_journal(vfs: &dyn Vfs, page_size: usize) -> Result<Option<JournalContents>, SqlError> {
    if vfs.len() < HEADER as u64 {
        return Ok(None);
    }
    let mut header = [0u8; HEADER];
    vfs.read_at(0, &mut header)?;
    let magic = u64::from_be_bytes(header[..8].try_into().expect("8 bytes"));
    if magic != MAGIC {
        return Ok(None);
    }
    let old_page_count = u32::from_be_bytes(header[8..12].try_into().expect("4 bytes"));
    let n = u32::from_be_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
    let entry_size = 4 + page_size;
    if vfs.len() < (HEADER + n * entry_size) as u64 {
        return Err(SqlError::Corrupt("truncated journal".into()));
    }
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let off = (HEADER + i * entry_size) as u64;
        let mut id_buf = [0u8; 4];
        vfs.read_at(off, &mut id_buf)?;
        let mut data = vec![0u8; page_size];
        vfs.read_at(off + 4, &mut data)?;
        entries.push((u32::from_be_bytes(id_buf), data));
    }
    Ok(Some(JournalContents {
        old_page_count,
        entries,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn roundtrip() {
        let mut v = MemVfs::new();
        let entries = vec![(3u32, vec![7u8; 64]), (9u32, vec![1u8; 64])];
        write_journal(&mut v, 64, 12, &entries, true).expect("write");
        let back = read_journal(&v, 64).expect("read").expect("present");
        assert_eq!(back.old_page_count, 12);
        assert_eq!(back.entries, entries);
    }

    #[test]
    fn empty_journal_is_none() {
        let v = MemVfs::new();
        assert_eq!(read_journal(&v, 64).expect("read"), None);
    }

    #[test]
    fn cleared_journal_is_none() {
        let mut v = MemVfs::new();
        write_journal(&mut v, 64, 1, &[(0, vec![0u8; 64])], true).expect("write");
        clear_journal(&mut v, true).expect("clear");
        assert_eq!(read_journal(&v, 64).expect("read"), None);
    }

    #[test]
    fn garbage_is_none_but_truncated_is_error() {
        let mut v = MemVfs::new();
        v.write_at(0, &[0u8; 32]).expect("write");
        assert_eq!(read_journal(&v, 64).expect("read"), None);

        let mut v2 = MemVfs::new();
        write_journal(
            &mut v2,
            64,
            1,
            &[(0, vec![0u8; 64]), (1, vec![0u8; 64])],
            true,
        )
        .expect("write");
        v2.set_len(40).expect("truncate");
        assert!(read_journal(&v2, 64).is_err());
    }

    #[test]
    fn unsynced_journal_lost_on_crash() {
        let mut v = MemVfs::new();
        write_journal(&mut v, 64, 1, &[(0, vec![5u8; 64])], false).expect("write");
        let crashed = v.crash();
        assert_eq!(read_journal(&crashed, 64).expect("read"), None);
    }
}
