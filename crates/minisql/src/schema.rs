//! The catalog: table schemas stored in a B+tree at page 1 (the engine's
//! `sqlite_master`).

use std::collections::BTreeMap;

use crate::ast::{ColType, ColumnDef};
use crate::btree::BTree;
use crate::error::SqlError;
use crate::pager::Pager;
use crate::record::{decode_row, encode_row};
use crate::value::Value;

/// A table's schema plus its storage root.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Catalog rowid (stable table id).
    pub id: i64,
    /// Table name as created.
    pub name: String,
    /// Column definitions in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Root page of the table's B+tree.
    pub root: u32,
}

impl TableSchema {
    /// Index of the INTEGER PRIMARY KEY column (the rowid alias), if any.
    pub fn pk_index(&self) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.primary_key && c.ctype == ColType::Integer)
    }

    /// Find a column index by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    fn to_row(&self) -> Vec<Value> {
        let mut row = vec![
            Value::Text(self.name.clone()),
            Value::Integer(self.root as i64),
            Value::Integer(self.columns.len() as i64),
        ];
        for c in &self.columns {
            row.push(Value::Text(c.name.clone()));
            row.push(Value::Integer(match c.ctype {
                ColType::Integer => 0,
                ColType::Real => 1,
                ColType::Text => 2,
                ColType::Blob => 3,
            }));
            row.push(Value::Integer(
                i64::from(c.primary_key) | (i64::from(c.not_null) << 1),
            ));
        }
        row
    }

    fn from_row(id: i64, row: &[Value]) -> Result<TableSchema, SqlError> {
        let corrupt = || SqlError::Corrupt("catalog row malformed".into());
        let name = match row.first() {
            Some(Value::Text(t)) => t.clone(),
            _ => return Err(corrupt()),
        };
        let root = match row.get(1) {
            Some(Value::Integer(r)) => *r as u32,
            _ => return Err(corrupt()),
        };
        let ncols = match row.get(2) {
            Some(Value::Integer(n)) => *n as usize,
            _ => return Err(corrupt()),
        };
        let mut columns = Vec::with_capacity(ncols);
        for i in 0..ncols {
            let base = 3 + i * 3;
            let cname = match row.get(base) {
                Some(Value::Text(t)) => t.clone(),
                _ => return Err(corrupt()),
            };
            let ctype = match row.get(base + 1) {
                Some(Value::Integer(0)) => ColType::Integer,
                Some(Value::Integer(1)) => ColType::Real,
                Some(Value::Integer(2)) => ColType::Text,
                Some(Value::Integer(3)) => ColType::Blob,
                _ => return Err(corrupt()),
            };
            let flags = match row.get(base + 2) {
                Some(Value::Integer(f)) => *f,
                _ => return Err(corrupt()),
            };
            columns.push(ColumnDef {
                name: cname,
                ctype,
                primary_key: flags & 1 != 0,
                not_null: flags & 2 != 0,
            });
        }
        Ok(TableSchema {
            id,
            name,
            columns,
            root,
        })
    }
}

/// Load every table schema, keyed by lowercase name.
///
/// # Errors
/// Storage failures / corruption.
pub fn load_catalog(pager: &mut Pager) -> Result<BTreeMap<String, TableSchema>, SqlError> {
    let tree = BTree {
        root: pager.catalog_root(),
    };
    let mut out = BTreeMap::new();
    for (id, payload) in tree.collect_all(pager)? {
        let row = decode_row(&payload)?;
        let schema = TableSchema::from_row(id, &row)?;
        out.insert(schema.name.to_ascii_lowercase(), schema);
    }
    Ok(out)
}

/// Insert a new table into the catalog (assigns the id).
///
/// # Errors
/// Storage failures.
pub fn save_new_table(pager: &mut Pager, schema: &mut TableSchema) -> Result<(), SqlError> {
    let tree = BTree {
        root: pager.catalog_root(),
    };
    let id = tree.max_key(pager)?.unwrap_or(0) + 1;
    schema.id = id;
    tree.insert(pager, id, encode_row(&schema.to_row()))
}

/// Remove a table from the catalog.
///
/// # Errors
/// Storage failures.
pub fn delete_table(pager: &mut Pager, id: i64) -> Result<(), SqlError> {
    let tree = BTree {
        root: pager.catalog_root(),
    };
    tree.delete(pager, id)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::JournalMode;
    use crate::vfs::MemVfs;

    fn schema(name: &str, root: u32) -> TableSchema {
        TableSchema {
            id: 0,
            name: name.into(),
            columns: vec![
                ColumnDef {
                    name: "id".into(),
                    ctype: ColType::Integer,
                    primary_key: true,
                    not_null: false,
                },
                ColumnDef {
                    name: "payload".into(),
                    ctype: ColType::Text,
                    primary_key: false,
                    not_null: true,
                },
            ],
            root,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let mut pager = Pager::open(
            Box::new(MemVfs::new()),
            Box::new(MemVfs::new()),
            JournalMode::Off,
        )
        .expect("open");
        let mut s1 = schema("votes", 5);
        let mut s2 = schema("voters", 6);
        save_new_table(&mut pager, &mut s1).expect("save");
        save_new_table(&mut pager, &mut s2).expect("save");
        assert_ne!(s1.id, s2.id);
        let catalog = load_catalog(&mut pager).expect("load");
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog["votes"], s1);
        assert_eq!(catalog["voters"], s2);
    }

    #[test]
    fn delete_removes() {
        let mut pager = Pager::open(
            Box::new(MemVfs::new()),
            Box::new(MemVfs::new()),
            JournalMode::Off,
        )
        .expect("open");
        let mut s = schema("t", 5);
        save_new_table(&mut pager, &mut s).expect("save");
        delete_table(&mut pager, s.id).expect("delete");
        assert!(load_catalog(&mut pager).expect("load").is_empty());
    }

    #[test]
    fn helpers() {
        let s = schema("t", 1);
        assert_eq!(s.pk_index(), Some(0));
        assert_eq!(s.column_index("PAYLOAD"), Some(1));
        assert_eq!(s.column_index("nope"), None);
    }
}
