//! Deterministic key → group routing for sharded deployments.
//!
//! One PBFT group totally orders one request stream; the quadratic message
//! complexity of the agreement keeps any single group's throughput bounded
//! regardless of hardware (paper Table 1 tops out near 17k null ops/s).
//! Horizontal composition — N independent groups, each owning a disjoint
//! partition of the key space — is the standard escape hatch, and the
//! queueing model of Loruenser et al. predicts near-linear scaling when the
//! request streams are partitioned.
//!
//! [`ShardMap`] is the whole contract of that partitioning: a pure,
//! deterministic function from an operation's *shard key* (any byte string
//! the application designates — a row key, an election id, a client tag) to
//! a group index. Every client and every tool that holds the same
//! `ShardMap` computes the same assignment, with no coordination and no
//! routing tables to distribute.
//!
//! Operations naming several keys are routable only when all keys land on
//! the same group; otherwise routing fails with the typed
//! [`RouteError::CrossShard`] so callers can surface the conflict instead of
//! silently splitting an atomic operation. Cross-shard *coordination* is
//! deliberately not this module's job: atomic multi-group operations go
//! through the two-phase commit of [`crate::xshard`], which uses
//! [`XShardOp::route`](crate::xshard::XShardOp::route) to split a
//! transaction into per-shard legs over this same partition.
//!
//! ```
//! use pbft_core::routing::{RouteError, ShardMap};
//!
//! let map = ShardMap::new(4);
//! // Deterministic and total: every key routes, and always the same way.
//! assert_eq!(map.shard_of(b"voter-42"), map.shard_of(b"voter-42"));
//! assert!(map.shard_of(b"anything") < 4);
//!
//! // Multi-key operations route only if the keys agree.
//! let same = [b"k1".to_vec(), b"k1".to_vec()];
//! assert!(map.route(&same).is_ok());
//! let split = [b"k1".to_vec(), b"k3".to_vec()];
//! match map.route(&split) {
//!     Err(RouteError::CrossShard { .. }) => {}
//!     other => panic!("expected a cross-shard rejection, got {other:?}"),
//! }
//! ```

use std::fmt;

/// The stable 64-bit key hash all routing derives from (FNV-1a).
///
/// The choice is part of the deployment contract: every client of a sharded
/// deployment must hash identically or requests land on groups that never
/// ordered them. FNV-1a is tiny, has no data-dependent branches, and mixes
/// short keys (the common case: row keys, numeric ids) well enough that
/// uniform keys spread uniformly across buckets.
pub fn stable_key_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Final avalanche (SplitMix64 finalizer) so that low-entropy tails —
    // e.g. keys differing only in the last byte — still flip high bits
    // before the modulo.
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Why an operation could not be routed to a single group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The operation designated no shard key at all.
    NoKeys,
    /// Two of the operation's keys map to different groups. Atomic
    /// cross-shard operations must go through the two-phase commit of
    /// [`crate::xshard`] instead of single-group submission.
    CrossShard {
        /// The first key and the shard it routes to.
        first: (Vec<u8>, u32),
        /// The earliest key that disagrees, and its shard.
        conflicting: (Vec<u8>, u32),
    },
    /// The key routes to a shard other than the one this client is bound to
    /// (see [`crate::Client::bind_shard`]): the caller holds a connection to
    /// the wrong group.
    ForeignShard {
        /// Where the key belongs.
        key_shard: u32,
        /// The group the client is bound to.
        bound_shard: u32,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NoKeys => write!(f, "operation names no shard key"),
            RouteError::CrossShard { first, conflicting } => write!(
                f,
                "cross-shard operation: key {:02x?} routes to shard {} but key {:02x?} routes to shard {}",
                first.0, first.1, conflicting.0, conflicting.1
            ),
            RouteError::ForeignShard { key_shard, bound_shard } => write!(
                f,
                "key routes to shard {key_shard} but this client is bound to shard {bound_shard}"
            ),
        }
    }
}

impl std::error::Error for RouteError {}

/// The deterministic key-space partition: `shards` groups, key → group by
/// stable hash. See the [module docs](self) for the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// A partition into `shards` groups.
    ///
    /// # Panics
    /// Panics if `shards` is zero — an empty deployment routes nothing.
    pub fn new(shards: u32) -> ShardMap {
        assert!(shards > 0, "a deployment needs at least one shard");
        ShardMap { shards }
    }

    /// Number of groups in the partition.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The group owning `key`. Total (every key routes) and deterministic
    /// (a pure function of the bytes and the shard count).
    pub fn shard_of(&self, key: &[u8]) -> u32 {
        (stable_key_hash(key) % self.shards as u64) as u32
    }

    /// Route an operation naming `keys`: the single group owning all of
    /// them, or a typed error when there is no such group.
    pub fn route<K: AsRef<[u8]>>(&self, keys: &[K]) -> Result<u32, RouteError> {
        let Some(first) = keys.first() else {
            return Err(RouteError::NoKeys);
        };
        let shard = self.shard_of(first.as_ref());
        for key in &keys[1..] {
            let s = self.shard_of(key.as_ref());
            if s != shard {
                return Err(RouteError::CrossShard {
                    first: (first.as_ref().to_vec(), shard),
                    conflicting: (key.as_ref().to_vec(), s),
                });
            }
        }
        Ok(shard)
    }
}

/// Test-only probe shared by this crate's test modules: the first small
/// integer key (big-endian `u64` bytes) that `map` assigns to a different
/// shard than `than`.
///
/// # Panics
/// Panics if 64 probes all collide — impossible for a uniform hash over
/// two or more shards.
#[cfg(test)]
pub(crate) fn test_key_on_other_shard(map: &ShardMap, than: &[u8]) -> Vec<u8> {
    let home = map.shard_of(than);
    (0..64u64)
        .map(|i| i.to_be_bytes().to_vec())
        .find(|k| map.shard_of(k) != home)
        .expect("uniform hash cannot put 64 keys on one shard")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let map = ShardMap::new(5);
        for i in 0..1000u64 {
            let key = i.to_be_bytes();
            let s = map.shard_of(&key);
            assert!(s < 5);
            assert_eq!(s, map.shard_of(&key), "same key, same shard");
        }
    }

    #[test]
    fn one_shard_routes_everything_to_zero() {
        let map = ShardMap::new(1);
        assert_eq!(map.shard_of(b""), 0);
        assert_eq!(map.shard_of(b"any key at all"), 0);
    }

    #[test]
    fn multi_key_agreement_routes() {
        let map = ShardMap::new(4);
        let k = b"agree".to_vec();
        assert_eq!(
            map.route(&[k.clone(), k.clone(), k]).unwrap(),
            map.shard_of(b"agree")
        );
    }

    #[test]
    fn cross_shard_is_a_typed_error() {
        let map = ShardMap::new(8);
        // Find two keys on different shards (the first few integers suffice).
        let ka = 0u64.to_be_bytes().to_vec();
        let sa = map.shard_of(&ka);
        let kb = test_key_on_other_shard(&map, &ka);
        let sb = map.shard_of(&kb);
        match map.route(&[ka.clone(), kb.clone()]) {
            Err(RouteError::CrossShard { first, conflicting }) => {
                assert_eq!(first, (ka, sa));
                assert_eq!(conflicting, (kb, sb));
            }
            other => panic!("expected CrossShard, got {other:?}"),
        }
    }

    #[test]
    fn empty_key_set_is_rejected() {
        let keys: [&[u8]; 0] = [];
        assert_eq!(ShardMap::new(2).route(&keys), Err(RouteError::NoKeys));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardMap::new(0);
    }

    #[test]
    fn hash_avalanches_short_suffix_changes() {
        // Keys differing in one trailing byte should not collapse onto a few
        // shards: check the spread over 256 single-byte variations.
        let map = ShardMap::new(8);
        let mut seen = [0u32; 8];
        for b in 0..=255u8 {
            seen[map.shard_of(&[b"prefix-".as_slice(), &[b]].concat()) as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "all shards hit: {seen:?}");
    }
}
