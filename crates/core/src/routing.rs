//! Deterministic key → group routing for sharded deployments.
//!
//! One PBFT group totally orders one request stream; the quadratic message
//! complexity of the agreement keeps any single group's throughput bounded
//! regardless of hardware (paper Table 1 tops out near 17k null ops/s).
//! Horizontal composition — N independent groups, each owning a disjoint
//! partition of the key space — is the standard escape hatch, and the
//! queueing model of Loruenser et al. predicts near-linear scaling when the
//! request streams are partitioned.
//!
//! [`ShardMap`] is the whole contract of that partitioning: a pure,
//! deterministic function from an operation's *shard key* (any byte string
//! the application designates — a row key, an election id, a client tag) to
//! a group index. Every client and every tool that holds the same
//! `ShardMap` computes the same assignment, with no coordination and no
//! routing tables to distribute.
//!
//! Two assignment representations share the one hash:
//!
//! * **Hash (epoch 0, static).** `hash(key) % shards` — the original
//!   deployment-time partition. [`ShardMap::new`] builds it and every
//!   pre-elastic call site keeps its exact assignment.
//! * **Ranges (elastic).** An explicit, sorted key-*range* → group table
//!   over the 64-bit hash ring, stamped with an **epoch** that increments on
//!   every reconfiguration. [`ShardMap::ranged`] builds the epoch-0 table
//!   (identical spread to `new` for uniform keys, but contiguous — so a
//!   group's span can be *split*), and [`ShardMap::split`] produces the
//!   next epoch: the source group's widest range halved, the upper half
//!   handed to a brand-new group. Replicas compare epochs to order
//!   reconfigurations; a client holding a stale map is told so with a
//!   `WrongEpoch` rejection (see [`crate::xshard`]) and retries against the
//!   newer map.
//!
//! Operations naming several keys are routable only when all keys land on
//! the same group; otherwise routing fails with the typed
//! [`RouteError::CrossShard`] so callers can surface the conflict instead of
//! silently splitting an atomic operation. Cross-shard *coordination* is
//! deliberately not this module's job: atomic multi-group operations go
//! through the two-phase commit of [`crate::xshard`], which uses
//! [`XShardOp::route`](crate::xshard::XShardOp::route) to split a
//! transaction into per-shard legs over this same partition.
//!
//! ```
//! use pbft_core::routing::{RouteError, ShardMap};
//!
//! let map = ShardMap::new(4);
//! // Deterministic and total: every key routes, and always the same way.
//! assert_eq!(map.shard_of(b"voter-42"), map.shard_of(b"voter-42"));
//! assert!(map.shard_of(b"anything") < 4);
//!
//! // Multi-key operations route only if the keys agree.
//! let same = [b"k1".to_vec(), b"k1".to_vec()];
//! assert!(map.route(&same).is_ok());
//! let split = [b"k1".to_vec(), b"k3".to_vec()];
//! match map.route(&split) {
//!     Err(RouteError::CrossShard { .. }) => {}
//!     other => panic!("expected a cross-shard rejection, got {other:?}"),
//! }
//!
//! // Elastic deployments use the range table and grow by splitting.
//! let map = ShardMap::ranged(2);
//! let plan = map.split(0);
//! assert_eq!(plan.new_map.shards(), 3);
//! assert_eq!(plan.new_map.epoch(), 1);
//! ```

use std::fmt;

use crate::wire::{Dec, Enc, WireError};

/// The stable 64-bit key hash all routing derives from (FNV-1a).
///
/// The choice is part of the deployment contract: every client of a sharded
/// deployment must hash identically or requests land on groups that never
/// ordered them. FNV-1a is tiny, has no data-dependent branches, and mixes
/// short keys (the common case: row keys, numeric ids) well enough that
/// uniform keys spread uniformly across buckets.
pub fn stable_key_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Final avalanche (SplitMix64 finalizer) so that low-entropy tails —
    // e.g. keys differing only in the last byte — still flip high bits
    // before the modulo.
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Why an operation could not be routed to a single group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The operation designated no shard key at all.
    NoKeys,
    /// Two of the operation's keys map to different groups. Atomic
    /// cross-shard operations must go through the two-phase commit of
    /// [`crate::xshard`] instead of single-group submission.
    CrossShard {
        /// The first key and the shard it routes to.
        first: (Vec<u8>, u32),
        /// The earliest key that disagrees, and its shard.
        conflicting: (Vec<u8>, u32),
    },
    /// The key routes to a shard other than the one this client is bound to
    /// (see [`crate::Client::bind_shard`]): the caller holds a connection to
    /// the wrong group.
    ForeignShard {
        /// Where the key belongs.
        key_shard: u32,
        /// The group the client is bound to.
        bound_shard: u32,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NoKeys => write!(f, "operation names no shard key"),
            RouteError::CrossShard { first, conflicting } => write!(
                f,
                "cross-shard operation: key {:02x?} routes to shard {} but key {:02x?} routes to shard {}",
                first.0, first.1, conflicting.0, conflicting.1
            ),
            RouteError::ForeignShard { key_shard, bound_shard } => write!(
                f,
                "key routes to shard {key_shard} but this client is bound to shard {bound_shard}"
            ),
        }
    }
}

impl std::error::Error for RouteError {}

/// Upper bound on the range-table size (and therefore on how many times a
/// deployment can split). A fixed array keeps [`ShardMap`] `Copy`, which
/// every client and router clones freely; 16 ranges cover a 2→4→8-way
/// growth with headroom.
pub const MAX_RANGES: usize = 16;

/// One contiguous span of the 64-bit hash ring: keys hashing into
/// `[start, next range's start)` belong to `group` (the last range runs to
/// `u64::MAX` inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive start of the span on the hash ring.
    pub start: u64,
    /// The owning group.
    pub group: u32,
}

/// The two assignment representations (see the [module docs](self)).
// The inline range table is what keeps `ShardMap: Copy` — a hard
// requirement (routers share it through a `Cell`), so the size skew vs the
// `Hash` variant is accepted rather than boxed away.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assignment {
    /// `hash % shards` — the static epoch-0 partition.
    Hash {
        /// Number of groups.
        shards: u32,
    },
    /// Sorted range table over the hash ring.
    Ranges {
        /// The table; only `count` entries are live.
        ranges: [KeyRange; MAX_RANGES],
        /// Live entries of `ranges`.
        count: u32,
        /// Number of groups (1 + highest group index).
        shards: u32,
    },
}

/// The deterministic key-space partition: `shards` groups, key → group by
/// stable hash, versioned by an epoch for elastic deployments. See the
/// [module docs](self) for the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    epoch: u64,
    assign: Assignment,
}

/// The outcome of a [`ShardMap::split`]: the next-epoch map plus the exact
/// hash span whose ownership moved, which is everything a migration needs —
/// the source exports keys hashing into the span, the target installs them,
/// and routers switch maps at cutover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitPlan {
    /// The next-epoch map (one more group, one more range).
    pub new_map: ShardMap,
    /// The group that gave up the span.
    pub source: u32,
    /// The newly created group that now owns it (always the old
    /// `shards()` — groups are only ever appended).
    pub target: u32,
    /// Inclusive lower bound of the moved hash span.
    pub moved_lo: u64,
    /// Inclusive upper bound of the moved hash span.
    pub moved_hi: u64,
}

impl SplitPlan {
    /// Does `key` move from the source to the target under this plan?
    pub fn moves(&self, key: &[u8]) -> bool {
        self.moves_hash(stable_key_hash(key))
    }

    /// [`SplitPlan::moves`] for a precomputed [`stable_key_hash`].
    pub fn moves_hash(&self, hash: u64) -> bool {
        (self.moved_lo..=self.moved_hi).contains(&hash)
    }
}

impl ShardMap {
    /// A static partition into `shards` groups (`hash % shards`, epoch 0).
    /// This is the pre-elastic constructor; its assignment is pinned
    /// forever so existing deployments keep their exact key placement.
    ///
    /// # Panics
    /// Panics if `shards` is zero — an empty deployment routes nothing.
    pub fn new(shards: u32) -> ShardMap {
        assert!(shards > 0, "a deployment needs at least one shard");
        ShardMap {
            epoch: 0,
            assign: Assignment::Hash { shards },
        }
    }

    /// An *elastic* epoch-0 partition into `shards` equal hash ranges.
    /// Uniform keys spread exactly like [`ShardMap::new`], but each group
    /// owns a contiguous span of the ring, so the partition can later be
    /// reconfigured by [`ShardMap::split`].
    ///
    /// # Panics
    /// Panics if `shards` is zero or exceeds [`MAX_RANGES`].
    pub fn ranged(shards: u32) -> ShardMap {
        assert!(shards > 0, "a deployment needs at least one shard");
        assert!(
            shards as usize <= MAX_RANGES,
            "at most {MAX_RANGES} initial ranges"
        );
        let mut ranges = [KeyRange { start: 0, group: 0 }; MAX_RANGES];
        for (g, r) in ranges.iter_mut().enumerate().take(shards as usize) {
            r.start = (((g as u128) << 64) / shards as u128) as u64;
            r.group = g as u32;
        }
        ShardMap {
            epoch: 0,
            assign: Assignment::Ranges {
                ranges,
                count: shards,
                shards,
            },
        }
    }

    /// The reconfiguration epoch: 0 at deployment, +1 per [`ShardMap::split`].
    /// Replicas and routers install a map only if its epoch is newer than
    /// what they hold.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether this map can be reconfigured ([`ShardMap::ranged`] family).
    /// Static hash maps route forever at epoch 0.
    pub fn is_elastic(&self) -> bool {
        matches!(self.assign, Assignment::Ranges { .. })
    }

    /// Number of groups in the partition.
    pub fn shards(&self) -> u32 {
        match self.assign {
            Assignment::Hash { shards } | Assignment::Ranges { shards, .. } => shards,
        }
    }

    /// The group owning `key`. Total (every key routes) and deterministic
    /// (a pure function of the bytes and the partition).
    pub fn shard_of(&self, key: &[u8]) -> u32 {
        self.shard_of_hash(stable_key_hash(key))
    }

    /// [`ShardMap::shard_of`] for a precomputed [`stable_key_hash`] — the
    /// hook for hold-span routers and replica-side ownership checks that
    /// hash once and test twice.
    pub fn shard_of_hash(&self, hash: u64) -> u32 {
        match &self.assign {
            Assignment::Hash { shards } => (hash % *shards as u64) as u32,
            Assignment::Ranges { ranges, count, .. } => {
                let live = &ranges[..*count as usize];
                // Last range whose start is <= hash (table sorted by start,
                // first start is always 0).
                let idx = live.partition_point(|r| r.start <= hash) - 1;
                live[idx].group
            }
        }
    }

    /// The live range table of an elastic map (`None` for static hash
    /// maps). Sorted by `start`; entry *i* covers `[start_i, start_{i+1})`,
    /// the last entry runs to `u64::MAX` inclusive.
    pub fn ranges(&self) -> Option<&[KeyRange]> {
        match &self.assign {
            Assignment::Hash { .. } => None,
            Assignment::Ranges { ranges, count, .. } => Some(&ranges[..*count as usize]),
        }
    }

    /// Plan a live split: halve `source`'s widest range and hand the upper
    /// half to a brand-new group (index = current [`ShardMap::shards`]),
    /// bumping the epoch. Pure planning — nothing migrates until the
    /// deployment executes the [`SplitPlan`].
    ///
    /// # Panics
    /// Panics on a static hash map (build elastic deployments with
    /// [`ShardMap::ranged`]), an out-of-range `source`, a full range table
    /// ([`MAX_RANGES`]), or a source span too narrow to halve.
    pub fn split(&self, source: u32) -> SplitPlan {
        let Assignment::Ranges {
            ranges,
            count,
            shards,
        } = self.assign
        else {
            panic!("static hash maps cannot split; deploy with ShardMap::ranged");
        };
        assert!(source < shards, "source shard {source} out of range");
        assert!(
            (count as usize) < MAX_RANGES,
            "range table full ({MAX_RANGES} entries)"
        );
        let live = &ranges[..count as usize];
        // The widest range owned by the source (ties: lowest start).
        let (idx, lo, hi) = live
            .iter()
            .enumerate()
            .filter(|(_, r)| r.group == source)
            .map(|(i, r)| {
                let end = live.get(i + 1).map_or(u64::MAX, |n| n.start - 1);
                (i, r.start, end)
            })
            .max_by_key(|&(i, lo, hi)| (hi - lo, usize::MAX - i))
            .unwrap_or_else(|| panic!("shard {source} owns no range"));
        assert!(hi > lo, "source span too narrow to split");
        let mid = lo + (hi - lo) / 2 + 1; // upper half [mid, hi] moves
        let target = shards;
        let mut next = ranges;
        // Insert the new range right after the halved one, keeping order.
        next.copy_within(idx + 1..count as usize, idx + 2);
        next[idx + 1] = KeyRange {
            start: mid,
            group: target,
        };
        SplitPlan {
            new_map: ShardMap {
                epoch: self.epoch + 1,
                assign: Assignment::Ranges {
                    ranges: next,
                    count: count + 1,
                    shards: shards + 1,
                },
            },
            source,
            target,
            moved_lo: mid,
            moved_hi: hi,
        }
    }

    /// Route an operation naming `keys`: the single group owning all of
    /// them, or a typed error when there is no such group.
    pub fn route<K: AsRef<[u8]>>(&self, keys: &[K]) -> Result<u32, RouteError> {
        let Some(first) = keys.first() else {
            return Err(RouteError::NoKeys);
        };
        let shard = self.shard_of(first.as_ref());
        for key in &keys[1..] {
            let s = self.shard_of(key.as_ref());
            if s != shard {
                return Err(RouteError::CrossShard {
                    first: (first.as_ref().to_vec(), shard),
                    conflicting: (key.as_ref().to_vec(), s),
                });
            }
        }
        Ok(shard)
    }

    /// Canonical wire encoding (replicas order [`crate::xshard`] `Reshard`
    /// operations carrying a map, so the encoding must be deterministic).
    pub fn encode_into(&self, e: &mut Enc) {
        e.u64(self.epoch);
        match &self.assign {
            Assignment::Hash { shards } => {
                e.u8(0).u32(*shards);
            }
            Assignment::Ranges {
                ranges,
                count,
                shards,
            } => {
                e.u8(1).u32(*shards).u32(*count);
                for r in &ranges[..*count as usize] {
                    e.u64(r.start).u32(r.group);
                }
            }
        }
    }

    /// Decode a [`ShardMap::encode_into`] image.
    ///
    /// # Errors
    /// [`WireError`] on truncation, an unknown representation tag, or a
    /// malformed range table (empty, oversized, unsorted, or not starting
    /// at hash 0).
    pub fn decode_from(d: &mut Dec<'_>) -> Result<ShardMap, WireError> {
        let epoch = d.u64()?;
        let assign = match d.u8()? {
            0 => {
                let shards = d.u32()?;
                if shards == 0 {
                    return Err(WireError::BadLength(0));
                }
                Assignment::Hash { shards }
            }
            1 => {
                let shards = d.u32()?;
                let count = d.u32()?;
                if count == 0 || count as usize > MAX_RANGES || shards == 0 {
                    return Err(WireError::BadLength(count as u64));
                }
                let mut ranges = [KeyRange { start: 0, group: 0 }; MAX_RANGES];
                for r in ranges.iter_mut().take(count as usize) {
                    r.start = d.u64()?;
                    r.group = d.u32()?;
                    if r.group >= shards {
                        return Err(WireError::BadLength(r.group as u64));
                    }
                }
                let live = &ranges[..count as usize];
                if live[0].start != 0 || live.windows(2).any(|w| w[0].start >= w[1].start) {
                    return Err(WireError::BadTag(1));
                }
                Assignment::Ranges {
                    ranges,
                    count,
                    shards,
                }
            }
            t => return Err(WireError::BadTag(t)),
        };
        Ok(ShardMap { epoch, assign })
    }

    /// Encode as a standalone byte string ([`ShardMap::decode`] inverts).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.encode_into(&mut e);
        e.into_bytes()
    }

    /// Decode a standalone [`ShardMap::encode`] image.
    ///
    /// # Errors
    /// See [`ShardMap::decode_from`]; also rejects trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<ShardMap, WireError> {
        let mut d = Dec::new(bytes);
        let map = Self::decode_from(&mut d)?;
        d.finish()?;
        Ok(map)
    }
}

/// Test-only probe shared by this crate's test modules: the first small
/// integer key (big-endian `u64` bytes) that `map` assigns to a different
/// shard than `than`.
///
/// # Panics
/// Panics if 64 probes all collide — impossible for a uniform hash over
/// two or more shards.
#[cfg(test)]
pub(crate) fn test_key_on_other_shard(map: &ShardMap, than: &[u8]) -> Vec<u8> {
    let home = map.shard_of(than);
    (0..64u64)
        .map(|i| i.to_be_bytes().to_vec())
        .find(|k| map.shard_of(k) != home)
        .expect("uniform hash cannot put 64 keys on one shard")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let map = ShardMap::new(5);
        for i in 0..1000u64 {
            let key = i.to_be_bytes();
            let s = map.shard_of(&key);
            assert!(s < 5);
            assert_eq!(s, map.shard_of(&key), "same key, same shard");
        }
    }

    #[test]
    fn one_shard_routes_everything_to_zero() {
        let map = ShardMap::new(1);
        assert_eq!(map.shard_of(b""), 0);
        assert_eq!(map.shard_of(b"any key at all"), 0);
    }

    #[test]
    fn multi_key_agreement_routes() {
        let map = ShardMap::new(4);
        let k = b"agree".to_vec();
        assert_eq!(
            map.route(&[k.clone(), k.clone(), k]).unwrap(),
            map.shard_of(b"agree")
        );
    }

    #[test]
    fn cross_shard_is_a_typed_error() {
        let map = ShardMap::new(8);
        // Find two keys on different shards (the first few integers suffice).
        let ka = 0u64.to_be_bytes().to_vec();
        let sa = map.shard_of(&ka);
        let kb = test_key_on_other_shard(&map, &ka);
        let sb = map.shard_of(&kb);
        match map.route(&[ka.clone(), kb.clone()]) {
            Err(RouteError::CrossShard { first, conflicting }) => {
                assert_eq!(first, (ka, sa));
                assert_eq!(conflicting, (kb, sb));
            }
            other => panic!("expected CrossShard, got {other:?}"),
        }
    }

    #[test]
    fn empty_key_set_is_rejected() {
        let keys: [&[u8]; 0] = [];
        assert_eq!(ShardMap::new(2).route(&keys), Err(RouteError::NoKeys));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardMap::new(0);
    }

    #[test]
    fn hash_avalanches_short_suffix_changes() {
        // Keys differing in one trailing byte should not collapse onto a few
        // shards: check the spread over 256 single-byte variations.
        let map = ShardMap::new(8);
        let mut seen = [0u32; 8];
        for b in 0..=255u8 {
            seen[map.shard_of(&[b"prefix-".as_slice(), &[b]].concat()) as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "all shards hit: {seen:?}");
    }

    #[test]
    fn ranged_map_is_total_and_balanced() {
        for shards in [1u32, 2, 3, 4, 8, 16] {
            let map = ShardMap::ranged(shards);
            assert!(map.is_elastic());
            assert_eq!(map.epoch(), 0);
            assert_eq!(map.shards(), shards);
            let mut seen = vec![0u32; shards as usize];
            for i in 0..4096u64 {
                seen[map.shard_of(&i.to_be_bytes()) as usize] += 1;
            }
            assert!(
                seen.iter().all(|&c| c > 0),
                "{shards} ranges all hit: {seen:?}"
            );
            // Ring extremes route into the first and last range.
            assert_eq!(map.shard_of_hash(0), 0);
            assert_eq!(map.shard_of_hash(u64::MAX), shards - 1);
        }
    }

    #[test]
    fn split_moves_exactly_the_upper_half_span() {
        let map = ShardMap::ranged(2);
        let plan = map.split(0);
        assert_eq!(plan.source, 0);
        assert_eq!(plan.target, 2, "new group appended");
        assert_eq!(plan.new_map.shards(), 3);
        assert_eq!(plan.new_map.epoch(), 1);
        for i in 0..4096u64 {
            let key = i.to_be_bytes();
            let (old, new) = (map.shard_of(&key), plan.new_map.shard_of(&key));
            if plan.moves(&key) {
                assert_eq!(old, 0, "only source keys move");
                assert_eq!(new, 2, "moved keys land on the target");
            } else {
                assert_eq!(old, new, "unmoved keys keep their owner");
            }
        }
        // The moved span sits inside the source's old range.
        assert_eq!(map.shard_of_hash(plan.moved_lo), 0);
        assert_eq!(map.shard_of_hash(plan.moved_hi), 0);
        assert_eq!(plan.new_map.shard_of_hash(plan.moved_lo), 2);
        assert_eq!(plan.new_map.shard_of_hash(plan.moved_hi), 2);
        assert_eq!(plan.new_map.shard_of_hash(plan.moved_lo - 1), 0);
    }

    #[test]
    fn repeated_splits_grow_to_the_table_bound() {
        // 2 → 4 (the acceptance scenario) and on until the table fills.
        let mut map = ShardMap::ranged(2);
        for step in 0..(MAX_RANGES as u32 - 2) {
            let source = step % map.shards();
            let plan = map.split(source);
            assert_eq!(plan.new_map.epoch(), map.epoch() + 1);
            assert_eq!(plan.new_map.shards(), map.shards() + 1);
            map = plan.new_map;
        }
        assert_eq!(map.ranges().unwrap().len(), MAX_RANGES);
        // Still total and covering every group.
        let mut seen = vec![0u32; map.shards() as usize];
        for i in 0..65536u64 {
            seen[map.shard_of(&i.to_be_bytes()) as usize] += 1;
        }
        assert!(
            seen.iter().all(|&c| c > 0),
            "all groups reachable: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn static_hash_maps_cannot_split() {
        ShardMap::new(4).split(0);
    }

    #[test]
    fn maps_roundtrip_on_the_wire() {
        let hash = ShardMap::new(7);
        assert_eq!(ShardMap::decode(&hash.encode()), Ok(hash));
        let mut elastic = ShardMap::ranged(2);
        elastic = elastic.split(1).new_map;
        elastic = elastic.split(0).new_map;
        assert_eq!(ShardMap::decode(&elastic.encode()), Ok(elastic));
    }

    #[test]
    fn malformed_map_images_are_rejected() {
        // Unknown representation tag.
        let mut e = Enc::new();
        e.u64(0).u8(9);
        assert!(ShardMap::decode(&e.into_bytes()).is_err());
        // Zero shards.
        let mut e = Enc::new();
        e.u64(0).u8(0).u32(0);
        assert!(ShardMap::decode(&e.into_bytes()).is_err());
        // Unsorted range table.
        let mut e = Enc::new();
        e.u64(1).u8(1).u32(2).u32(2);
        e.u64(10).u32(0); // first start must be 0
        e.u64(5).u32(1);
        assert!(ShardMap::decode(&e.into_bytes()).is_err());
        // Trailing garbage.
        let mut bytes = ShardMap::new(2).encode();
        bytes.push(0);
        assert!(ShardMap::decode(&bytes).is_err());
    }
}
