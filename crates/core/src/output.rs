//! Engine outputs and work accounting.

use std::sync::Arc;

use crate::messages::Envelope;
use crate::types::{NetAddr, ReplicaId};

/// Reference-counted immutable packet bytes.
///
/// The hot-path encode-once rule: a broadcast encodes and seals its packet
/// exactly once, then shares the same buffer across every destination (and
/// down through simnet delivery) by bumping a refcount instead of copying.
/// `Arc<Vec<u8>>` rather than `Arc<[u8]>` so wrapping an just-encoded
/// `Vec<u8>` is itself copy-free.
pub type PacketBuf = Arc<Vec<u8>>;

/// Where a packet should go. The driving harness resolves these to transport
/// endpoints (replica indices are static configuration; client addresses are
/// learned from requests / joins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetTarget {
    /// A group replica.
    Replica(ReplicaId),
    /// A client, by transport address.
    Client(NetAddr),
}

/// Engine timers. Engines arm these by kind; harnesses map kinds onto their
/// transport's timer facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimerKind {
    /// Backup's suspicion timer: fires if an observed request is not
    /// executed in time → view change.
    ViewChange,
    /// Client retransmission timer.
    Retransmit,
    /// Client blind NewKey (authenticator) retransmission (§2.3).
    NewKey,
    /// Replica retry for an in-progress state transfer.
    FetchRetry,
    /// Primary's batch re-examination (used when the window was full).
    BatchKick,
    /// View-change round timeout (doubles per round).
    NewViewTimeout,
    /// Periodic status broadcast (drives retransmission to lagging peers).
    StatusTick,
}

impl TimerKind {
    /// Stable numeric id for harness mapping.
    pub fn index(self) -> u64 {
        match self {
            TimerKind::ViewChange => 0,
            TimerKind::Retransmit => 1,
            TimerKind::NewKey => 2,
            TimerKind::FetchRetry => 3,
            TimerKind::BatchKick => 4,
            TimerKind::NewViewTimeout => 5,
            TimerKind::StatusTick => 6,
        }
    }

    /// Inverse of [`TimerKind::index`].
    pub fn from_index(idx: u64) -> Option<TimerKind> {
        Some(match idx {
            0 => TimerKind::ViewChange,
            1 => TimerKind::Retransmit,
            2 => TimerKind::NewKey,
            3 => TimerKind::FetchRetry,
            4 => TimerKind::BatchKick,
            5 => TimerKind::NewViewTimeout,
            6 => TimerKind::StatusTick,
            _ => return None,
        })
    }
}

/// One action requested by an engine.
#[derive(Debug, Clone)]
pub enum Output {
    /// Send a sealed packet.
    Send {
        /// Destination.
        to: NetTarget,
        /// Fully encoded packet bytes, shared (not copied) across the
        /// destinations of a broadcast.
        packet: PacketBuf,
        /// Decoded form, for tests and tracing (the harness sends `packet`);
        /// shared across destinations like the packet bytes.
        envelope: Arc<Envelope>,
    },
    /// Arm (or re-arm) a timer after `delay_ns`.
    SetTimer {
        /// Which timer.
        kind: TimerKind,
        /// Delay in nanoseconds.
        delay_ns: u64,
    },
    /// Cancel a timer.
    CancelTimer {
        /// Which timer.
        kind: TimerKind,
    },
}

/// Counts of the real work performed during one engine invocation. The
/// harness maps these through its cost model into virtual CPU time; a real
/// deployment would simply ignore them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCounts {
    /// Fast MACs generated.
    pub mac_gen: u64,
    /// Fast MACs verified.
    pub mac_verify: u64,
    /// Public-key signatures produced.
    pub sign: u64,
    /// Public-key signatures verified.
    pub sig_verify: u64,
    /// Bytes run through the digest function (message hashing).
    pub digest_bytes: u64,
    /// State pages re-hashed for checkpoints.
    pub pages_hashed: u64,
    /// Application CPU microseconds (from [`crate::app::ExecMetrics`]).
    pub exec_cpu_us: f64,
    /// Synchronous stable-storage flushes.
    pub disk_flushes: u64,
    /// Bytes written to stable storage.
    pub disk_write_bytes: u64,
    /// Requests whose execution completed in this invocation.
    pub requests_executed: u64,
}

impl OpCounts {
    /// Accumulate another record.
    pub fn add(&mut self, other: &OpCounts) {
        self.mac_gen += other.mac_gen;
        self.mac_verify += other.mac_verify;
        self.sign += other.sign;
        self.sig_verify += other.sig_verify;
        self.digest_bytes += other.digest_bytes;
        self.pages_hashed += other.pages_hashed;
        self.exec_cpu_us += other.exec_cpu_us;
        self.disk_flushes += other.disk_flushes;
        self.disk_write_bytes += other.disk_write_bytes;
        self.requests_executed += other.requests_executed;
    }
}

/// The result of one engine invocation.
#[derive(Debug, Default)]
pub struct HandleResult {
    /// Actions for the transport.
    pub outputs: Vec<Output>,
    /// Work performed.
    pub counts: OpCounts,
}

impl HandleResult {
    /// Iterate over just the sends.
    pub fn sends(&self) -> impl Iterator<Item = (&NetTarget, &Envelope)> {
        self.outputs.iter().filter_map(|o| match o {
            Output::Send { to, envelope, .. } => Some((to, envelope.as_ref())),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_kind_index_roundtrip() {
        for k in [
            TimerKind::ViewChange,
            TimerKind::Retransmit,
            TimerKind::NewKey,
            TimerKind::FetchRetry,
            TimerKind::BatchKick,
            TimerKind::NewViewTimeout,
            TimerKind::StatusTick,
        ] {
            assert_eq!(TimerKind::from_index(k.index()), Some(k));
        }
        assert_eq!(TimerKind::from_index(99), None);
    }

    #[test]
    fn op_counts_accumulate() {
        let mut a = OpCounts {
            mac_gen: 1,
            sign: 2,
            ..Default::default()
        };
        a.add(&OpCounts {
            mac_gen: 3,
            sig_verify: 1,
            exec_cpu_us: 2.5,
            ..Default::default()
        });
        assert_eq!(a.mac_gen, 4);
        assert_eq!(a.sign, 2);
        assert_eq!(a.sig_verify, 1);
        assert!((a.exec_cpu_us - 2.5).abs() < 1e-12);
    }
}
