//! Core identifier types.

use std::fmt;

/// A replica's protocol index, `0..n`. The primary of view `v` is replica
/// `v mod n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReplicaId(pub u32);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A client identifier.
///
/// With static membership these are assigned at configuration time. With
/// dynamic membership (paper §3.1) they are arbitrary identifiers allocated
/// at Join time and routed through the *redirection table* — "instead of
/// using a single address range of [0..max_clients], an arbitrary identifier
/// is assigned to each new client and a table maps this number to the index
/// in the array of client and server node entries".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A view number. The epoch during which one primary is stable.
pub type View = u64;

/// A sequence number assigned by the primary; defines the total order.
pub type SeqNum = u64;

/// A transport address (the driving harness maps these to real endpoints;
/// under simnet they are `NodeId` values).
pub type NetAddr = u32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ReplicaId(2).to_string(), "r2");
        assert_eq!(ClientId(17).to_string(), "c17");
    }

    #[test]
    fn ordering() {
        assert!(ReplicaId(1) < ReplicaId(2));
        assert!(ClientId(1) < ClientId(2));
    }
}
