//! The replica message log: per-sequence agreement state between watermarks.

use std::collections::{BTreeMap, BTreeSet};

use pbft_crypto::Digest;

use crate::messages::PrePrepareMsg;
use crate::types::{ReplicaId, SeqNum, View};

/// Agreement state for one sequence number.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// The view this entry's pre-prepare belongs to.
    pub view: View,
    /// The agreed batch digest.
    pub digest: Digest,
    /// The pre-prepare (with inline bodies for non-big requests).
    pub preprepare: Option<PrePrepareMsg>,
    /// Replicas whose prepare we hold.
    pub prepares: BTreeSet<ReplicaId>,
    /// Replicas whose commit we hold.
    pub commits: BTreeSet<ReplicaId>,
    /// 2f prepares + pre-prepare reached.
    pub prepared: bool,
    /// 2f+1 commits reached.
    pub committed: bool,
    /// Batch has been executed (stable).
    pub executed: bool,
    /// Batch was executed tentatively (after prepare, before commit).
    pub tentative: bool,
}

impl LogEntry {
    fn new(view: View, digest: Digest) -> Self {
        LogEntry {
            view,
            digest,
            preprepare: None,
            prepares: BTreeSet::new(),
            commits: BTreeSet::new(),
            prepared: false,
            committed: false,
            executed: false,
            tentative: false,
        }
    }
}

/// The sequence-indexed log with low/high watermarks.
#[derive(Debug, Default)]
pub struct MessageLog {
    entries: BTreeMap<SeqNum, LogEntry>,
    /// Low watermark: the last stable checkpoint sequence.
    pub low: SeqNum,
    /// Log capacity above the low watermark.
    pub span: SeqNum,
}

impl MessageLog {
    /// Create a log with capacity `span` above the low watermark.
    pub fn new(span: SeqNum) -> Self {
        MessageLog {
            entries: BTreeMap::new(),
            low: 0,
            span,
        }
    }

    /// High watermark.
    pub fn high(&self) -> SeqNum {
        self.low + self.span
    }

    /// Is `seq` inside `(low, high]`?
    pub fn in_watermarks(&self, seq: SeqNum) -> bool {
        seq > self.low && seq <= self.high()
    }

    /// Get or create the entry for `(view, seq, digest)`.
    ///
    /// Returns `None` on a *conflicting* digest for an existing `(view,
    /// seq)` — the Byzantine-primary signal callers must treat as a protocol
    /// violation.
    pub fn entry_for(&mut self, seq: SeqNum, view: View, digest: Digest) -> Option<&mut LogEntry> {
        let e = self
            .entries
            .entry(seq)
            .or_insert_with(|| LogEntry::new(view, digest));
        if e.view == view && e.digest != digest {
            return None;
        }
        if view > e.view {
            // Higher view supersedes (view change re-issued this seq).
            *e = LogEntry::new(view, digest);
        } else if view < e.view {
            return None;
        }
        Some(e)
    }

    /// Existing entry for `seq`.
    pub fn get(&self, seq: SeqNum) -> Option<&LogEntry> {
        self.entries.get(&seq)
    }

    /// Existing entry, mutable.
    pub fn get_mut(&mut self, seq: SeqNum) -> Option<&mut LogEntry> {
        self.entries.get_mut(&seq)
    }

    /// Iterate entries in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = (&SeqNum, &LogEntry)> {
        self.entries.iter()
    }

    /// Iterate entries mutably in sequence order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&SeqNum, &mut LogEntry)> {
        self.entries.iter_mut()
    }

    /// Discard entries at or below `stable_seq` and advance the low
    /// watermark (checkpoint garbage collection).
    pub fn collect_garbage(&mut self, stable_seq: SeqNum) {
        self.low = self.low.max(stable_seq);
        self.entries.retain(|&s, _| s > stable_seq);
    }

    /// Prepared certificates above `stable_seq` (for view-change messages).
    pub fn prepared_proofs_above(&self, stable_seq: SeqNum) -> Vec<PrePrepareMsg> {
        self.entries
            .iter()
            .filter(|(&s, e)| s > stable_seq && e.prepared && e.preprepare.is_some())
            .map(|(_, e)| e.preprepare.clone().expect("filtered on presence"))
            .collect()
    }

    /// Drop all entries (used when a view change rebuilds the log from a
    /// new-view message).
    pub fn clear_above(&mut self, seq: SeqNum) {
        self.entries.retain(|&s, _| s <= seq);
    }

    /// Discard uncommitted entries above `max_s` left over from views
    /// before `view` — pre-prepares a dead primary issued that no
    /// view-change vote carried into the new view's re-issue set. Nothing
    /// above `max_s` can have committed anywhere (a commit quorum forces a
    /// prepared certificate into every view-change quorum), so dropping is
    /// safe; keeping them would pin the congestion window on slots the new
    /// view will never re-agree. Matters most for leader-aggregated
    /// engines, where backups hold no prepare quorums of their own and a
    /// leader failure routinely strands its in-flight tail.
    pub fn drop_stale_above(&mut self, max_s: SeqNum, view: View) {
        self.entries
            .retain(|&s, e| s <= max_s || e.view >= view || e.committed);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(b: u8) -> Digest {
        Digest::of(&[b])
    }

    #[test]
    fn watermarks() {
        let mut log = MessageLog::new(256);
        assert!(!log.in_watermarks(0));
        assert!(log.in_watermarks(1));
        assert!(log.in_watermarks(256));
        assert!(!log.in_watermarks(257));
        log.collect_garbage(128);
        assert!(!log.in_watermarks(128));
        assert!(log.in_watermarks(129));
        assert!(log.in_watermarks(384));
    }

    #[test]
    fn conflicting_digest_rejected() {
        let mut log = MessageLog::new(256);
        assert!(log.entry_for(5, 0, digest(1)).is_some());
        assert!(
            log.entry_for(5, 0, digest(2)).is_none(),
            "same view, different digest"
        );
        assert!(log.entry_for(5, 0, digest(1)).is_some(), "same digest fine");
    }

    #[test]
    fn higher_view_supersedes() {
        let mut log = MessageLog::new(256);
        {
            let e = log.entry_for(5, 0, digest(1)).expect("create");
            e.prepares.insert(ReplicaId(1));
            e.prepared = true;
        }
        let e = log.entry_for(5, 1, digest(2)).expect("supersede");
        assert_eq!(e.view, 1);
        assert!(!e.prepared, "state reset for the new view");
        assert!(
            log.entry_for(5, 0, digest(1)).is_none(),
            "stale view rejected"
        );
    }

    #[test]
    fn garbage_collection_drops_entries() {
        let mut log = MessageLog::new(256);
        for s in 1..=10 {
            log.entry_for(s, 0, digest(s as u8)).expect("create");
        }
        assert_eq!(log.len(), 10);
        log.collect_garbage(7);
        assert_eq!(log.len(), 3);
        assert!(log.get(7).is_none());
        assert!(log.get(8).is_some());
        assert!(!log.is_empty());
    }

    #[test]
    fn prepared_proofs_filtered() {
        let mut log = MessageLog::new(256);
        for s in 1..=4u64 {
            let e = log.entry_for(s, 0, digest(s as u8)).expect("create");
            if s % 2 == 0 {
                e.prepared = true;
                e.preprepare = Some(PrePrepareMsg {
                    view: 0,
                    seq: s,
                    nondet: crate::app::NonDet::default(),
                    entries: vec![],
                });
            }
        }
        let proofs = log.prepared_proofs_above(2);
        assert_eq!(proofs.len(), 1);
        assert_eq!(proofs[0].seq, 4);
    }
}
