//! Hand-rolled deterministic wire codec.
//!
//! Message digests and MACs are computed over canonical encoded bytes, so
//! the codec must be deterministic and total — which is why it is hand-rolled
//! rather than derived. All integers are big-endian; variable-length fields
//! are `u32`-length-prefixed.

use std::fmt;

use pbft_crypto::Digest;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes.
    Truncated,
    /// A tag byte had no meaning in context.
    BadTag(u8),
    /// A length prefix exceeded sane bounds.
    BadLength(u64),
    /// Trailing garbage after a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            WireError::BadLength(l) => write!(f, "implausible length {l}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum accepted variable-length field, as a denial-of-service guard.
const MAX_FIELD: usize = 64 << 20;

/// Byte writer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Enc {
            buf: Vec::with_capacity(256),
        }
    }

    /// Continue encoding onto an existing buffer. Appending (say, an auth
    /// trailer) reuses the allocation instead of copying the prefix into a
    /// fresh encoder.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Enc { buf }
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a raw byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a bool as one byte.
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.buf.push(v as u8);
        self
    }

    /// Append length-prefixed bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append raw bytes without a length prefix (fixed-size fields).
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a digest (32 raw bytes).
    pub fn digest(&mut self, d: &Digest) -> &mut Self {
        self.raw(d.as_bytes())
    }

    /// Current contents (e.g. to MAC a prefix).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Byte reader.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Start decoding `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Fail unless fully consumed.
    ///
    /// # Errors
    /// [`WireError::TrailingBytes`] when bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    ///
    /// # Errors
    /// [`WireError::Truncated`].
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian u32.
    ///
    /// # Errors
    /// [`WireError::Truncated`].
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a big-endian u64.
    ///
    /// # Errors
    /// [`WireError::Truncated`].
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a bool byte (0 or 1).
    ///
    /// # Errors
    /// [`WireError::BadTag`] for other values.
    pub fn boolean(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Read length-prefixed bytes, borrowed from the input (zero-copy).
    ///
    /// The hot decode paths parse through this and only materialize owned
    /// buffers after authentication passes.
    ///
    /// # Errors
    /// [`WireError::Truncated`] or [`WireError::BadLength`].
    pub fn bytes_ref(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        if len > MAX_FIELD {
            return Err(WireError::BadLength(len as u64));
        }
        self.take(len)
    }

    /// Read length-prefixed bytes into an owned buffer.
    ///
    /// # Errors
    /// [`WireError::Truncated`] or [`WireError::BadLength`].
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        self.bytes_ref().map(<[u8]>::to_vec)
    }

    /// Read `n` raw bytes.
    ///
    /// # Errors
    /// [`WireError::Truncated`].
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Read a digest (32 raw bytes).
    ///
    /// # Errors
    /// [`WireError::Truncated`].
    pub fn digest(&mut self) -> Result<Digest, WireError> {
        let b = self.take(32)?;
        let mut d = [0u8; 32];
        d.copy_from_slice(b);
        Ok(Digest(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Enc::new();
        e.u8(7)
            .u32(0xdead_beef)
            .u64(0x1122_3344_5566_7788)
            .boolean(true)
            .boolean(false);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), 0x1122_3344_5566_7788);
        assert!(d.boolean().unwrap());
        assert!(!d.boolean().unwrap());
        d.finish().unwrap();
    }

    #[test]
    fn bytes_roundtrip() {
        let mut e = Enc::new();
        e.bytes(b"hello").bytes(b"").raw(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.bytes().unwrap(), b"hello");
        assert_eq!(d.bytes().unwrap(), b"");
        assert_eq!(d.raw(3).unwrap(), &[1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn bytes_ref_borrows_from_input() {
        let mut e = Enc::new();
        e.bytes(b"shared");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let field = d.bytes_ref().unwrap();
        assert_eq!(field, b"shared");
        // Zero-copy: the returned slice aliases the input buffer.
        assert_eq!(field.as_ptr(), bytes[4..].as_ptr());
        d.finish().unwrap();
    }

    #[test]
    fn from_vec_appends_in_place() {
        let mut e = Enc::new();
        e.u8(1).u32(7);
        let prefix = e.into_bytes();
        let ptr = prefix.as_ptr();
        let mut e = Enc::from_vec(prefix);
        e.u8(2);
        let all = e.into_bytes();
        assert_eq!(all, [1, 0, 0, 0, 7, 2]);
        // Small appends reuse the prefix allocation rather than copying.
        assert_eq!(all.as_ptr(), ptr);
    }

    #[test]
    fn digest_roundtrip() {
        let dig = Digest::of(b"x");
        let mut e = Enc::new();
        e.digest(&dig);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.digest().unwrap(), dig);
    }

    #[test]
    fn truncation_detected() {
        let mut d = Dec::new(&[0, 0]);
        assert_eq!(d.u32(), Err(WireError::Truncated));
        let mut d = Dec::new(&[0, 0, 0, 9, 1]);
        assert_eq!(d.bytes(), Err(WireError::Truncated));
    }

    #[test]
    fn bad_bool_detected() {
        let mut d = Dec::new(&[2]);
        assert_eq!(d.boolean(), Err(WireError::BadTag(2)));
    }

    #[test]
    fn trailing_bytes_detected() {
        let d = Dec::new(&[1]);
        assert_eq!(d.finish(), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut e = Enc::new();
        e.u32(u32::MAX);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.bytes(), Err(WireError::BadLength(u32::MAX as u64)));
    }
}
