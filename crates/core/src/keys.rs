//! Key management for replicas and clients.
//!
//! Replicas share pairwise MAC session keys (established out of band at
//! group configuration, as PBFT assumes) and know each other's public keys.
//! Client MAC session keys are **transient**: they are distributed via
//! signed NewKey messages and periodically re-broadcast ("the blind
//! retransmission of the authenticators from each node to all replicas,
//! based on a timer"). A restarted replica has lost them — the root cause of
//! the erratic recovery the paper documents in §2.3.

use std::collections::HashMap;

use pbft_crypto::auth::{Authenticator, MacKey};
use pbft_crypto::hmac::derive_key;
use pbft_crypto::{Digest, KeyPair, Mac64, PublicKey};

use crate::config::AuthMode;
use crate::messages::AuthTag;
use crate::output::OpCounts;
use crate::types::{ClientId, ReplicaId};

/// Deterministically derive a node key pair from the deployment seed.
pub fn node_keypair(
    group_seed: u64,
    replica: Option<ReplicaId>,
    client: Option<ClientId>,
) -> KeyPair {
    let tag = match (replica, client) {
        (Some(r), None) => 0x1000_0000_0000_0000u64 | u64::from(r.0),
        (None, Some(c)) => 0x2000_0000_0000_0000u64 | c.0,
        _ => 0x3000_0000_0000_0000u64,
    };
    KeyPair::generate(group_seed ^ tag)
}

/// Derive the pairwise replica↔replica MAC key.
pub fn replica_pair_key(group_seed: u64, a: ReplicaId, b: ReplicaId) -> MacKey {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    let mut ctx = Vec::with_capacity(16);
    ctx.extend_from_slice(&u64::from(lo).to_be_bytes());
    ctx.extend_from_slice(&u64::from(hi).to_be_bytes());
    MacKey::new(derive_key(&group_seed.to_be_bytes(), "replica-pair", &ctx))
}

/// Derive the client→replica session key a *client* generates for a replica.
/// (Clients generate fresh keys in reality; deterministic derivation keeps
/// simulations reproducible and lets static deployments pre-install them.)
pub fn client_session_key(group_seed: u64, client: ClientId, replica: ReplicaId) -> MacKey {
    let mut ctx = Vec::with_capacity(16);
    ctx.extend_from_slice(&client.0.to_be_bytes());
    ctx.extend_from_slice(&u64::from(replica.0).to_be_bytes());
    MacKey::new(derive_key(
        &group_seed.to_be_bytes(),
        "client-session",
        &ctx,
    ))
}

/// The MAC input for a replica-multicast authenticator: the 32-byte digest
/// of the authenticated prefix. One digest covers the whole (possibly
/// batch-sized) prefix, after which each of the n−1 per-peer MACs runs over
/// a fixed 32 bytes — the paper's batching amortization applied to
/// authentication: authenticator cost is `1 digest + (n−1) short MACs` per
/// broadcast, independent of how many requests the batch carries.
fn multicast_mac_input(prefix: &[u8], counts: &mut OpCounts) -> Digest {
    counts.digest_bytes += prefix.len() as u64;
    Digest::of(prefix)
}

/// A replica-side key store.
pub struct KeyStore {
    me: ReplicaId,
    n: usize,
    group_seed: u64,
    keypair: KeyPair,
    replica_pubkeys: Vec<PublicKey>,
    replica_keys: Vec<MacKey>,
    /// Transient client session keys (lost on restart — §2.3).
    client_keys: HashMap<ClientId, MacKey>,
    /// Client public keys (static config or learned from Joins).
    client_pubkeys: HashMap<ClientId, PublicKey>,
}

impl std::fmt::Debug for KeyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyStore")
            .field("me", &self.me)
            .field("n", &self.n)
            .field("clients", &self.client_keys.len())
            .finish()
    }
}

impl KeyStore {
    /// Build the store for replica `me` of a group of `n`.
    ///
    /// `preinstalled_clients` are clients whose session keys are installed
    /// immediately (modeling a completed startup key exchange in static
    /// deployments). Pass an empty slice to model a freshly *restarted*
    /// replica, which has lost all client session keys.
    pub fn new_replica(
        group_seed: u64,
        me: ReplicaId,
        n: usize,
        preinstalled_clients: &[ClientId],
    ) -> KeyStore {
        let keypair = node_keypair(group_seed, Some(me), None);
        let replica_pubkeys = (0..n as u32)
            .map(|i| node_keypair(group_seed, Some(ReplicaId(i)), None).public())
            .collect();
        let replica_keys = (0..n as u32)
            .map(|i| replica_pair_key(group_seed, me, ReplicaId(i)))
            .collect();
        let mut client_keys = HashMap::new();
        let mut client_pubkeys = HashMap::new();
        for &c in preinstalled_clients {
            client_keys.insert(c, client_session_key(group_seed, c, me));
            client_pubkeys.insert(c, node_keypair(group_seed, None, Some(c)).public());
        }
        KeyStore {
            me,
            n,
            group_seed,
            keypair,
            replica_pubkeys,
            replica_keys,
            client_keys,
            client_pubkeys,
        }
    }

    /// This replica's id.
    pub fn me(&self) -> ReplicaId {
        self.me
    }

    /// This replica's signing key pair.
    pub fn keypair(&self) -> &KeyPair {
        &self.keypair
    }

    /// Group size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The deployment seed (used to derive static client keys lazily).
    pub fn group_seed(&self) -> u64 {
        self.group_seed
    }

    /// The public key a *static* deployment's configuration assigns to
    /// `client`, derived from the deployment seed. Static configuration —
    /// unlike session MAC keys — survives a restart, so a restarted replica
    /// uses this to verify a client's signed blind NewKey and re-learn its
    /// session key (the §2.3 recovery path), and to verify signature-mode
    /// requests. Meaningless for dynamic members, whose public keys arrive
    /// with their Join.
    pub fn static_client_pubkey(&self, client: ClientId) -> PublicKey {
        node_keypair(self.group_seed, None, Some(client)).public()
    }

    /// Install a client session key (from a verified NewKey message).
    pub fn install_client_key(&mut self, client: ClientId, key: [u8; 32]) {
        self.client_keys.insert(client, MacKey::new(key));
    }

    /// Record a client's public key (static config or from a Join).
    pub fn install_client_pubkey(&mut self, client: ClientId, pk: PublicKey) {
        self.client_pubkeys.insert(client, pk);
    }

    /// Forget a client entirely (Leave).
    pub fn remove_client(&mut self, client: ClientId) {
        self.client_keys.remove(&client);
        self.client_pubkeys.remove(&client);
    }

    /// Whether a session key for `client` is installed.
    pub fn has_client_key(&self, client: ClientId) -> bool {
        self.client_keys.contains_key(&client)
    }

    /// A client's public key, if known.
    pub fn client_pubkey(&self, client: ClientId) -> Option<PublicKey> {
        self.client_pubkeys.get(&client).copied()
    }

    /// Authenticate an outgoing replica-multicast message prefix: one
    /// prefix digest, then one short MAC per peer over it (see
    /// `multicast_mac_input`).
    pub fn seal_multicast(&self, mode: AuthMode, prefix: &[u8], counts: &mut OpCounts) -> AuthTag {
        match mode {
            AuthMode::Macs => {
                let input = multicast_mac_input(prefix, counts);
                let entries: Vec<(u32, Mac64)> = (0..self.n as u32)
                    .filter(|&i| i != self.me.0)
                    .map(|i| (i, self.replica_keys[i as usize].mac(input.as_bytes(), 0)))
                    .collect();
                counts.mac_gen += entries.len() as u64;
                AuthTag::Authenticator(Authenticator::from_entries(entries))
            }
            AuthMode::Signatures => {
                counts.sign += 1;
                AuthTag::Sig(self.keypair.sign(prefix))
            }
        }
    }

    /// Authenticate an outgoing reply to a client. Falls back to
    /// unauthenticated when no session key exists (join replies) — clients
    /// protect themselves by matching f+1 identical replies.
    pub fn seal_to_client(
        &self,
        mode: AuthMode,
        client: ClientId,
        prefix: &[u8],
        counts: &mut OpCounts,
    ) -> AuthTag {
        match mode {
            AuthMode::Macs => match self.client_keys.get(&client) {
                Some(k) => {
                    counts.mac_gen += 1;
                    AuthTag::Mac(k.mac(prefix, 1))
                }
                None => AuthTag::None,
            },
            AuthMode::Signatures => {
                counts.sign += 1;
                AuthTag::Sig(self.keypair.sign(prefix))
            }
        }
    }

    /// Verify a packet from a fellow replica.
    pub fn verify_from_replica(
        &self,
        from: ReplicaId,
        prefix: &[u8],
        auth: &AuthTag,
        counts: &mut OpCounts,
    ) -> bool {
        if from.0 as usize >= self.n || from == self.me {
            return false;
        }
        match auth {
            AuthTag::Authenticator(a) => {
                counts.mac_verify += 1;
                let input = multicast_mac_input(prefix, counts);
                a.verify_for(
                    self.me.0,
                    &self.replica_keys[from.0 as usize],
                    input.as_bytes(),
                    0,
                )
            }
            AuthTag::Sig(sig) => {
                counts.sig_verify += 1;
                self.replica_pubkeys[from.0 as usize]
                    .verify(prefix, sig)
                    .is_ok()
            }
            _ => false,
        }
    }

    /// Verify a single *borrowed* authenticator entry from peer `from` —
    /// the zero-copy receive path, where the caller extracted its own MAC
    /// from the wire-form authenticator without materializing the vector.
    /// Accepts exactly when [`KeyStore::verify_from_replica`] would accept
    /// an authenticator whose entry for this replica is `mac`.
    pub fn verify_replica_entry(
        &self,
        from: ReplicaId,
        prefix: &[u8],
        mac: Mac64,
        counts: &mut OpCounts,
    ) -> bool {
        if from.0 as usize >= self.n || from == self.me {
            return false;
        }
        counts.mac_verify += 1;
        let input = multicast_mac_input(prefix, counts);
        self.replica_keys[from.0 as usize].verify(input.as_bytes(), 0, mac)
    }

    /// Verify a single borrowed authenticator entry from client `from`
    /// (client request authenticators MAC the full prefix, domain 0).
    /// Accepts exactly when [`KeyStore::verify_from_client`] would.
    pub fn verify_client_entry(
        &self,
        from: ClientId,
        prefix: &[u8],
        mac: Mac64,
        counts: &mut OpCounts,
    ) -> bool {
        match self.client_keys.get(&from) {
            Some(k) => {
                counts.mac_verify += 1;
                k.verify(prefix, 0, mac)
            }
            None => false,
        }
    }

    /// Verify a packet from a client. Fails when no session key is installed
    /// — the §2.3 condition for a restarted replica.
    pub fn verify_from_client(
        &self,
        from: ClientId,
        prefix: &[u8],
        auth: &AuthTag,
        counts: &mut OpCounts,
    ) -> bool {
        match auth {
            AuthTag::Authenticator(a) => match self.client_keys.get(&from) {
                Some(k) => {
                    counts.mac_verify += 1;
                    a.verify_for(self.me.0, k, prefix, 0)
                }
                None => false,
            },
            AuthTag::Sig(sig) => match self.client_pubkeys.get(&from) {
                Some(pk) => {
                    counts.sig_verify += 1;
                    pk.verify(prefix, sig).is_ok()
                }
                None => false,
            },
            _ => false,
        }
    }
}

/// A client-side key set.
pub struct ClientKeys {
    id: ClientId,
    keypair: KeyPair,
    session_keys: Vec<MacKey>,
    replica_pubkeys: Vec<PublicKey>,
}

impl std::fmt::Debug for ClientKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientKeys").field("id", &self.id).finish()
    }
}

impl ClientKeys {
    /// Build keys for a statically configured client `id` in a group of `n`
    /// replicas (the replicas pre-install the matching keys).
    pub fn new(group_seed: u64, id: ClientId, n: usize) -> ClientKeys {
        ClientKeys {
            id,
            keypair: node_keypair(group_seed, None, Some(id)),
            session_keys: (0..n as u32)
                .map(|r| client_session_key(group_seed, id, ReplicaId(r)))
                .collect(),
            replica_pubkeys: (0..n as u32)
                .map(|r| node_keypair(group_seed, Some(ReplicaId(r)), None).public())
                .collect(),
        }
    }

    /// Build keys for a *dynamic* client: its own key pair comes from its
    /// private `identity_seed` (the replicas learn the public half from the
    /// Join), while the replica public keys still come from the group
    /// configuration.
    pub fn new_dynamic(group_seed: u64, identity_seed: u64, id: ClientId, n: usize) -> ClientKeys {
        let mut keys = ClientKeys::new(group_seed, id, n);
        keys.keypair =
            KeyPair::generate(identity_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ group_seed);
        keys
    }

    /// Re-key the MAC session keys under a newly assigned client id (after a
    /// dynamic Join). The signing key pair is preserved — it is what the
    /// replicas recorded in the session at Join time.
    pub fn rekey(&mut self, group_seed: u64, id: ClientId) {
        self.id = id;
        self.session_keys = (0..self.session_keys.len() as u32)
            .map(|r| client_session_key(group_seed, id, ReplicaId(r)))
            .collect();
    }

    /// The client id these keys belong to.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The client's signing key pair.
    pub fn keypair(&self) -> &KeyPair {
        &self.keypair
    }

    /// Raw session key bytes for the NewKey message.
    pub fn session_key_bytes(&self) -> Vec<[u8; 32]> {
        self.session_keys.iter().map(|k| *k.as_bytes()).collect()
    }

    /// Build the authenticator for a request prefix (one MAC per replica).
    pub fn seal_request(&self, mode: AuthMode, prefix: &[u8], counts: &mut OpCounts) -> AuthTag {
        match mode {
            AuthMode::Macs => {
                let entries: Vec<(u32, Mac64)> = self
                    .session_keys
                    .iter()
                    .enumerate()
                    .map(|(i, k)| (i as u32, k.mac(prefix, 0)))
                    .collect();
                counts.mac_gen += entries.len() as u64;
                AuthTag::Authenticator(Authenticator::from_entries(entries))
            }
            AuthMode::Signatures => {
                counts.sign += 1;
                AuthTag::Sig(self.keypair.sign(prefix))
            }
        }
    }

    /// Verify a reply from `replica`.
    pub fn verify_reply(
        &self,
        replica: ReplicaId,
        prefix: &[u8],
        auth: &AuthTag,
        counts: &mut OpCounts,
    ) -> bool {
        match auth {
            AuthTag::Mac(tag) => match self.session_keys.get(replica.0 as usize) {
                Some(k) => {
                    counts.mac_verify += 1;
                    k.verify(prefix, 1, *tag)
                }
                None => false,
            },
            AuthTag::Sig(sig) => match self.replica_pubkeys.get(replica.0 as usize) {
                Some(pk) => {
                    counts.sig_verify += 1;
                    pk.verify(prefix, sig).is_ok()
                }
                None => false,
            },
            // Unauthenticated replies are acceptable only for join replies;
            // the client engine enforces f+1 content matching before acting.
            AuthTag::None => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 42;

    #[test]
    fn pairwise_keys_symmetric() {
        let k_ab = replica_pair_key(SEED, ReplicaId(0), ReplicaId(2));
        let k_ba = replica_pair_key(SEED, ReplicaId(2), ReplicaId(0));
        assert_eq!(k_ab.as_bytes(), k_ba.as_bytes());
        let k_other = replica_pair_key(SEED, ReplicaId(0), ReplicaId(1));
        assert_ne!(k_ab.as_bytes(), k_other.as_bytes());
    }

    #[test]
    fn replica_multicast_mac_verifies() {
        let a = KeyStore::new_replica(SEED, ReplicaId(0), 4, &[]);
        let b = KeyStore::new_replica(SEED, ReplicaId(1), 4, &[]);
        let mut counts = OpCounts::default();
        let auth = a.seal_multicast(AuthMode::Macs, b"prefix", &mut counts);
        assert_eq!(counts.mac_gen, 3);
        assert!(b.verify_from_replica(ReplicaId(0), b"prefix", &auth, &mut counts));
        assert!(!b.verify_from_replica(ReplicaId(0), b"tampered", &auth, &mut counts));
        // Self-verification and out-of-range ids rejected.
        assert!(!a.verify_from_replica(ReplicaId(0), b"prefix", &auth, &mut counts));
        assert!(!b.verify_from_replica(ReplicaId(9), b"prefix", &auth, &mut counts));
    }

    #[test]
    fn authenticator_amortizes_over_the_prefix_digest() {
        // One digest of the (arbitrarily long) prefix, then short MACs:
        // digest_bytes grows with the prefix, mac_gen stays n−1.
        let a = KeyStore::new_replica(SEED, ReplicaId(0), 4, &[]);
        let big = vec![7u8; 4096];
        let mut counts = OpCounts::default();
        a.seal_multicast(AuthMode::Macs, &big, &mut counts);
        assert_eq!(counts.mac_gen, 3);
        assert_eq!(counts.digest_bytes, 4096);
    }

    #[test]
    fn borrowed_entry_verify_matches_authenticator_verify() {
        let a = KeyStore::new_replica(SEED, ReplicaId(0), 4, &[]);
        let b = KeyStore::new_replica(SEED, ReplicaId(1), 4, &[]);
        let mut counts = OpCounts::default();
        let auth = a.seal_multicast(AuthMode::Macs, b"prefix", &mut counts);
        let AuthTag::Authenticator(v) = &auth else {
            panic!("expected authenticator");
        };
        let mine = v.iter().find(|(i, _)| *i == 1).map(|(_, m)| m).unwrap();
        assert!(b.verify_replica_entry(ReplicaId(0), b"prefix", mine, &mut counts));
        assert!(!b.verify_replica_entry(ReplicaId(0), b"tampered", mine, &mut counts));
        assert!(!b.verify_replica_entry(ReplicaId(1), b"prefix", mine, &mut counts));
        assert!(!b.verify_replica_entry(ReplicaId(9), b"prefix", mine, &mut counts));
        // The entry addressed to replica 2 must not verify at replica 1.
        let other = v.iter().find(|(i, _)| *i == 2).map(|(_, m)| m).unwrap();
        assert!(!b.verify_replica_entry(ReplicaId(0), b"prefix", other, &mut counts));
    }

    #[test]
    fn borrowed_client_entry_matches_full_verify() {
        let c = ClientKeys::new(SEED, ClientId(5), 4);
        let r = KeyStore::new_replica(SEED, ReplicaId(2), 4, &[ClientId(5)]);
        let mut counts = OpCounts::default();
        let auth = c.seal_request(AuthMode::Macs, b"req", &mut counts);
        let AuthTag::Authenticator(v) = &auth else {
            panic!("expected authenticator");
        };
        let mine = v.iter().find(|(i, _)| *i == 2).map(|(_, m)| m).unwrap();
        assert!(r.verify_client_entry(ClientId(5), b"req", mine, &mut counts));
        assert!(!r.verify_client_entry(ClientId(5), b"other", mine, &mut counts));
        assert!(!r.verify_client_entry(ClientId(6), b"req", mine, &mut counts));
    }

    #[test]
    fn replica_multicast_sig_verifies() {
        let a = KeyStore::new_replica(SEED, ReplicaId(0), 4, &[]);
        let b = KeyStore::new_replica(SEED, ReplicaId(3), 4, &[]);
        let mut counts = OpCounts::default();
        let auth = a.seal_multicast(AuthMode::Signatures, b"prefix", &mut counts);
        assert_eq!(counts.sign, 1);
        assert!(b.verify_from_replica(ReplicaId(0), b"prefix", &auth, &mut counts));
        assert_eq!(counts.sig_verify, 1);
    }

    #[test]
    fn client_request_roundtrip() {
        let c = ClientKeys::new(SEED, ClientId(5), 4);
        let r = KeyStore::new_replica(SEED, ReplicaId(2), 4, &[ClientId(5)]);
        let mut counts = OpCounts::default();
        let auth = c.seal_request(AuthMode::Macs, b"req", &mut counts);
        assert_eq!(counts.mac_gen, 4);
        assert!(r.verify_from_client(ClientId(5), b"req", &auth, &mut counts));
    }

    #[test]
    fn restarted_replica_lacks_client_keys() {
        let c = ClientKeys::new(SEED, ClientId(5), 4);
        // Restarted: no preinstalled clients.
        let r = KeyStore::new_replica(SEED, ReplicaId(2), 4, &[]);
        let mut counts = OpCounts::default();
        let auth = c.seal_request(AuthMode::Macs, b"req", &mut counts);
        assert!(
            !r.verify_from_client(ClientId(5), b"req", &auth, &mut counts),
            "restarted replica must fail authentication until NewKey arrives (§2.3)"
        );
        // NewKey re-installs the session key.
        let mut r = r;
        r.install_client_key(ClientId(5), c.session_key_bytes()[2]);
        assert!(r.verify_from_client(ClientId(5), b"req", &auth, &mut counts));
    }

    #[test]
    fn reply_mac_roundtrip() {
        let c = ClientKeys::new(SEED, ClientId(5), 4);
        let r = KeyStore::new_replica(SEED, ReplicaId(1), 4, &[ClientId(5)]);
        let mut counts = OpCounts::default();
        let auth = r.seal_to_client(AuthMode::Macs, ClientId(5), b"reply", &mut counts);
        assert!(c.verify_reply(ReplicaId(1), b"reply", &auth, &mut counts));
        assert!(!c.verify_reply(ReplicaId(2), b"reply", &auth, &mut counts));
    }

    #[test]
    fn reply_to_unknown_client_is_unauthenticated() {
        let r = KeyStore::new_replica(SEED, ReplicaId(1), 4, &[]);
        let mut counts = OpCounts::default();
        let auth = r.seal_to_client(AuthMode::Macs, ClientId(9), b"reply", &mut counts);
        assert_eq!(auth, AuthTag::None);
    }

    #[test]
    fn client_sig_requests_verify_via_pubkey() {
        let c = ClientKeys::new(SEED, ClientId(7), 4);
        let mut r = KeyStore::new_replica(SEED, ReplicaId(0), 4, &[]);
        r.install_client_pubkey(ClientId(7), c.keypair().public());
        let mut counts = OpCounts::default();
        let auth = c.seal_request(AuthMode::Signatures, b"req", &mut counts);
        assert!(r.verify_from_client(ClientId(7), b"req", &auth, &mut counts));
        r.remove_client(ClientId(7));
        assert!(!r.verify_from_client(ClientId(7), b"req", &auth, &mut counts));
    }
}
