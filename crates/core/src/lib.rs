//! Sans-io PBFT replica and client engines.
//!
//! This crate implements the Castro–Liskov PBFT protocol as reproduced and
//! extended by Chondros, Kokordelis & Roussopoulos in *On the Practicality of
//! 'Practical' Byzantine Fault Tolerance*:
//!
//! * the normal-case 3-phase agreement (pre-prepare / prepare / commit) with
//!   request batching and a congestion window (§2.1),
//! * the optimizations whose robustness cost the paper measures: MAC
//!   authenticators vs. signatures, big-request handling, tentative
//!   execution, the read-only fast path (§2.1, Table 1),
//! * checkpoints over a Merkle-hashed paged state region and tree-walk state
//!   transfer (§2.1, §3.2),
//! * view changes and crash-restart recovery, including the
//!   authenticator-loss stall of §2.3 and the blind NewKey retransmission
//!   that bounds it,
//! * non-determinism upcalls with validation, including the replay hazard of
//!   §2.5, and
//! * the paper's own contribution: **dynamic client membership** — a
//!   two-phase challenge–response Join, Leave, an id redirection table, and
//!   timestamp-based stale-session cleanup (§3.1), and
//! * [`routing`] — the deterministic key → group map for sharded
//!   multi-group deployments, plus route-aware request submission on the
//!   client ([`Client::bind_shard`] / [`Client::submit_routed`]), and
//! * [`xshard`] — deterministic two-phase commit across groups: the
//!   lock-and-log participant state machine, the replicated coordinator
//!   decision record, and the wire framing that carries both inside
//!   ordinary ordered operations.
//!
//! The engines are *sans-io*: a [`Replica`] or [`Client`] consumes packets
//! and timer firings and returns [`Output`]s (sends, timer arms, deliveries)
//! plus an [`OpCounts`] record of the real work performed. Any transport can
//! drive them; the workspace drives them with `simnet`, which converts
//! `OpCounts` into virtual CPU time through a calibrated cost model.

#![warn(missing_docs)]

pub mod app;
pub mod client;
pub mod config;
pub mod engine;
pub mod keys;
pub mod linear;
pub mod log;
pub mod membership;
pub mod messages;
pub mod output;
pub mod replica;
pub mod routing;
pub mod session;
pub mod types;
pub mod wire;
pub mod xshard;

pub use app::{App, ExecMetrics, NonDet, NullApp};
pub use client::{Client, ClientEvent};
pub use config::{AuthMode, PbftConfig};
pub use engine::ConsensusEngine;
pub use keys::KeyStore;
pub use linear::LinearReplica;
pub use messages::{Envelope, Message, Operation, RequestMsg};
pub use output::{HandleResult, NetTarget, OpCounts, Output, PacketBuf, TimerKind};
pub use replica::Replica;
pub use routing::{RouteError, ShardMap};
pub use session::{SessionCtx, SessionError, SessionStore};
pub use types::{ClientId, ReplicaId, SeqNum, View};
pub use xshard::{SubOp, TxCoordinator, TxId, XMsg, XReply, XShardApp, XShardLeg, XShardOp};
