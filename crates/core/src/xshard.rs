//! Cross-shard atomic commit: deterministic two-phase commit over PBFT
//! groups.
//!
//! The sharded deployment of [`crate::routing`] rejects any operation whose
//! keys span groups ([`crate::routing::RouteError::CrossShard`]) — each PBFT
//! group totally orders only its own partition. This module supplies the
//! missing coordination layer: a presumed-abort two-phase commit in which
//! **every protocol step is itself an ordered operation of a PBFT group**,
//! so both the participant lock/stage tables and the coordinator's decision
//! record are replicated and f-tolerant. No new message paths are added to
//! the replicas; 2PC rides entirely inside `Operation::App` request bodies.
//!
//! Roles and flow (the coordinator group is the shard owning the
//! transaction's *first* key):
//!
//! ```text
//! client/initiator      coordinator group         participant groups
//!       │  Prepare{txid, sub-ops} ──────────────────────►│ (ordered op:
//!       │◄─────────────── PrepareOk / PrepareFail ───────│  lock + stage)
//!       │  Decide{txid, commit?} ──►│ (ordered op:        │
//!       │◄──── DecisionLogged ──────│  log the verdict)   │
//!       │  Commit{txid} / Abort{txid} ───────────────────►│ (ordered op:
//!       │◄─────────────── Committed / Aborted ────────────│  apply or drop)
//! ```
//!
//! * **Lock-and-log participants.** A `Prepare` locks the named keys and
//!   stages the sub-operations without touching application state; a
//!   conflicting lock makes the participant vote `PrepareFail` immediately
//!   (no waiting — the no-wait policy cannot deadlock). Only a later
//!   `Commit` executes the staged sub-ops against the application, in one
//!   ordered batch; `Abort` discards them. Committed state therefore never
//!   contains half of a transaction.
//! * **Replicated coordinator.** The initiator may only send
//!   `Commit`/`Abort` after the coordinator group has ordered and
//!   acknowledged a `Decide` record. A crashed initiator leaves at worst a
//!   logged decision (recoverable via [`XMsg::QueryDecision`]) or no
//!   decision at all — and no decision means no participant ever commits
//!   (presumed abort).
//! * **Timeout aborts.** A participant shard that cannot answer a `Prepare`
//!   (crashed, partitioned, or Byzantine beyond its group's `f`) makes the
//!   initiator decide *abort* after a timeout. The unreachable shard has
//!   staged nothing or will receive the `Abort` when it heals; it never
//!   half-applies.
//!
//! [`XShardApp`] is the app-side implementation: it wraps any [`App`] and
//! intercepts operations carrying the [`XSHARD_MAGIC`] frame; every other
//! operation passes through byte-identical, so single-shard traffic keeps
//! the exact fast path it had before this module existed (a pinned
//! regression test in the harness holds that equality).
//!
//! ## Durability: the tables live in the replicated state region
//!
//! Every table the wrapper keeps — the lock table, the staged sub-ops, the
//! applied/aborted sets, the coordinator decision log and the GC floors —
//! is mirrored write-through into a dedicated section of the replica's
//! [`pbft_state::PagedState`] region (see [`xshard_section`]): the
//! in-flight tables as a [`pbft_state::BlobCell`] image rewritten per
//! mutation, the per-transaction completion records as a fixed-slot
//! [`pbft_state::SlotRing`]. The section is therefore Merkle-covered,
//! carried by checkpoint snapshots and certificates, and installed page by
//! page during state transfer like any other state. Paths that *skip*
//! execution — a crash-restart over a preserved disk, or a
//! checkpoint-install state transfer that jumps a lagging replica over a
//! transaction's prepare — reconstruct the tables from the section
//! ([`App::on_state_installed`] reloads them) instead of diverging, which
//! is what makes replica repair mid-transaction safe.
//!
//! ## Bounded retention: the stability-watermark GC
//!
//! Completion records (applied / aborted / decision facts) are retained in
//! the ring's arrival order and bounded by its capacity; once full, every
//! new record evicts the oldest and advances a per-initiator **GC floor**
//! (the stability watermark, keyed by the [`TxId`] stripe — the initiator
//! index in the high bits). The floor is a watermark, not a tombstone:
//! eviction follows completion order, so a still-retained record may sit
//! below its stripe's floor, and every handler consults the tables
//! *first* — retained records keep answering exactly (e.g. the idempotent
//! `PrepareOk` for an applied transaction). Only a transaction whose
//! record was actually collected falls through to the watermark, which
//! answers deterministically without re-recording:
//! `Prepare`/`Commit`/`Abort` answer `Aborted` (presumed abort, and
//! nothing is staged or locked), an `AtomicBatch` answers `Committed`
//! without re-executing (an ordered batch always committed the first
//! time), and the queries answer "no record". Every replica of a group
//! evicts at the same ordered operation, so the floors — like the tables —
//! are bit-identical across the group.
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! use pbft_core::app::{App, NonDet, NullApp};
//! use pbft_core::replica::LIB_REGION_PAGES;
//! use pbft_core::xshard::{SubOp, XMsg, XReply, XShardApp};
//! use pbft_core::ClientId;
//!
//! let state = Rc::new(RefCell::new(pbft_state::PagedState::new(
//!     LIB_REGION_PAGES as usize + 1,
//! )));
//! let mut app = XShardApp::mount(Box::new(NullApp::new(8)), state);
//! let nd = NonDet::default();
//! let prepare = XMsg::Prepare {
//!     txid: 7,
//!     ops: vec![SubOp { keys: vec![b"acct-a".to_vec()], op: vec![1, 2, 3] }],
//! };
//! let (reply, _) = app.execute(ClientId(1), &prepare.encode(), &nd, false);
//! assert_eq!(XReply::decode(&reply), Some(XReply::PrepareOk { txid: 7 }));
//! // Nothing is applied until the commit arrives…
//! assert!(!app.is_applied(7));
//! let (reply, _) = app.execute(ClientId(1), &XMsg::Commit { txid: 7 }.encode(), &nd, false);
//! assert!(matches!(XReply::decode(&reply), Some(XReply::Committed { txid: 7, .. })));
//! assert!(app.is_applied(7));
//! ```

use std::collections::{BTreeMap, BTreeSet};

use pbft_state::{BlobCell, Section, SlotRing, PAGE_SIZE};

use crate::app::{App, ExecMetrics, NonDet, StateHandle};
use crate::routing::{RouteError, ShardMap};
use crate::session::SessionCtx;
use crate::types::ClientId;
use crate::wire::{Dec, Enc};

/// Globally unique transaction identifier (assigned by the initiator;
/// harness initiators stripe their index into the high bits).
pub type TxId = u64;

/// Frame prefix reserved for cross-shard protocol operations and replies.
///
/// Application operations beginning with these four bytes would be
/// intercepted by [`XShardApp`]; none of the repo's op encodings can emit
/// them (SQL is UTF-8 text, `VoteOp` tags are 1–6, keyed null ops start
/// with a small big-endian counter), and new app encodings must keep
/// avoiding them.
pub const XSHARD_MAGIC: [u8; 4] = [0xA7, b'X', b'S', 0x01];

/// One shard-local piece of a cross-shard transaction: the shard keys it
/// locks plus the application operation to execute at commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubOp {
    /// Shard keys the sub-operation touches (all must route to one group).
    pub keys: Vec<Vec<u8>>,
    /// The encoded application operation, executed only on `Commit`.
    pub op: Vec<u8>,
}

/// The per-shard slice of a routed transaction: which group, and the
/// sub-operations it will be asked to prepare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XShardLeg {
    /// The participant group.
    pub shard: u32,
    /// The sub-operations homed on that group, in submission order.
    pub ops: Vec<SubOp>,
}

/// A cross-shard transaction after routing: its id, its per-shard sub-op
/// legs, and the coordinator group (the shard owning the first key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XShardOp {
    /// Transaction id.
    pub txid: TxId,
    /// Per-shard legs, ordered by first appearance in the sub-op list.
    pub legs: Vec<XShardLeg>,
    /// The coordinator group: owner of the transaction's first key.
    pub coordinator: u32,
}

impl XShardOp {
    /// Route `sub_ops` through `map`, grouping them into per-shard legs.
    ///
    /// Each individual sub-op must be single-shard (its keys must agree);
    /// a sub-op whose own keys span groups is a routing error — split it
    /// into per-shard sub-ops instead.
    ///
    /// # Errors
    /// [`RouteError::NoKeys`] if the transaction (or any sub-op) names no
    /// key; [`RouteError::CrossShard`] if one sub-op's keys span groups.
    pub fn route(txid: TxId, sub_ops: Vec<SubOp>, map: &ShardMap) -> Result<XShardOp, RouteError> {
        if sub_ops.is_empty() {
            return Err(RouteError::NoKeys);
        }
        let mut legs: Vec<XShardLeg> = Vec::new();
        for sub in sub_ops {
            let shard = map.route(&sub.keys)?;
            match legs.iter_mut().find(|l| l.shard == shard) {
                Some(leg) => leg.ops.push(sub),
                None => legs.push(XShardLeg {
                    shard,
                    ops: vec![sub],
                }),
            }
        }
        let coordinator = legs[0].shard;
        Ok(XShardOp {
            txid,
            legs,
            coordinator,
        })
    }

    /// Does the whole transaction land on a single group? Single-leg
    /// transactions skip 2PC entirely (the harness submits them as one
    /// ordered operation).
    pub fn is_single_shard(&self) -> bool {
        self.legs.len() == 1
    }
}

/// A cross-shard protocol operation, carried as an ordered `Operation::App`
/// body framed with [`XSHARD_MAGIC`].
// `Reshard` carries a full `ShardMap` by value: the map is `Copy` by
// contract (shared through `Cell`s) and short-lived on the wire, so the
// variant-size skew is accepted rather than boxed away.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XMsg {
    /// Phase one: lock the sub-ops' keys and stage them (vote request).
    Prepare {
        /// Transaction id.
        txid: TxId,
        /// The sub-operations homed on the receiving group.
        ops: Vec<SubOp>,
    },
    /// Coordinator-side decision record: ordered by the coordinator group
    /// before any `Commit`/`Abort` is sent (the replicated commit point).
    Decide {
        /// Transaction id.
        txid: TxId,
        /// The verdict being logged.
        commit: bool,
    },
    /// Phase two, commit path: execute the staged sub-ops.
    Commit {
        /// Transaction id.
        txid: TxId,
    },
    /// Phase two, abort path: discard the staged sub-ops.
    Abort {
        /// Transaction id.
        txid: TxId,
    },
    /// Read-only: what decision, if any, did this (coordinator) group log?
    QueryDecision {
        /// Transaction id.
        txid: TxId,
    },
    /// Read-only: did this group apply the transaction? (Atomicity audits.)
    QueryApplied {
        /// Transaction id.
        txid: TxId,
    },
    /// Single-group transaction: execute all sub-ops in one ordered batch
    /// (the collapsed 1-participant 2PC — no locks, no second phase).
    AtomicBatch {
        /// Transaction id.
        txid: TxId,
        /// The sub-operations, executed back-to-back.
        ops: Vec<SubOp>,
    },
    /// Reconfiguration: install a newer [`ShardMap`] epoch on this group
    /// (ordered like every other op, so all replicas flip together; older
    /// or equal epochs are idempotent no-ops). After installing, the group
    /// answers [`XReply::WrongEpoch`] for keys it no longer owns.
    Reshard {
        /// Transaction id (admin ops ride the same reply-matching rails).
        txid: TxId,
        /// The next-epoch map.
        map: ShardMap,
    },
    /// Key-range hand-off: write the exported byte chunks of a moved hash
    /// span into this (target) group's region. Ordered, idempotent by
    /// `txid` (a duplicate install acknowledges without rewriting).
    RangeInstall {
        /// Transaction id.
        txid: TxId,
        /// Raw region writes: `(offset, bytes)` pairs from the source
        /// group's verified range export.
        chunks: Vec<(u64, Vec<u8>)>,
    },
    /// Epoch-checked single-group operation: execute `op` on the inner
    /// application iff every named key is owned by this group under its
    /// installed map; otherwise answer [`XReply::WrongEpoch`]. The success
    /// reply is the inner application's, unframed — this is the framed
    /// variant of the pass-through fast path for elastic deployments.
    KeyedOp {
        /// Transaction id (echoed only in the `WrongEpoch` rejection).
        txid: TxId,
        /// The shard keys the operation claims to touch.
        keys: Vec<Vec<u8>>,
        /// The encoded inner application operation.
        op: Vec<u8>,
    },
}

const TAG_PREPARE: u8 = 1;
const TAG_DECIDE: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_QUERY_DECISION: u8 = 5;
const TAG_QUERY_APPLIED: u8 = 6;
const TAG_ATOMIC_BATCH: u8 = 7;
const TAG_RESHARD: u8 = 8;
const TAG_RANGE_INSTALL: u8 = 9;
const TAG_KEYED_OP: u8 = 10;

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
    out.extend_from_slice(b);
}

fn get_bytes(buf: &[u8], at: &mut usize) -> Option<Vec<u8>> {
    let len = u32::from_be_bytes(buf.get(*at..*at + 4)?.try_into().ok()?) as usize;
    *at += 4;
    let b = buf.get(*at..*at + len)?.to_vec();
    *at += len;
    Some(b)
}

fn put_sub_ops(out: &mut Vec<u8>, ops: &[SubOp]) {
    // The u16 counts are a wire invariant, not a silent cap: truncating
    // here would make a participant stage (and later apply) a *subset* of
    // the transaction — exactly the partial application 2PC exists to
    // prevent — so oversized transactions fail loudly at the initiator.
    assert!(
        ops.len() <= u16::MAX as usize,
        "transaction exceeds {} sub-ops",
        u16::MAX
    );
    out.extend_from_slice(&(ops.len() as u16).to_be_bytes());
    for sub in ops {
        assert!(
            sub.keys.len() <= u16::MAX as usize,
            "sub-op exceeds {} keys",
            u16::MAX
        );
        out.extend_from_slice(&(sub.keys.len() as u16).to_be_bytes());
        for k in &sub.keys {
            put_bytes(out, k);
        }
        put_bytes(out, &sub.op);
    }
}

/// Decode a [`XShardApp`] in-flight table image (the inverse of
/// `XShardApp::tables_image`).
#[allow(clippy::type_complexity)]
fn decode_tables_image(
    image: &[u8],
) -> Result<
    (
        BTreeMap<Vec<u8>, TxId>,
        BTreeMap<TxId, Vec<SubOp>>,
        BTreeMap<u64, TxId>,
        Option<(u32, ShardMap)>,
    ),
    crate::wire::WireError,
> {
    let mut d = Dec::new(image);
    let mut locks = BTreeMap::new();
    for _ in 0..d.u32()? {
        let key = d.bytes()?;
        let txid = d.u64()?;
        locks.insert(key, txid);
    }
    let mut staged = BTreeMap::new();
    for _ in 0..d.u32()? {
        let txid = d.u64()?;
        let encoded = d.bytes()?;
        let ops = get_sub_ops(&encoded, &mut 0).ok_or(crate::wire::WireError::Truncated)?;
        staged.insert(txid, ops);
    }
    let mut floors = BTreeMap::new();
    for _ in 0..d.u32()? {
        let stripe = d.u64()?;
        let floor = d.u64()?;
        floors.insert(stripe, floor);
    }
    let identity = if d.boolean()? {
        let group = d.u32()?;
        let map = ShardMap::decode(&d.bytes()?)?;
        Some((group, map))
    } else {
        None
    };
    Ok((locks, staged, floors, identity))
}

fn get_sub_ops(buf: &[u8], at: &mut usize) -> Option<Vec<SubOp>> {
    let n = u16::from_be_bytes(buf.get(*at..*at + 2)?.try_into().ok()?) as usize;
    *at += 2;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let nk = u16::from_be_bytes(buf.get(*at..*at + 2)?.try_into().ok()?) as usize;
        *at += 2;
        let mut keys = Vec::with_capacity(nk);
        for _ in 0..nk {
            keys.push(get_bytes(buf, at)?);
        }
        let op = get_bytes(buf, at)?;
        ops.push(SubOp { keys, op });
    }
    Some(ops)
}

impl XMsg {
    /// Is this operation safe for the PBFT read-only fast path?
    pub fn is_read_only(&self) -> bool {
        matches!(self, XMsg::QueryDecision { .. } | XMsg::QueryApplied { .. })
    }

    /// The transaction this message belongs to.
    pub fn txid(&self) -> TxId {
        match self {
            XMsg::Prepare { txid, .. }
            | XMsg::Decide { txid, .. }
            | XMsg::Commit { txid }
            | XMsg::Abort { txid }
            | XMsg::QueryDecision { txid }
            | XMsg::QueryApplied { txid }
            | XMsg::AtomicBatch { txid, .. }
            | XMsg::Reshard { txid, .. }
            | XMsg::RangeInstall { txid, .. }
            | XMsg::KeyedOp { txid, .. } => *txid,
        }
    }

    /// Encode as an `Operation::App` body ([`XSHARD_MAGIC`]-framed).
    ///
    /// # Panics
    /// Panics if a sub-op list or key list exceeds the `u16` wire counts —
    /// truncation would silently drop part of an atomic transaction.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = XSHARD_MAGIC.to_vec();
        let (tag, txid) = match self {
            XMsg::Prepare { txid, .. } => (TAG_PREPARE, txid),
            XMsg::Decide { txid, .. } => (TAG_DECIDE, txid),
            XMsg::Commit { txid } => (TAG_COMMIT, txid),
            XMsg::Abort { txid } => (TAG_ABORT, txid),
            XMsg::QueryDecision { txid } => (TAG_QUERY_DECISION, txid),
            XMsg::QueryApplied { txid } => (TAG_QUERY_APPLIED, txid),
            XMsg::AtomicBatch { txid, .. } => (TAG_ATOMIC_BATCH, txid),
            XMsg::Reshard { txid, .. } => (TAG_RESHARD, txid),
            XMsg::RangeInstall { txid, .. } => (TAG_RANGE_INSTALL, txid),
            XMsg::KeyedOp { txid, .. } => (TAG_KEYED_OP, txid),
        };
        out.push(tag);
        out.extend_from_slice(&txid.to_be_bytes());
        match self {
            XMsg::Prepare { ops, .. } | XMsg::AtomicBatch { ops, .. } => put_sub_ops(&mut out, ops),
            XMsg::Decide { commit, .. } => out.push(u8::from(*commit)),
            XMsg::Reshard { map, .. } => put_bytes(&mut out, &map.encode()),
            XMsg::RangeInstall { chunks, .. } => {
                assert!(
                    chunks.len() <= u16::MAX as usize,
                    "range install exceeds {} chunks",
                    u16::MAX
                );
                out.extend_from_slice(&(chunks.len() as u16).to_be_bytes());
                for (off, bytes) in chunks {
                    out.extend_from_slice(&off.to_be_bytes());
                    put_bytes(&mut out, bytes);
                }
            }
            XMsg::KeyedOp { keys, op, .. } => {
                assert!(
                    keys.len() <= u16::MAX as usize,
                    "keyed op exceeds {} keys",
                    u16::MAX
                );
                out.extend_from_slice(&(keys.len() as u16).to_be_bytes());
                for k in keys {
                    put_bytes(&mut out, k);
                }
                put_bytes(&mut out, op);
            }
            _ => {}
        }
        out
    }

    /// Decode an operation body. `None` for anything that is not a
    /// well-formed xshard frame — plain application operations fall through
    /// untouched (the [`XShardApp`] pass-through path).
    pub fn decode(body: &[u8]) -> Option<XMsg> {
        let rest = body.strip_prefix(&XSHARD_MAGIC[..])?;
        let (&tag, rest) = rest.split_first()?;
        let txid = TxId::from_be_bytes(rest.get(..8)?.try_into().ok()?);
        let mut at = 8;
        let msg = match tag {
            TAG_PREPARE => XMsg::Prepare {
                txid,
                ops: get_sub_ops(rest, &mut at)?,
            },
            TAG_DECIDE => XMsg::Decide {
                txid,
                commit: *rest.get(at)? != 0,
            },
            TAG_COMMIT => XMsg::Commit { txid },
            TAG_ABORT => XMsg::Abort { txid },
            TAG_QUERY_DECISION => XMsg::QueryDecision { txid },
            TAG_QUERY_APPLIED => XMsg::QueryApplied { txid },
            TAG_ATOMIC_BATCH => XMsg::AtomicBatch {
                txid,
                ops: get_sub_ops(rest, &mut at)?,
            },
            TAG_RESHARD => XMsg::Reshard {
                txid,
                map: ShardMap::decode(&get_bytes(rest, &mut at)?).ok()?,
            },
            TAG_RANGE_INSTALL => {
                let n = u16::from_be_bytes(rest.get(at..at + 2)?.try_into().ok()?) as usize;
                at += 2;
                let mut chunks = Vec::with_capacity(n);
                for _ in 0..n {
                    let off = u64::from_be_bytes(rest.get(at..at + 8)?.try_into().ok()?);
                    at += 8;
                    chunks.push((off, get_bytes(rest, &mut at)?));
                }
                XMsg::RangeInstall { txid, chunks }
            }
            TAG_KEYED_OP => {
                let n = u16::from_be_bytes(rest.get(at..at + 2)?.try_into().ok()?) as usize;
                at += 2;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(get_bytes(rest, &mut at)?);
                }
                XMsg::KeyedOp {
                    txid,
                    keys,
                    op: get_bytes(rest, &mut at)?,
                }
            }
            _ => return None,
        };
        Some(msg)
    }
}

/// A participant/coordinator reply, framed with [`XSHARD_MAGIC`] so the
/// initiator can tell protocol replies from plain application replies.
// `WrongEpoch` delivers the rejecting group's full (`Copy`) `ShardMap` —
// that carried map IS the client-recovery channel, so the variant-size
// skew is accepted rather than boxed away.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XReply {
    /// Vote yes: keys locked, sub-ops staged ("PrepareOk").
    PrepareOk {
        /// Transaction id.
        txid: TxId,
    },
    /// Vote no: a named key is already locked by another transaction.
    PrepareFail {
        /// Transaction id.
        txid: TxId,
        /// The transaction currently holding the contested lock.
        holder: TxId,
    },
    /// Staged sub-ops executed; the inner application replies, in order.
    Committed {
        /// Transaction id.
        txid: TxId,
        /// One application reply per staged sub-op.
        replies: Vec<Vec<u8>>,
    },
    /// Staged sub-ops discarded (idempotent: also the reply for an abort of
    /// a transaction this group never prepared — presumed abort).
    Aborted {
        /// Transaction id.
        txid: TxId,
    },
    /// The coordinator group ordered the decision record.
    DecisionLogged {
        /// Transaction id.
        txid: TxId,
        /// The verdict actually on record (first writer wins).
        commit: bool,
    },
    /// Answer to [`XMsg::QueryDecision`].
    Decision {
        /// Transaction id.
        txid: TxId,
        /// `None` while no decision is on record.
        commit: Option<bool>,
    },
    /// Answer to [`XMsg::QueryApplied`].
    Applied {
        /// Transaction id.
        txid: TxId,
        /// Whether this group's committed state reflects the transaction.
        applied: bool,
    },
    /// The operation named a key this group does not own under its
    /// installed [`ShardMap`]: the sender routed with a stale epoch. The
    /// reply carries the group's (newer) map so the sender can re-route
    /// and retry without any out-of-band discovery.
    WrongEpoch {
        /// Transaction id.
        txid: TxId,
        /// The rejecting group's installed map.
        map: ShardMap,
    },
    /// Acknowledgement of an ordered [`XMsg::Reshard`]: the epoch actually
    /// installed (unchanged if the carried map was not newer).
    Resharded {
        /// Transaction id.
        txid: TxId,
        /// The group's map epoch after the operation.
        epoch: u64,
    },
}

const RTAG_PREPARE_OK: u8 = 1;
const RTAG_PREPARE_FAIL: u8 = 2;
const RTAG_COMMITTED: u8 = 3;
const RTAG_ABORTED: u8 = 4;
const RTAG_DECISION_LOGGED: u8 = 5;
const RTAG_DECISION: u8 = 6;
const RTAG_APPLIED: u8 = 7;
const RTAG_WRONG_EPOCH: u8 = 8;
const RTAG_RESHARDED: u8 = 9;

impl XReply {
    /// The transaction this reply belongs to.
    pub fn txid(&self) -> TxId {
        match self {
            XReply::PrepareOk { txid }
            | XReply::PrepareFail { txid, .. }
            | XReply::Committed { txid, .. }
            | XReply::Aborted { txid }
            | XReply::DecisionLogged { txid, .. }
            | XReply::Decision { txid, .. }
            | XReply::Applied { txid, .. }
            | XReply::WrongEpoch { txid, .. }
            | XReply::Resharded { txid, .. } => *txid,
        }
    }

    /// Encode as a reply body.
    ///
    /// # Panics
    /// Panics if a `Committed` reply carries more than `u16::MAX` sub-op
    /// replies (the wire count would truncate).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = XSHARD_MAGIC.to_vec();
        let (tag, txid) = match self {
            XReply::PrepareOk { txid } => (RTAG_PREPARE_OK, txid),
            XReply::PrepareFail { txid, .. } => (RTAG_PREPARE_FAIL, txid),
            XReply::Committed { txid, .. } => (RTAG_COMMITTED, txid),
            XReply::Aborted { txid } => (RTAG_ABORTED, txid),
            XReply::DecisionLogged { txid, .. } => (RTAG_DECISION_LOGGED, txid),
            XReply::Decision { txid, .. } => (RTAG_DECISION, txid),
            XReply::Applied { txid, .. } => (RTAG_APPLIED, txid),
            XReply::WrongEpoch { txid, .. } => (RTAG_WRONG_EPOCH, txid),
            XReply::Resharded { txid, .. } => (RTAG_RESHARDED, txid),
        };
        out.push(tag);
        out.extend_from_slice(&txid.to_be_bytes());
        match self {
            XReply::PrepareFail { holder, .. } => out.extend_from_slice(&holder.to_be_bytes()),
            XReply::Committed { replies, .. } => {
                assert!(
                    replies.len() <= u16::MAX as usize,
                    "reply count exceeds {}",
                    u16::MAX
                );
                out.extend_from_slice(&(replies.len() as u16).to_be_bytes());
                for r in replies {
                    put_bytes(&mut out, r);
                }
            }
            XReply::DecisionLogged { commit, .. } => out.push(u8::from(*commit)),
            XReply::Decision { commit, .. } => out.push(match commit {
                None => 2,
                Some(false) => 0,
                Some(true) => 1,
            }),
            XReply::Applied { applied, .. } => out.push(u8::from(*applied)),
            XReply::WrongEpoch { map, .. } => put_bytes(&mut out, &map.encode()),
            XReply::Resharded { epoch, .. } => out.extend_from_slice(&epoch.to_be_bytes()),
            _ => {}
        }
        out
    }

    /// Decode a reply body; `None` for plain application replies.
    pub fn decode(body: &[u8]) -> Option<XReply> {
        let rest = body.strip_prefix(&XSHARD_MAGIC[..])?;
        let (&tag, rest) = rest.split_first()?;
        let txid = TxId::from_be_bytes(rest.get(..8)?.try_into().ok()?);
        let mut at = 8;
        let reply = match tag {
            RTAG_PREPARE_OK => XReply::PrepareOk { txid },
            RTAG_PREPARE_FAIL => XReply::PrepareFail {
                txid,
                holder: TxId::from_be_bytes(rest.get(at..at + 8)?.try_into().ok()?),
            },
            RTAG_COMMITTED => {
                let n = u16::from_be_bytes(rest.get(at..at + 2)?.try_into().ok()?) as usize;
                at += 2;
                let mut replies = Vec::with_capacity(n);
                for _ in 0..n {
                    replies.push(get_bytes(rest, &mut at)?);
                }
                XReply::Committed { txid, replies }
            }
            RTAG_ABORTED => XReply::Aborted { txid },
            RTAG_DECISION_LOGGED => XReply::DecisionLogged {
                txid,
                commit: *rest.get(at)? != 0,
            },
            RTAG_DECISION => XReply::Decision {
                txid,
                commit: match *rest.get(at)? {
                    0 => Some(false),
                    1 => Some(true),
                    _ => None,
                },
            },
            RTAG_APPLIED => XReply::Applied {
                txid,
                applied: *rest.get(at)? != 0,
            },
            RTAG_WRONG_EPOCH => XReply::WrongEpoch {
                txid,
                map: ShardMap::decode(&get_bytes(rest, &mut at)?).ok()?,
            },
            RTAG_RESHARDED => XReply::Resharded {
                txid,
                epoch: u64::from_be_bytes(rest.get(at..at + 8)?.try_into().ok()?),
            },
            _ => return None,
        };
        Some(reply)
    }
}

/// Pure coordinator vote bookkeeping for one transaction: feed it the
/// participant set, record votes, read the verdict.
///
/// The *durable* coordinator state is the ordered [`XMsg::Decide`] record in
/// the coordinator group's log; this value is only the initiator-side tally
/// that determines what verdict to submit there.
///
/// ```
/// use pbft_core::xshard::TxCoordinator;
///
/// let mut c = TxCoordinator::new([0u32, 2u32]);
/// assert_eq!(c.record_vote(0, true), None); // still waiting on shard 2
/// assert_eq!(c.record_vote(2, true), Some(true));
/// assert_eq!(c.verdict(), Some(true));
///
/// let mut c = TxCoordinator::new([0u32, 2u32]);
/// // A single no-vote decides abort without waiting for the rest.
/// assert_eq!(c.record_vote(2, false), Some(false));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxCoordinator {
    pending: BTreeSet<u32>,
    verdict: Option<bool>,
}

impl TxCoordinator {
    /// Start a tally over the participant shards.
    pub fn new(participants: impl IntoIterator<Item = u32>) -> TxCoordinator {
        TxCoordinator {
            pending: participants.into_iter().collect(),
            verdict: None,
        }
    }

    /// Shards whose votes are still outstanding.
    pub fn pending(&self) -> &BTreeSet<u32> {
        &self.pending
    }

    /// Record a vote. Returns the verdict the moment it is determined:
    /// `Some(false)` on the first no-vote, `Some(true)` when every
    /// participant voted yes. Later votes cannot change a verdict.
    pub fn record_vote(&mut self, shard: u32, prepared: bool) -> Option<bool> {
        self.pending.remove(&shard);
        if self.verdict.is_some() {
            return self.verdict;
        }
        if !prepared {
            self.verdict = Some(false);
        } else if self.pending.is_empty() {
            self.verdict = Some(true);
        }
        self.verdict
    }

    /// Force the abort verdict (prepare timeout). Idempotent; cannot
    /// override an already-determined commit.
    pub fn timeout(&mut self) -> bool {
        if self.verdict.is_none() {
            self.verdict = Some(false);
        }
        self.verdict == Some(false)
    }

    /// The verdict, if determined.
    pub fn verdict(&self) -> Option<bool> {
        self.verdict
    }
}

/// Pages of the xshard region section holding the completion-record ring
/// (the [`pbft_state::SlotRing`] of applied/aborted/decision facts).
pub const XSHARD_RING_PAGES: u64 = 32;

/// Pages of the xshard region section holding the in-flight table cell
/// (the [`pbft_state::BlobCell`] image of locks, staged sub-ops and GC
/// floors).
pub const XSHARD_CELL_PAGES: u64 = 24;

/// Total pages of the xshard section inside the library partition of the
/// replica state region (see [`crate::replica::LIB_REGION_PAGES`]).
pub const XSHARD_PAGES: u64 = XSHARD_RING_PAGES + XSHARD_CELL_PAGES;

/// Bytes of one completion record slot: txid (8) + kind tag (1) + padding.
const XSHARD_SLOT_LEN: usize = 16;

/// Ceiling of the cell headroom a prepare must leave free (see
/// [`XShardApp`]): room for the floor entries (16 bytes per initiator
/// stripe) that the non-voting paths may mint on ring eviction after the
/// prepare was accepted. 4096 bytes covers 256 stripes — far beyond any
/// deployment's initiator count. Small custom cells reserve an eighth of
/// their capacity (at least four entries) instead.
const XSHARD_FLOOR_HEADROOM: usize = 4096;

/// Bit position of the initiator stripe inside a [`TxId`] (initiators put
/// their index in the high bits; see [`TxId`]). GC floors are kept per
/// stripe so eviction of one initiator's old transactions never shadows a
/// fresh transaction of another.
pub const TX_STRIPE_SHIFT: u32 = 40;

const XSHARD_RING_MAGIC: u64 = 0x5853_5249_4E47_0001; // "XSRING" + version
const XSHARD_CELL_MAGIC: u64 = 0x5853_4345_4C4C_0001; // "XSCELL" + version

/// Completion-record kind tags (ring slot byte 8).
const REC_APPLIED: u8 = 1;
const REC_ABORTED: u8 = 2;
const REC_DECIDED_COMMIT: u8 = 3;
const REC_DECIDED_ABORT: u8 = 4;

/// The xshard section of the standard replica region layout: immediately
/// after the membership and session pages, [`XSHARD_PAGES`] long. The ring
/// occupies the first [`XSHARD_RING_PAGES`], the cell the rest.
/// [`XShardApp::mount`] wires this geometry; deployments with a custom
/// region layout use [`XShardApp::with_sections`] instead.
pub fn xshard_section() -> Section {
    let page = PAGE_SIZE as u64;
    Section {
        base: (crate::replica::MEMBERSHIP_PAGES + crate::replica::SESSION_PAGES) * page,
        len: XSHARD_PAGES * page,
    }
}

/// The ring and cell sub-sections of the standard [`xshard_section`]
/// geometry.
fn standard_sections() -> (Section, Section) {
    let page = PAGE_SIZE as u64;
    let sec = xshard_section();
    (
        Section {
            base: sec.base,
            len: XSHARD_RING_PAGES * page,
        },
        Section {
            base: sec.base + XSHARD_RING_PAGES * page,
            len: XSHARD_CELL_PAGES * page,
        },
    )
}

/// Read the GC floors straight out of a replica's region (standard layout),
/// without an [`XShardApp`] instance. The harness atomicity audit uses this
/// to recognize transactions whose completion records the stability
/// watermark already collected — a quorum-certified `QueryApplied` for
/// those deterministically answers "not applied" whatever the original
/// outcome was, so they are no longer auditable at the application level.
/// An empty or never-written section yields no floors.
pub fn read_gc_floors(state: &pbft_state::PagedState) -> BTreeMap<u64, TxId> {
    let (_, cell) = standard_sections();
    let cell = BlobCell::new(cell, XSHARD_CELL_MAGIC);
    match cell.load(state) {
        Ok(Some(image)) => decode_tables_image(&image)
            .map(|(_, _, floors, _)| floors)
            .unwrap_or_default(),
        _ => BTreeMap::new(),
    }
}

/// The lock-and-log participant (and decision-log coordinator) application
/// wrapper.
///
/// Wraps any [`App`]; operations framed with [`XSHARD_MAGIC`] drive the
/// participant state machine, everything else passes through to the inner
/// application byte-identically. All bookkeeping transitions are pure
/// functions of the ordered operation history, so every replica of a group
/// holds identical tables and produces bit-identical replies.
///
/// The tables are mirrored write-through into the wrapper's region section
/// (module docs) and reloaded whenever the engine installs region content
/// from elsewhere — state transfer, tentative-execution rollback, or a
/// restart over a preserved disk ([`XShardApp::mount`] loads at
/// construction). In-memory they are only a cache of the section.
///
/// Memory and region use are bounded: staged payloads live only between
/// prepare and decision (an oversized in-flight table makes a prepare vote
/// no deterministically), and completion records are retained up to the
/// ring capacity ([`XShardApp::record_capacity`]) with the
/// stability-watermark GC answering for anything older.
pub struct XShardApp {
    inner: Box<dyn App>,
    /// The shared region handle (the same one the engine checkpoints).
    state: StateHandle,
    /// Durable completion records, oldest-first, bounded.
    ring: SlotRing,
    /// Durable image of the in-flight tables (locks + staged + floors).
    cell: BlobCell,
    /// Key → transaction currently holding its lock.
    locks: BTreeMap<Vec<u8>, TxId>,
    /// Staged (prepared, not yet decided) transactions.
    staged: BTreeMap<TxId, Vec<SubOp>>,
    /// Every transaction this group has applied (committed or batched).
    applied: BTreeSet<TxId>,
    /// Transactions this group has aborted.
    aborted: BTreeSet<TxId>,
    /// Coordinator decision records (first writer wins).
    decisions: BTreeMap<TxId, bool>,
    /// Per-stripe GC floors: highest evicted txid per initiator stripe.
    floors: BTreeMap<u64, TxId>,
    /// Elastic deployments: which group this replica belongs to, and the
    /// [`ShardMap`] epoch it currently enforces ownership under. `None`
    /// (static deployments) disables every ownership check.
    identity: Option<(u32, ShardMap)>,
    /// Plain operations passed through to the inner application.
    passthrough: u64,
}

impl std::fmt::Debug for XShardApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XShardApp")
            .field("staged", &self.staged.len())
            .field("locks", &self.locks.len())
            .field("applied", &self.applied.len())
            .field("floors", &self.floors.len())
            .field("passthrough", &self.passthrough)
            .finish()
    }
}

/// Bookkeeping CPU cost charged per xshard protocol op, in microseconds
/// (lock-table work; the real application cost is charged at commit).
const XSHARD_BOOKKEEPING_US: f64 = 2.0;

impl XShardApp {
    /// Wrap an application for cross-shard deployments over the standard
    /// region layout ([`xshard_section`]). Existing section content — a
    /// preserved disk across a restart — is loaded, not cleared: a replica
    /// that crashed mid-transaction comes back with its lock/stage/decision
    /// tables exactly as of its last executed operation.
    pub fn mount(inner: Box<dyn App>, state: StateHandle) -> XShardApp {
        let (ring, cell) = standard_sections();
        Self::with_sections(inner, state, ring, cell)
    }

    /// [`XShardApp::mount`] with explicit ring/cell sections — the hook for
    /// custom region layouts and for tests that want a tiny ring (fast GC
    /// eviction) or a tiny cell (staging-capacity refusal).
    ///
    /// # Panics
    /// Panics if the sections cannot hold their container headers, or the
    /// region holds a corrupt table image (a state bug, not a caller error).
    pub fn with_sections(
        inner: Box<dyn App>,
        state: StateHandle,
        ring: Section,
        cell: Section,
    ) -> XShardApp {
        let mut app = XShardApp {
            inner,
            state,
            ring: SlotRing::new(ring, XSHARD_SLOT_LEN, XSHARD_RING_MAGIC),
            cell: BlobCell::new(cell, XSHARD_CELL_MAGIC),
            locks: BTreeMap::new(),
            staged: BTreeMap::new(),
            applied: BTreeSet::new(),
            aborted: BTreeSet::new(),
            decisions: BTreeMap::new(),
            floors: BTreeMap::new(),
            identity: None,
            passthrough: 0,
        };
        app.reload_tables();
        app
    }

    /// Declare this replica's group and map for an elastic deployment and
    /// persist them with the tables (so identity survives crash-restart
    /// and rides checkpoints into state transfer). A map already on record
    /// with an equal or newer epoch wins — a restart over a preserved disk
    /// must not rewind a [`XMsg::Reshard`] the group already ordered.
    ///
    /// Every replica of a group must call this identically at boot;
    /// ownership checks are part of the replicated state machine.
    pub fn set_identity(&mut self, group: u32, map: ShardMap) {
        if let Some((_, cur)) = &self.identity {
            if cur.epoch() >= map.epoch() {
                return;
            }
        }
        self.identity = Some((group, map));
        self.persist_tables();
    }

    /// The installed identity, if this is an elastic deployment member.
    pub fn identity(&self) -> Option<(u32, ShardMap)> {
        self.identity
    }

    /// Ownership check: `Some(installed map)` if any of `keys` is *not*
    /// owned by this group under its installed map — the sender routed
    /// with a stale epoch. `None` when every key is owned, or when no
    /// identity is installed (static deployments check nothing).
    fn stale_route<'a>(&self, keys: impl IntoIterator<Item = &'a Vec<u8>>) -> Option<ShardMap> {
        let (group, map) = self.identity.as_ref()?;
        keys.into_iter()
            .any(|k| map.shard_of(k) != *group)
            .then_some(*map)
    }

    /// Has this group applied `txid` to its committed state?
    pub fn is_applied(&self, txid: TxId) -> bool {
        self.applied.contains(&txid)
    }

    /// Is `txid` currently staged (prepared, awaiting a decision)?
    pub fn is_staged(&self, txid: TxId) -> bool {
        self.staged.contains_key(&txid)
    }

    /// The decision this group logged for `txid`, if acting as coordinator.
    pub fn decision(&self, txid: TxId) -> Option<bool> {
        self.decisions.get(&txid).copied()
    }

    /// Keys currently locked by in-flight transactions.
    pub fn locked_keys(&self) -> usize {
        self.locks.len()
    }

    /// Plain (non-xshard) operations forwarded to the inner application.
    pub fn passthrough_ops(&self) -> u64 {
        self.passthrough
    }

    /// How many completion records the ring retains before the GC floor
    /// starts advancing.
    pub fn record_capacity(&self) -> u64 {
        self.ring.capacity()
    }

    /// The GC floor of an initiator stripe: the highest garbage-collected
    /// txid, or `None` while nothing of that stripe was ever evicted.
    pub fn gc_floor(&self, stripe: u64) -> Option<TxId> {
        self.floors.get(&stripe).copied()
    }

    /// Is `txid` at or below its stripe's GC floor (its completion record
    /// was evicted; the stability-watermark answers for it)?
    pub fn is_gc_evicted(&self, txid: TxId) -> bool {
        self.floors
            .get(&(txid >> TX_STRIPE_SHIFT))
            .is_some_and(|&floor| txid <= floor)
    }

    fn release_locks(&mut self, txid: TxId) {
        self.locks.retain(|_, holder| *holder != txid);
    }

    /// Append a completion record to the durable ring; a full ring evicts
    /// its oldest record, whose map entry is dropped and whose stripe floor
    /// advances (the stability watermark).
    fn push_record(&mut self, txid: TxId, kind: u8) {
        let mut rec = [0u8; XSHARD_SLOT_LEN];
        rec[..8].copy_from_slice(&txid.to_be_bytes());
        rec[8] = kind;
        let evicted = {
            let mut st = self.state.borrow_mut();
            self.ring
                .push(&mut st, &rec)
                .expect("xshard ring section in bounds")
        };
        if let Some(old) = evicted {
            let old_tx = TxId::from_be_bytes(old[..8].try_into().expect("8 bytes"));
            match old[8] {
                REC_APPLIED => {
                    self.applied.remove(&old_tx);
                }
                REC_ABORTED => {
                    self.aborted.remove(&old_tx);
                }
                REC_DECIDED_COMMIT | REC_DECIDED_ABORT => {
                    self.decisions.remove(&old_tx);
                }
                _ => {}
            }
            let floor = self.floors.entry(old_tx >> TX_STRIPE_SHIFT).or_insert(0);
            *floor = (*floor).max(old_tx);
        }
    }

    /// Serialize the in-flight tables (locks, staged sub-ops, GC floors)
    /// into the cell image.
    fn tables_image(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.locks.len() as u32);
        for (key, txid) in &self.locks {
            e.bytes(key).u64(*txid);
        }
        e.u32(self.staged.len() as u32);
        for (txid, ops) in &self.staged {
            let mut encoded = Vec::new();
            put_sub_ops(&mut encoded, ops);
            e.u64(*txid).bytes(&encoded);
        }
        e.u32(self.floors.len() as u32);
        for (stripe, floor) in &self.floors {
            e.u64(*stripe).u64(*floor);
        }
        match &self.identity {
            Some((group, map)) => {
                e.boolean(true).u32(*group).bytes(&map.encode());
            }
            None => {
                e.boolean(false);
            }
        }
        e.into_bytes()
    }

    /// Write the in-flight tables through to the region (every mutation of
    /// locks/staged/floors ends here, so the region is a function of the
    /// executed prefix at every operation boundary).
    fn persist_tables(&mut self) {
        let image = self.tables_image();
        self.store_tables(image);
    }

    /// Cell bytes a prepare must leave unused for later floor growth.
    fn floor_headroom(&self) -> usize {
        (self.cell.capacity() / 8).clamp(4 * XSHARD_SLOT_LEN, XSHARD_FLOOR_HEADROOM)
    }

    /// Store a prebuilt table image (the Prepare path builds it once for
    /// the capacity vote and reuses it here).
    fn store_tables(&mut self, image: Vec<u8>) {
        let mut st = self.state.borrow_mut();
        // Cannot fire under the documented sizing invariant: prepares
        // reserve [`XSHARD_FLOOR_HEADROOM`] below the cell capacity, and
        // the only growth past a prepare is one 16-byte floor entry per
        // *new* initiator stripe (paths that cannot vote no).
        self.cell
            .store(&mut st, &image)
            .expect("xshard cell sized for in-flight tables plus floor headroom");
    }

    /// Rebuild every table from the region section — construction over a
    /// preserved disk, state-transfer install, tentative rollback.
    fn reload_tables(&mut self) {
        self.locks.clear();
        self.staged.clear();
        self.applied.clear();
        self.aborted.clear();
        self.decisions.clear();
        self.floors.clear();
        self.identity = None;
        let st = self.state.borrow();
        if let Some(image) = self.cell.load(&st).expect("xshard cell readable") {
            let (locks, staged, floors, identity) =
                decode_tables_image(&image).expect("xshard table image decodes");
            self.locks = locks;
            self.staged = staged;
            self.floors = floors;
            self.identity = identity;
        }
        for rec in self.ring.records(&st).expect("xshard ring readable") {
            let txid = TxId::from_be_bytes(rec[..8].try_into().expect("8 bytes"));
            match rec[8] {
                REC_APPLIED => {
                    self.applied.insert(txid);
                }
                REC_ABORTED => {
                    self.aborted.insert(txid);
                }
                REC_DECIDED_COMMIT => {
                    self.decisions.insert(txid, true);
                }
                REC_DECIDED_ABORT => {
                    self.decisions.insert(txid, false);
                }
                _ => {}
            }
        }
    }

    fn bookkeeping_metrics() -> ExecMetrics {
        ExecMetrics {
            cpu_us: XSHARD_BOOKKEEPING_US,
            ..Default::default()
        }
    }

    fn apply_ops(
        &mut self,
        client: ClientId,
        ops: &[SubOp],
        nondet: &NonDet,
        session: Option<&mut SessionCtx<'_>>,
    ) -> (Vec<Vec<u8>>, ExecMetrics) {
        let mut metrics = Self::bookkeeping_metrics();
        let mut replies = Vec::with_capacity(ops.len());
        let mut session = session;
        for sub in ops {
            let (reply, m) = match session.as_deref_mut() {
                Some(ctx) => self
                    .inner
                    .execute_with_session(client, &sub.op, nondet, false, ctx),
                None => self.inner.execute(client, &sub.op, nondet, false),
            };
            metrics.add(&m);
            replies.push(reply);
        }
        (replies, metrics)
    }

    fn handle(
        &mut self,
        client: ClientId,
        msg: XMsg,
        nondet: &NonDet,
        read_only: bool,
        session: Option<&mut SessionCtx<'_>>,
    ) -> (Vec<u8>, ExecMetrics) {
        let bookkeeping = Self::bookkeeping_metrics();
        match msg {
            XMsg::Prepare { txid, ops } => {
                if read_only {
                    return (XReply::Aborted { txid }.encode(), bookkeeping);
                }
                // Idempotent re-prepare (rollback re-execution).
                if self.staged.contains_key(&txid) || self.applied.contains(&txid) {
                    return (XReply::PrepareOk { txid }.encode(), bookkeeping);
                }
                // A participant never votes yes for a transaction it already
                // aborted (a late retransmitted prepare after timeout-abort)
                // — nor for one old enough that its completion record was
                // garbage-collected (the stability watermark presumes abort,
                // and staging it would lock keys nobody will release).
                if self.aborted.contains(&txid) || self.is_gc_evicted(txid) {
                    return (XReply::Aborted { txid }.encode(), bookkeeping);
                }
                // A key this group no longer owns (post-split) is a
                // routing-epoch error, not a lock conflict: reject before
                // staging anything and carry the newer map so the sender
                // can re-route. Stale-epoch prepares whose keys are all
                // still owned here proceed normally.
                if let Some(map) = self.stale_route(ops.iter().flat_map(|s| &s.keys)) {
                    return (XReply::WrongEpoch { txid, map }.encode(), bookkeeping);
                }
                // No-wait locking: any conflict is an immediate no-vote, so
                // lock acquisition can never deadlock across shards.
                for sub in &ops {
                    for key in &sub.keys {
                        if let Some(&holder) = self.locks.get(key) {
                            if holder != txid {
                                return (
                                    XReply::PrepareFail { txid, holder }.encode(),
                                    bookkeeping,
                                );
                            }
                        }
                    }
                }
                for sub in &ops {
                    for key in &sub.keys {
                        self.locks.insert(key.clone(), txid);
                    }
                }
                self.staged.insert(txid, ops);
                // The in-flight tables must fit their region cell with
                // [`XSHARD_FLOOR_HEADROOM`] to spare; a transaction that
                // would overflow votes no — the same deterministic answer
                // on every replica of the group. The headroom is what the
                // non-voting paths (Decide, presumed-abort Commit, Abort)
                // may later consume when a ring eviction mints a floor
                // entry for a new stripe.
                let image = self.tables_image();
                if image.len() + self.floor_headroom() > self.cell.capacity() {
                    self.staged.remove(&txid);
                    self.release_locks(txid);
                    self.aborted.insert(txid);
                    self.push_record(txid, REC_ABORTED);
                    self.persist_tables();
                    return (XReply::Aborted { txid }.encode(), bookkeeping);
                }
                self.store_tables(image);
                (XReply::PrepareOk { txid }.encode(), bookkeeping)
            }
            XMsg::Commit { txid } => {
                if read_only {
                    return (XReply::Aborted { txid }.encode(), bookkeeping);
                }
                if let Some(ops) = self.staged.remove(&txid) {
                    let (replies, metrics) = self.apply_ops(client, &ops, nondet, session);
                    self.release_locks(txid);
                    self.applied.insert(txid);
                    self.push_record(txid, REC_APPLIED);
                    self.persist_tables();
                    return (XReply::Committed { txid, replies }.encode(), metrics);
                }
                // Duplicate ordered commit: the first one applied and
                // replied; acknowledge without re-executing. (Rollback
                // re-execution never lands here — restoring the region
                // restored the staged entry too.)
                if self.applied.contains(&txid) {
                    return (
                        XReply::Committed {
                            txid,
                            replies: Vec::new(),
                        }
                        .encode(),
                        bookkeeping,
                    );
                }
                // Garbage-collected: the watermark already presumes abort;
                // answer without writing a fresh record.
                if self.is_gc_evicted(txid) {
                    return (XReply::Aborted { txid }.encode(), bookkeeping);
                }
                // Commit for a transaction never prepared here — protocol
                // misuse; presumed abort keeps it safe, and recording the
                // abort stops a late reordered Prepare from staging and
                // locking keys nobody will release.
                self.aborted.insert(txid);
                self.push_record(txid, REC_ABORTED);
                self.persist_tables();
                (XReply::Aborted { txid }.encode(), bookkeeping)
            }
            XMsg::Abort { txid } => {
                if read_only {
                    return (XReply::Aborted { txid }.encode(), bookkeeping);
                }
                // An abort can never undo an applied commit; reply with the
                // truth so a confused initiator notices.
                if self.applied.contains(&txid) {
                    return (
                        XReply::Committed {
                            txid,
                            replies: Vec::new(),
                        }
                        .encode(),
                        bookkeeping,
                    );
                }
                let had_stage = self.staged.remove(&txid).is_some();
                self.release_locks(txid);
                if self.is_gc_evicted(txid) {
                    // Evicted long ago; the watermark already answers abort.
                    if had_stage {
                        self.persist_tables();
                    }
                    return (XReply::Aborted { txid }.encode(), bookkeeping);
                }
                let newly_aborted = self.aborted.insert(txid);
                if newly_aborted {
                    self.push_record(txid, REC_ABORTED);
                }
                if newly_aborted || had_stage {
                    self.persist_tables();
                }
                (XReply::Aborted { txid }.encode(), bookkeeping)
            }
            XMsg::Decide { txid, commit } => {
                if read_only {
                    return (
                        XReply::Decision { txid, commit: None }.encode(),
                        bookkeeping,
                    );
                }
                if let Some(&recorded) = self.decisions.get(&txid) {
                    return (
                        XReply::DecisionLogged {
                            txid,
                            commit: recorded,
                        }
                        .encode(),
                        bookkeeping,
                    );
                }
                // A decision old enough to be garbage-collected is presumed
                // abort; no fresh record is written for ancient txids.
                if self.is_gc_evicted(txid) {
                    return (
                        XReply::DecisionLogged {
                            txid,
                            commit: false,
                        }
                        .encode(),
                        bookkeeping,
                    );
                }
                self.decisions.insert(txid, commit);
                self.push_record(
                    txid,
                    if commit {
                        REC_DECIDED_COMMIT
                    } else {
                        REC_DECIDED_ABORT
                    },
                );
                self.persist_tables();
                (
                    XReply::DecisionLogged { txid, commit }.encode(),
                    bookkeeping,
                )
            }
            XMsg::QueryDecision { txid } => (
                XReply::Decision {
                    txid,
                    commit: self.decisions.get(&txid).copied(),
                }
                .encode(),
                bookkeeping,
            ),
            XMsg::QueryApplied { txid } => (
                XReply::Applied {
                    txid,
                    applied: self.applied.contains(&txid),
                }
                .encode(),
                bookkeeping,
            ),
            XMsg::AtomicBatch { txid, ops } => {
                if read_only {
                    return (XReply::Aborted { txid }.encode(), bookkeeping);
                }
                // Hardening against protocol misuse: a txid is routed
                // either as a batch or through 2PC, never both, but if a
                // confused initiator batches a txid it also prepared, the
                // stale stage entry and its locks must not dangle forever —
                // on the duplicate/garbage-collected paths below included.
                if self.staged.remove(&txid).is_some() {
                    self.release_locks(txid);
                    self.persist_tables();
                }
                // Duplicate ordered batch (or one old enough that its
                // applied record was garbage-collected): an ordered batch
                // always committed the first time, so acknowledge without
                // double-applying.
                if self.applied.contains(&txid) || self.is_gc_evicted(txid) {
                    return (
                        XReply::Committed {
                            txid,
                            replies: Vec::new(),
                        }
                        .encode(),
                        bookkeeping,
                    );
                }
                // Same ownership gate as Prepare: a batch naming a moved
                // key must not execute on its former owner.
                if let Some(map) = self.stale_route(ops.iter().flat_map(|s| &s.keys)) {
                    return (XReply::WrongEpoch { txid, map }.encode(), bookkeeping);
                }
                let (replies, metrics) = self.apply_ops(client, &ops, nondet, session);
                self.applied.insert(txid);
                self.push_record(txid, REC_APPLIED);
                self.persist_tables();
                (XReply::Committed { txid, replies }.encode(), metrics)
            }
            XMsg::Reshard { txid, map } => {
                let current = |app: &XShardApp| app.identity.map_or(0, |(_, m)| m.epoch());
                if read_only {
                    // Read-only execution must not mutate; answer the
                    // installed epoch so the sender retries ordered.
                    return (
                        XReply::Resharded {
                            txid,
                            epoch: current(self),
                        }
                        .encode(),
                        bookkeeping,
                    );
                }
                // Install iff strictly newer; older or duplicate Reshard
                // deliveries acknowledge the epoch already on record. A
                // group with no identity (static deployment) ignores the
                // op entirely rather than guessing its own index.
                if let Some((group, cur)) = self.identity {
                    if map.epoch() > cur.epoch() {
                        self.identity = Some((group, map));
                        self.persist_tables();
                    }
                }
                (
                    XReply::Resharded {
                        txid,
                        epoch: current(self),
                    }
                    .encode(),
                    bookkeeping,
                )
            }
            XMsg::RangeInstall { txid, chunks } => {
                if read_only {
                    return (XReply::Aborted { txid }.encode(), bookkeeping);
                }
                // Idempotent by txid, like a batch: a duplicate ordered
                // install acknowledges without rewriting the region.
                if self.applied.contains(&txid) || self.is_gc_evicted(txid) {
                    return (
                        XReply::Committed {
                            txid,
                            replies: Vec::new(),
                        }
                        .encode(),
                        bookkeeping,
                    );
                }
                {
                    let mut st = self.state.borrow_mut();
                    for (off, bytes) in &chunks {
                        st.modify(*off, bytes.len())
                            .expect("range-install chunk inside the region");
                        st.write(*off, bytes)
                            .expect("range-install chunk inside the region");
                    }
                }
                // The region changed underneath the inner application —
                // let it rebuild whatever it caches, exactly as after a
                // state-transfer install.
                self.inner.on_state_installed();
                self.applied.insert(txid);
                self.push_record(txid, REC_APPLIED);
                self.persist_tables();
                (
                    XReply::Committed {
                        txid,
                        replies: Vec::new(),
                    }
                    .encode(),
                    bookkeeping,
                )
            }
            XMsg::KeyedOp { txid, keys, op } => {
                // The elastic fast path: ownership-gate, then pass the
                // inner operation through untouched. Exactly-once comes
                // from the PBFT reply cache like any pass-through op; the
                // wrapper records nothing.
                if let Some(map) = self.stale_route(keys.iter()) {
                    return (XReply::WrongEpoch { txid, map }.encode(), bookkeeping);
                }
                let mut metrics = Self::bookkeeping_metrics();
                let (reply, m) = match session {
                    Some(ctx) => self
                        .inner
                        .execute_with_session(client, &op, nondet, read_only, ctx),
                    None => self.inner.execute(client, &op, nondet, read_only),
                };
                metrics.add(&m);
                (reply, metrics)
            }
        }
    }
}

impl App for XShardApp {
    fn execute(
        &mut self,
        client: ClientId,
        op: &[u8],
        nondet: &NonDet,
        read_only: bool,
    ) -> (Vec<u8>, ExecMetrics) {
        match XMsg::decode(op) {
            Some(msg) => self.handle(client, msg, nondet, read_only, None),
            None => {
                self.passthrough += 1;
                self.inner.execute(client, op, nondet, read_only)
            }
        }
    }

    fn execute_with_session(
        &mut self,
        client: ClientId,
        op: &[u8],
        nondet: &NonDet,
        read_only: bool,
        session: &mut SessionCtx<'_>,
    ) -> (Vec<u8>, ExecMetrics) {
        match XMsg::decode(op) {
            Some(msg) => self.handle(client, msg, nondet, read_only, Some(session)),
            None => {
                self.passthrough += 1;
                self.inner
                    .execute_with_session(client, op, nondet, read_only, session)
            }
        }
    }

    fn make_nondet(&mut self, now_ns: u64, random: u64) -> NonDet {
        self.inner.make_nondet(now_ns, random)
    }

    fn validate_nondet(&self, nondet: &NonDet, now_ns: u64, window_ns: u64) -> bool {
        self.inner.validate_nondet(nondet, now_ns, window_ns)
    }

    fn authorize_join(&mut self, idbuf: &[u8]) -> Option<Vec<u8>> {
        self.inner.authorize_join(idbuf)
    }

    fn on_state_installed(&mut self) {
        // The engine just rewrote the region (state transfer install or a
        // tentative-execution rollback); the in-memory tables are stale
        // caches of the xshard section — rebuild them from it. This is the
        // path that lets a lagging replica fast-forwarded *over* a
        // transaction's prepare answer the later commit correctly.
        self.reload_tables();
        self.inner.on_state_installed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{KvApp, NullApp, StateHandle};
    use crate::routing::SplitPlan;
    use pbft_state::PagedState;
    use std::cell::RefCell;
    use std::rc::Rc;

    const PAGE: u64 = PAGE_SIZE as u64;

    fn test_state() -> StateHandle {
        Rc::new(RefCell::new(PagedState::new(8)))
    }

    /// Test geometry: ring in pages 0–3, cell in pages 4–5, app data from
    /// page 6 on.
    fn test_sections() -> (Section, Section) {
        (
            Section {
                base: 0,
                len: 4 * PAGE,
            },
            Section {
                base: 4 * PAGE,
                len: 2 * PAGE,
            },
        )
    }

    fn xapp_over(state: &StateHandle, inner: Box<dyn App>) -> XShardApp {
        let (ring, cell) = test_sections();
        XShardApp::with_sections(inner, state.clone(), ring, cell)
    }

    fn null_xapp() -> XShardApp {
        xapp_over(&test_state(), Box::new(NullApp::new(4)))
    }

    fn kv_xapp() -> (XShardApp, StateHandle) {
        let state = test_state();
        let app = xapp_over(&state, Box::new(KvApp::new(state.clone(), 6 * PAGE, 64)));
        (app, state)
    }

    /// Read the KV slot for `key` straight out of the region (bypassing the
    /// app), to prove prepares stage without touching application state.
    fn kv_slot_value(state: &StateHandle, key: u64) -> u64 {
        let off = 6 * PAGE + (key % 64) * 16;
        let rec = state.borrow().read_vec(off, 16).expect("slot in bounds");
        u64::from_be_bytes(rec[8..16].try_into().expect("8 bytes"))
    }

    fn nd() -> NonDet {
        NonDet::default()
    }

    fn sub(key: &[u8], op: Vec<u8>) -> SubOp {
        SubOp {
            keys: vec![key.to_vec()],
            op,
        }
    }

    #[test]
    fn msgs_roundtrip() {
        for msg in [
            XMsg::Prepare {
                txid: 9,
                ops: vec![
                    SubOp {
                        keys: vec![b"a".to_vec(), b"b".to_vec()],
                        op: vec![1, 2],
                    },
                    SubOp {
                        keys: vec![],
                        op: vec![],
                    },
                ],
            },
            XMsg::Decide {
                txid: 1,
                commit: true,
            },
            XMsg::Decide {
                txid: 1,
                commit: false,
            },
            XMsg::Commit { txid: u64::MAX },
            XMsg::Abort { txid: 0 },
            XMsg::QueryDecision { txid: 3 },
            XMsg::QueryApplied { txid: 4 },
            XMsg::AtomicBatch {
                txid: 5,
                ops: vec![sub(b"k", vec![7; 9])],
            },
            XMsg::Reshard {
                txid: 6,
                map: ShardMap::ranged(2).split(0).new_map,
            },
            XMsg::RangeInstall {
                txid: 7,
                chunks: vec![(0, vec![1, 2, 3]), (4096, vec![])],
            },
            XMsg::KeyedOp {
                txid: 8,
                keys: vec![b"a".to_vec(), b"b".to_vec()],
                op: vec![9, 9],
            },
        ] {
            assert_eq!(XMsg::decode(&msg.encode()), Some(msg));
        }
    }

    #[test]
    fn replies_roundtrip() {
        for reply in [
            XReply::PrepareOk { txid: 1 },
            XReply::PrepareFail { txid: 2, holder: 9 },
            XReply::Committed {
                txid: 3,
                replies: vec![b"ok".to_vec(), vec![]],
            },
            XReply::Aborted { txid: 4 },
            XReply::DecisionLogged {
                txid: 5,
                commit: true,
            },
            XReply::Decision {
                txid: 6,
                commit: None,
            },
            XReply::Decision {
                txid: 6,
                commit: Some(false),
            },
            XReply::Applied {
                txid: 7,
                applied: true,
            },
            XReply::WrongEpoch {
                txid: 8,
                map: ShardMap::ranged(4).split(2).new_map,
            },
            XReply::Resharded { txid: 9, epoch: 3 },
        ] {
            assert_eq!(XReply::decode(&reply.encode()), Some(reply));
        }
    }

    #[test]
    fn plain_ops_are_not_xshard_frames() {
        for body in [
            &b""[..],
            b"INSERT INTO bench VALUES ('x')",
            &[0u8; 32][..],
            &[1u8, 2, 3][..],
            &XSHARD_MAGIC[..3], // truncated magic
            &[0xA7, b'X', b'S', 0x01, 99, 0, 0, 0, 0, 0, 0, 0, 0][..], // bad tag
        ] {
            assert_eq!(XMsg::decode(body), None);
            assert_eq!(XReply::decode(body), None);
        }
    }

    #[test]
    fn routing_groups_sub_ops_into_legs() {
        let map = ShardMap::new(4);
        let (ka, kb) = two_keys_on_distinct_shards(&map);
        let op = XShardOp::route(
            7,
            vec![sub(&ka, vec![1]), sub(&kb, vec![2]), sub(&ka, vec![3])],
            &map,
        )
        .expect("routable");
        assert_eq!(op.txid, 7);
        assert_eq!(op.legs.len(), 2);
        assert_eq!(
            op.coordinator,
            map.shard_of(&ka),
            "coordinator owns the first key"
        );
        assert_eq!(op.legs[0].ops.len(), 2, "same-shard sub-ops share a leg");
        assert!(!op.is_single_shard());

        let single = XShardOp::route(8, vec![sub(&ka, vec![1])], &map).expect("routable");
        assert!(single.is_single_shard());
        assert_eq!(XShardOp::route(9, vec![], &map), Err(RouteError::NoKeys));
        let split = SubOp {
            keys: vec![ka, kb],
            op: vec![1],
        };
        assert!(matches!(
            XShardOp::route(10, vec![split], &map),
            Err(RouteError::CrossShard { .. })
        ));
    }

    fn two_keys_on_distinct_shards(map: &ShardMap) -> (Vec<u8>, Vec<u8>) {
        let a = b"first".to_vec();
        let b = crate::routing::test_key_on_other_shard(map, &a);
        (a, b)
    }

    #[test]
    fn coordinator_tally() {
        let mut c = TxCoordinator::new([0, 1, 2]);
        assert_eq!(c.verdict(), None);
        assert_eq!(c.record_vote(1, true), None);
        assert_eq!(c.pending().len(), 2);
        assert_eq!(c.record_vote(0, true), None);
        assert_eq!(c.record_vote(2, true), Some(true));
        // A late (duplicate) vote cannot flip the verdict.
        assert_eq!(c.record_vote(2, false), Some(true));
        assert!(!c.timeout(), "timeout cannot override commit");

        let mut c = TxCoordinator::new([0, 1]);
        assert_eq!(c.record_vote(0, false), Some(false));
        assert_eq!(c.record_vote(1, true), Some(false));

        let mut c = TxCoordinator::new([0, 1]);
        assert!(c.timeout());
        assert_eq!(
            c.record_vote(0, true),
            Some(false),
            "late yes after timeout stays abort"
        );
    }

    #[test]
    fn prepare_commit_applies_staged_ops() {
        let (mut app, state) = kv_xapp();
        let prepare = XMsg::Prepare {
            txid: 1,
            ops: vec![sub(b"k5", KvApp::op_put(5, 42))],
        };
        let (r, _) = app.execute(ClientId(1), &prepare.encode(), &nd(), false);
        assert_eq!(XReply::decode(&r), Some(XReply::PrepareOk { txid: 1 }));
        assert!(app.is_staged(1));
        assert_eq!(
            kv_slot_value(&state, 5),
            0,
            "prepare must not touch application state"
        );

        let (r, _) = app.execute(
            ClientId(1),
            &XMsg::Commit { txid: 1 }.encode(),
            &nd(),
            false,
        );
        match XReply::decode(&r) {
            Some(XReply::Committed { txid: 1, replies }) => {
                assert_eq!(replies, vec![b"ok".to_vec()]);
            }
            other => panic!("{other:?}"),
        }
        assert!(app.is_applied(1));
        assert!(!app.is_staged(1));
        assert_eq!(app.locked_keys(), 0, "commit releases locks");
        assert_eq!(kv_slot_value(&state, 5), 42, "commit applied the put");
    }

    #[test]
    fn abort_discards_staged_ops() {
        let (mut app, state) = kv_xapp();
        let prepare = XMsg::Prepare {
            txid: 2,
            ops: vec![sub(b"k1", KvApp::op_put(1, 7))],
        };
        let _ = app.execute(ClientId(1), &prepare.encode(), &nd(), false);
        let (r, _) = app.execute(ClientId(1), &XMsg::Abort { txid: 2 }.encode(), &nd(), false);
        assert_eq!(XReply::decode(&r), Some(XReply::Aborted { txid: 2 }));
        assert!(!app.is_applied(2));
        assert_eq!(app.locked_keys(), 0);
        assert_eq!(
            kv_slot_value(&state, 1),
            0,
            "nothing ever touched application state"
        );
        // A late prepare retransmission after the abort stays aborted.
        let (r, _) = app.execute(ClientId(1), &prepare.encode(), &nd(), false);
        assert_eq!(XReply::decode(&r), Some(XReply::Aborted { txid: 2 }));
    }

    #[test]
    fn conflicting_locks_vote_no() {
        let mut app = null_xapp();
        let p1 = XMsg::Prepare {
            txid: 1,
            ops: vec![sub(b"hot", vec![1])],
        };
        let p2 = XMsg::Prepare {
            txid: 2,
            ops: vec![sub(b"hot", vec![2])],
        };
        let _ = app.execute(ClientId(1), &p1.encode(), &nd(), false);
        let (r, _) = app.execute(ClientId(2), &p2.encode(), &nd(), false);
        assert_eq!(
            XReply::decode(&r),
            Some(XReply::PrepareFail { txid: 2, holder: 1 })
        );
        assert!(!app.is_staged(2), "a failed prepare stages nothing");
        // After tx 1 aborts, the key is free again.
        let _ = app.execute(ClientId(1), &XMsg::Abort { txid: 1 }.encode(), &nd(), false);
        let (r, _) = app.execute(
            ClientId(2),
            &XMsg::Prepare {
                txid: 3,
                ops: vec![sub(b"hot", vec![3])],
            }
            .encode(),
            &nd(),
            false,
        );
        assert_eq!(XReply::decode(&r), Some(XReply::PrepareOk { txid: 3 }));
    }

    #[test]
    fn commit_without_prepare_is_presumed_abort() {
        let mut app = null_xapp();
        let (r, _) = app.execute(
            ClientId(1),
            &XMsg::Commit { txid: 99 }.encode(),
            &nd(),
            false,
        );
        assert_eq!(XReply::decode(&r), Some(XReply::Aborted { txid: 99 }));
        assert!(!app.is_applied(99));
        // The presumed abort is *recorded*: a late reordered Prepare for the
        // same transaction must not stage and lock keys nobody will release.
        let late = XMsg::Prepare {
            txid: 99,
            ops: vec![sub(b"k", vec![1])],
        };
        let (r, _) = app.execute(ClientId(1), &late.encode(), &nd(), false);
        assert_eq!(XReply::decode(&r), Some(XReply::Aborted { txid: 99 }));
        assert!(!app.is_staged(99));
        assert_eq!(app.locked_keys(), 0);
    }

    #[test]
    fn decisions_are_first_writer_wins() {
        let mut app = null_xapp();
        let (r, _) = app.execute(
            ClientId(1),
            &XMsg::Decide {
                txid: 5,
                commit: true,
            }
            .encode(),
            &nd(),
            false,
        );
        assert_eq!(
            XReply::decode(&r),
            Some(XReply::DecisionLogged {
                txid: 5,
                commit: true
            })
        );
        // A conflicting second decide is ignored; the record stands.
        let (r, _) = app.execute(
            ClientId(1),
            &XMsg::Decide {
                txid: 5,
                commit: false,
            }
            .encode(),
            &nd(),
            false,
        );
        assert_eq!(
            XReply::decode(&r),
            Some(XReply::DecisionLogged {
                txid: 5,
                commit: true
            })
        );
        let (r, _) = app.execute(
            ClientId(1),
            &XMsg::QueryDecision { txid: 5 }.encode(),
            &nd(),
            true,
        );
        assert_eq!(
            XReply::decode(&r),
            Some(XReply::Decision {
                txid: 5,
                commit: Some(true)
            })
        );
        let (r, _) = app.execute(
            ClientId(1),
            &XMsg::QueryDecision { txid: 6 }.encode(),
            &nd(),
            true,
        );
        assert_eq!(
            XReply::decode(&r),
            Some(XReply::Decision {
                txid: 6,
                commit: None
            })
        );
    }

    #[test]
    fn query_applied_tracks_commits_and_batches() {
        let mut app = null_xapp();
        let q = |app: &mut XShardApp, txid| {
            let (r, _) = app.execute(
                ClientId(1),
                &XMsg::QueryApplied { txid }.encode(),
                &nd(),
                true,
            );
            match XReply::decode(&r) {
                Some(XReply::Applied { applied, .. }) => applied,
                other => panic!("{other:?}"),
            }
        };
        assert!(!q(&mut app, 1));
        let _ = app.execute(
            ClientId(1),
            &XMsg::Prepare {
                txid: 1,
                ops: vec![sub(b"a", vec![1])],
            }
            .encode(),
            &nd(),
            false,
        );
        assert!(!q(&mut app, 1), "staged is not applied");
        let _ = app.execute(
            ClientId(1),
            &XMsg::Commit { txid: 1 }.encode(),
            &nd(),
            false,
        );
        assert!(q(&mut app, 1));
        let batch = XMsg::AtomicBatch {
            txid: 2,
            ops: vec![sub(b"b", vec![2]), sub(b"c", vec![3])],
        };
        let (r, _) = app.execute(ClientId(1), &batch.encode(), &nd(), false);
        assert!(
            matches!(XReply::decode(&r), Some(XReply::Committed { txid: 2, ref replies }) if replies.len() == 2)
        );
        assert!(q(&mut app, 2));
    }

    #[test]
    fn tables_survive_a_remount_over_the_same_region() {
        // Crash-restart over a preserved disk: a fresh wrapper over the same
        // region reconstructs every table mid-transaction.
        let state = test_state();
        let mut app = xapp_over(&state, Box::new(NullApp::new(4)));
        let prepare = XMsg::Prepare {
            txid: 7,
            ops: vec![sub(b"held", vec![1])],
        };
        let _ = app.execute(ClientId(1), &prepare.encode(), &nd(), false);
        let _ = app.execute(
            ClientId(1),
            &XMsg::Decide {
                txid: 7,
                commit: true,
            }
            .encode(),
            &nd(),
            false,
        );
        let batch = XMsg::AtomicBatch {
            txid: 8,
            ops: vec![sub(b"b", vec![2])],
        };
        let _ = app.execute(ClientId(1), &batch.encode(), &nd(), false);
        let _ = app.execute(ClientId(1), &XMsg::Abort { txid: 9 }.encode(), &nd(), false);
        drop(app);

        let mut back = xapp_over(&state, Box::new(NullApp::new(4)));
        assert!(back.is_staged(7), "staged sub-ops reloaded");
        assert_eq!(back.locked_keys(), 1, "locks reloaded");
        assert_eq!(back.decision(7), Some(true), "decision log reloaded");
        assert!(back.is_applied(8), "applied set reloaded");
        // The reloaded stage is live: the commit applies it.
        let (r, _) = back.execute(
            ClientId(1),
            &XMsg::Commit { txid: 7 }.encode(),
            &nd(),
            false,
        );
        assert!(
            matches!(XReply::decode(&r), Some(XReply::Committed { txid: 7, ref replies }) if replies.len() == 1)
        );
        assert!(back.is_applied(7));
        // And the reloaded abort record still refuses a late prepare.
        let late = XMsg::Prepare {
            txid: 9,
            ops: vec![sub(b"z", vec![3])],
        };
        let (r, _) = back.execute(ClientId(1), &late.encode(), &nd(), false);
        assert_eq!(XReply::decode(&r), Some(XReply::Aborted { txid: 9 }));
    }

    #[test]
    fn tables_roll_back_with_the_region() {
        // Tentative-execution rollback: restoring a snapshot and firing
        // on_state_installed rewinds the tables to the snapshot point, so
        // re-execution of the suffix reproduces them exactly.
        let (mut app, state) = kv_xapp();
        let prepare = XMsg::Prepare {
            txid: 3,
            ops: vec![sub(b"k9", KvApp::op_put(9, 77))],
        };
        let _ = app.execute(ClientId(1), &prepare.encode(), &nd(), false);
        state.borrow_mut().refresh_digest();
        let snap = state.borrow().snapshot(1);

        let commit = XMsg::Commit { txid: 3 };
        let (r1, _) = app.execute(ClientId(1), &commit.encode(), &nd(), false);
        assert!(app.is_applied(3));
        let committed_root = state.borrow_mut().refresh_digest();

        state.borrow_mut().restore(&snap).expect("geometry matches");
        app.on_state_installed();
        assert!(app.is_staged(3), "rollback rewound to the staged state");
        assert!(!app.is_applied(3));
        assert_eq!(
            kv_slot_value(&state, 9),
            0,
            "application effect rolled back"
        );

        // Re-executing the suffix converges to the identical region.
        let (r2, _) = app.execute(ClientId(1), &commit.encode(), &nd(), false);
        assert_eq!(r1, r2, "re-execution is bit-identical");
        assert_eq!(state.borrow_mut().refresh_digest(), committed_root);
    }

    #[test]
    fn transfer_install_reconstructs_tables_over_a_jumped_prepare() {
        // The execution-skipping path: replica B never executes the Prepare;
        // it installs A's checkpoint pages (as state transfer would) and
        // must then answer the Commit by applying — not by presumed abort.
        let state_a = test_state();
        let mut a = xapp_over(
            &state_a,
            Box::new(KvApp::new(state_a.clone(), 6 * PAGE, 64)),
        );
        let prepare = XMsg::Prepare {
            txid: 11,
            ops: vec![sub(b"k2", KvApp::op_put(2, 5))],
        };
        let _ = a.execute(ClientId(1), &prepare.encode(), &nd(), false);
        state_a.borrow_mut().refresh_digest();
        let checkpoint = state_a.borrow().snapshot(64);

        let state_b = test_state();
        let mut b = xapp_over(
            &state_b,
            Box::new(KvApp::new(state_b.clone(), 6 * PAGE, 64)),
        );
        assert!(!b.is_staged(11), "B never executed the prepare");
        {
            let mut st = state_b.borrow_mut();
            st.refresh_digest();
            for page in 0..st.num_pages() as u64 {
                let data = checkpoint.page(page).map(|p| p.to_vec());
                st.install_page(page, data).expect("same geometry");
            }
        }
        b.on_state_installed();
        assert!(b.is_staged(11), "the installed section carries the prepare");

        let (ra, _) = a.execute(
            ClientId(1),
            &XMsg::Commit { txid: 11 }.encode(),
            &nd(),
            false,
        );
        let (rb, _) = b.execute(
            ClientId(1),
            &XMsg::Commit { txid: 11 }.encode(),
            &nd(),
            false,
        );
        assert_eq!(ra, rb, "fast-forwarded replica commits like its peers");
        assert!(b.is_applied(11));
        assert_eq!(
            state_a.borrow_mut().refresh_digest(),
            state_b.borrow_mut().refresh_digest(),
            "regions stay digest-identical"
        );
    }

    #[test]
    fn gc_watermark_evicts_in_order_and_answers_late_messages() {
        // A deliberately tiny ring: header + 4 slots.
        let make = || {
            let state = test_state();
            let ring = Section {
                base: 0,
                len: (32 + 4 * XSHARD_SLOT_LEN) as u64,
            };
            let cell = Section {
                base: PAGE,
                len: PAGE,
            };
            let app =
                XShardApp::with_sections(Box::new(NullApp::new(4)), state.clone(), ring, cell);
            (app, state)
        };
        let (mut a, state_a) = make();
        let (mut b, state_b) = make();
        let stripe = 1u64 << TX_STRIPE_SHIFT;
        for app in [&mut a, &mut b] {
            assert_eq!(app.record_capacity(), 4);
            for k in 0..7u64 {
                let txid = stripe | k;
                let batch = XMsg::AtomicBatch {
                    txid,
                    ops: vec![sub(&k.to_be_bytes(), vec![1])],
                };
                let _ = app.execute(ClientId(1), &batch.encode(), &nd(), false);
            }
        }
        // 7 applied records through a 4-slot ring: txids 0..=2 evicted.
        assert_eq!(
            a.gc_floor(1),
            Some(stripe | 2),
            "floor tracks the newest eviction"
        );
        assert!(a.is_gc_evicted(stripe | 2) && !a.is_gc_evicted(stripe | 3));
        assert!(a.is_applied(stripe | 5), "retained records still answer");

        // Late retransmissions for an evicted txid answer deterministically
        // on every replica, and never stage or lock anything.
        let late_prepare = XMsg::Prepare {
            txid: stripe | 1,
            ops: vec![sub(b"x", vec![9])],
        };
        let late_batch = XMsg::AtomicBatch {
            txid: stripe,
            ops: vec![sub(b"y", vec![9])],
        };
        for msg in [
            late_prepare,
            late_batch,
            XMsg::Commit { txid: stripe | 2 },
            XMsg::Abort { txid: stripe | 1 },
        ] {
            let (ra, _) = a.execute(ClientId(1), &msg.encode(), &nd(), false);
            let (rb, _) = b.execute(ClientId(1), &msg.encode(), &nd(), false);
            assert_eq!(ra, rb, "late {msg:?} diverged");
        }
        assert_eq!(a.locked_keys(), 0, "nothing staged for evicted txids");
        assert!(!a.is_staged(stripe | 1));
        // An evicted batch acks committed without double-applying; an
        // evicted prepare/commit answers the presumed abort.
        let (r, _) = a.execute(
            ClientId(1),
            &XMsg::AtomicBatch {
                txid: stripe,
                ops: vec![],
            }
            .encode(),
            &nd(),
            false,
        );
        assert_eq!(
            XReply::decode(&r),
            Some(XReply::Committed {
                txid: stripe,
                replies: vec![]
            })
        );
        let (r, _) = a.execute(
            ClientId(1),
            &XMsg::Commit { txid: stripe | 1 }.encode(),
            &nd(),
            false,
        );
        assert_eq!(
            XReply::decode(&r),
            Some(XReply::Aborted { txid: stripe | 1 })
        );
        // Eviction is itself deterministic: region digests agree.
        assert_eq!(
            state_a.borrow_mut().refresh_digest(),
            state_b.borrow_mut().refresh_digest()
        );
        // A *fresh* txid above the floor still prepares normally.
        let fresh = XMsg::Prepare {
            txid: stripe | 9,
            ops: vec![sub(b"f", vec![1])],
        };
        let (r, _) = a.execute(ClientId(1), &fresh.encode(), &nd(), false);
        assert_eq!(
            XReply::decode(&r),
            Some(XReply::PrepareOk { txid: stripe | 9 })
        );
    }

    #[test]
    fn prepare_overflowing_the_cell_votes_abort_deterministically() {
        // A cell that fits only small stage tables (256 bytes minus the
        // header and the floor headroom a prepare must leave free).
        let make = || {
            let state = test_state();
            let ring = Section { base: 0, len: PAGE };
            let cell = Section {
                base: PAGE,
                len: 256,
            };
            XShardApp::with_sections(Box::new(NullApp::new(4)), state, ring, cell)
        };
        let (mut a, mut b) = (make(), make());
        let fat = XMsg::Prepare {
            txid: 1,
            ops: vec![sub(b"k", vec![0u8; 4096])],
        };
        for app in [&mut a, &mut b] {
            let (r, _) = app.execute(ClientId(1), &fat.encode(), &nd(), false);
            assert_eq!(
                XReply::decode(&r),
                Some(XReply::Aborted { txid: 1 }),
                "overflow votes no"
            );
            assert!(!app.is_staged(1));
            assert_eq!(app.locked_keys(), 0, "overflow leaves no locks behind");
        }
        // A small transaction still fits and proceeds.
        let slim = XMsg::Prepare {
            txid: 2,
            ops: vec![sub(b"k", vec![1])],
        };
        let (r, _) = a.execute(ClientId(1), &slim.encode(), &nd(), false);
        assert_eq!(XReply::decode(&r), Some(XReply::PrepareOk { txid: 2 }));
    }

    #[test]
    fn read_only_path_never_mutates() {
        let (mut app, state) = kv_xapp();
        let prepare = XMsg::Prepare {
            txid: 1,
            ops: vec![sub(b"k", KvApp::op_put(1, 1))],
        };
        let (r, _) = app.execute(ClientId(1), &prepare.encode(), &nd(), true);
        assert_eq!(XReply::decode(&r), Some(XReply::Aborted { txid: 1 }));
        assert!(!app.is_staged(1));
        let (r, _) = app.execute(ClientId(1), &XMsg::Commit { txid: 1 }.encode(), &nd(), true);
        assert_eq!(XReply::decode(&r), Some(XReply::Aborted { txid: 1 }));
        assert_eq!(state.borrow().dirty_pages(), 0);
    }

    #[test]
    fn passthrough_is_byte_identical() {
        let mut plain = NullApp::new(16);
        let wrapped = null_xapp();
        // NullApp replies 16 zero bytes; the wrapper must not touch them.
        let op = b"just an app op".to_vec();
        let (a, am) = plain.execute(ClientId(1), &op, &nd(), false);
        let mut wrapped16 = xapp_over(&test_state(), Box::new(NullApp::new(16)));
        let (b, bm) = wrapped16.execute(ClientId(1), &op, &nd(), false);
        assert_eq!(a, b);
        assert_eq!(am, bm, "pass-through adds no cost");
        assert_eq!(wrapped16.passthrough_ops(), 1);
        assert_eq!(wrapped.passthrough_ops(), 0);
    }

    /// First small integer key (BE bytes) that `map` assigns to `shard`,
    /// optionally also inside/outside a split plan's moved span.
    fn key_where(map: &ShardMap, shard: u32, moved: Option<(&SplitPlan, bool)>) -> Vec<u8> {
        (0..4096u64)
            .map(|i| i.to_be_bytes().to_vec())
            .find(|k| {
                map.shard_of(k) == shard && moved.is_none_or(|(plan, want)| plan.moves(k) == want)
            })
            .expect("probe keys cover every shard and span")
    }

    #[test]
    fn reshard_gates_ownership_and_carries_the_newer_map() {
        let map = ShardMap::ranged(2);
        let plan = map.split(0);
        let moved = key_where(&map, 0, Some((&plan, true)));
        let kept = key_where(&map, 0, Some((&plan, false)));

        let state = test_state();
        let mut app = xapp_over(&state, Box::new(NullApp::new(4)));
        app.set_identity(0, map);
        assert_eq!(app.identity(), Some((0, map)));

        // Pre-split: both keys prepare fine; leave one staged across the
        // epoch flip to prove in-flight transactions still complete.
        let staged_tx = 1;
        let prepare = XMsg::Prepare {
            txid: staged_tx,
            ops: vec![sub(&moved, vec![1])],
        };
        let (r, _) = app.execute(ClientId(1), &prepare.encode(), &nd(), false);
        assert_eq!(
            XReply::decode(&r),
            Some(XReply::PrepareOk { txid: staged_tx })
        );

        // Ordered reshard: epoch flips once, duplicates acknowledge.
        let reshard = XMsg::Reshard {
            txid: 2,
            map: plan.new_map,
        };
        for _ in 0..2 {
            let (r, _) = app.execute(ClientId(1), &reshard.encode(), &nd(), false);
            assert_eq!(
                XReply::decode(&r),
                Some(XReply::Resharded { txid: 2, epoch: 1 })
            );
        }

        // A fresh prepare on the moved key is rejected with the new map…
        let late = XMsg::Prepare {
            txid: 3,
            ops: vec![sub(&moved, vec![2])],
        };
        let (r, _) = app.execute(ClientId(1), &late.encode(), &nd(), false);
        assert_eq!(
            XReply::decode(&r),
            Some(XReply::WrongEpoch {
                txid: 3,
                map: plan.new_map
            })
        );
        assert!(!app.is_staged(3));
        // …and so are batches and keyed ops naming it.
        let batch = XMsg::AtomicBatch {
            txid: 4,
            ops: vec![sub(&moved, vec![3])],
        };
        let (r, _) = app.execute(ClientId(1), &batch.encode(), &nd(), false);
        assert!(matches!(
            XReply::decode(&r),
            Some(XReply::WrongEpoch { txid: 4, .. })
        ));
        let keyed = XMsg::KeyedOp {
            txid: 5,
            keys: vec![moved.clone()],
            op: vec![1],
        };
        let (r, _) = app.execute(ClientId(1), &keyed.encode(), &nd(), false);
        assert!(matches!(
            XReply::decode(&r),
            Some(XReply::WrongEpoch { txid: 5, .. })
        ));

        // Still-owned keys keep working, framed or not.
        let ok = XMsg::Prepare {
            txid: 6,
            ops: vec![sub(&kept, vec![4])],
        };
        let (r, _) = app.execute(ClientId(1), &ok.encode(), &nd(), false);
        assert_eq!(XReply::decode(&r), Some(XReply::PrepareOk { txid: 6 }));
        let keyed_ok = XMsg::KeyedOp {
            txid: 7,
            keys: vec![kept.clone()],
            op: vec![2],
        };
        let (r, _) = app.execute(ClientId(1), &keyed_ok.encode(), &nd(), false);
        assert_eq!(
            XReply::decode(&r),
            None,
            "owned keyed op passes through to the inner app"
        );

        // The transaction staged before the split still commits: phase two
        // proceeds regardless of epoch so 2PC never half-applies.
        let (r, _) = app.execute(
            ClientId(1),
            &XMsg::Commit { txid: staged_tx }.encode(),
            &nd(),
            false,
        );
        assert!(matches!(
            XReply::decode(&r),
            Some(XReply::Committed { txid: 1, .. })
        ));
    }

    #[test]
    fn identity_survives_remount_and_keeps_the_newer_epoch() {
        let map = ShardMap::ranged(2);
        let plan = map.split(1);
        let state = test_state();
        let mut app = xapp_over(&state, Box::new(NullApp::new(4)));
        app.set_identity(0, map);
        let reshard = XMsg::Reshard {
            txid: 1,
            map: plan.new_map,
        };
        let _ = app.execute(ClientId(1), &reshard.encode(), &nd(), false);
        drop(app);

        // Crash-restart: the boot-time set_identity carries the *birth*
        // map; the persisted newer epoch must win.
        let mut back = xapp_over(&state, Box::new(NullApp::new(4)));
        assert_eq!(back.identity(), Some((0, plan.new_map)));
        back.set_identity(0, map);
        assert_eq!(
            back.identity(),
            Some((0, plan.new_map)),
            "an older birth map cannot rewind an ordered reshard"
        );
    }

    #[test]
    fn range_install_writes_chunks_and_is_idempotent() {
        let (mut app, state) = kv_xapp();
        // Hand-build the chunk a source export would produce: key 3 = 99
        // written straight into its KV slot.
        let mut rec = [0u8; 16];
        rec[..8].copy_from_slice(&3u64.to_be_bytes());
        rec[8..].copy_from_slice(&99u64.to_be_bytes());
        let install = XMsg::RangeInstall {
            txid: 21,
            chunks: vec![(6 * PAGE + 3 * 16, rec.to_vec())],
        };
        let (r, _) = app.execute(ClientId(1), &install.encode(), &nd(), false);
        assert!(matches!(
            XReply::decode(&r),
            Some(XReply::Committed { txid: 21, .. })
        ));
        assert_eq!(kv_slot_value(&state, 3), 99);
        // Idempotent duplicate: acknowledged, region untouched.
        let before = state.borrow_mut().refresh_digest();
        let (r, _) = app.execute(ClientId(1), &install.encode(), &nd(), false);
        assert!(matches!(
            XReply::decode(&r),
            Some(XReply::Committed { txid: 21, .. })
        ));
        assert_eq!(state.borrow_mut().refresh_digest(), before);
    }

    #[test]
    fn two_replicas_stay_deterministic() {
        // The whole point: two replicas executing the same ordered history
        // produce bit-identical replies and identical tables.
        let (mut a, sa) = kv_xapp();
        let (mut b, sb) = kv_xapp();
        let history = [
            XMsg::Prepare {
                txid: 1,
                ops: vec![sub(b"x", KvApp::op_put(1, 10))],
            },
            XMsg::Prepare {
                txid: 2,
                ops: vec![sub(b"x", KvApp::op_put(1, 20))],
            }, // conflict
            XMsg::Decide {
                txid: 1,
                commit: true,
            },
            XMsg::Commit { txid: 1 },
            XMsg::Abort { txid: 2 },
            XMsg::QueryApplied { txid: 1 },
        ];
        for msg in &history {
            let ro = msg.is_read_only();
            let (ra, _) = a.execute(ClientId(1), &msg.encode(), &nd(), ro);
            let (rb, _) = b.execute(ClientId(1), &msg.encode(), &nd(), ro);
            assert_eq!(ra, rb, "replies diverged on {msg:?}");
        }
        assert_eq!(
            sa.borrow_mut().refresh_digest(),
            sb.borrow_mut().refresh_digest()
        );
        assert!(a.is_applied(1) && !a.is_applied(2));
    }
}
