//! The application upcall interface.
//!
//! "The server part of an application wishing to use PBFT services is
//! expected to initialize the library and then wait for up-calls from it, to
//! service requests and produce replies" (§2.1). The upcalls reproduced here:
//!
//! * [`App::execute`] — execute one ordered operation against the replicated
//!   state region,
//! * [`App::make_nondet`] / [`App::validate_nondet`] — the non-determinism
//!   mechanism of §2.5 (primary attaches data, backups validate it),
//! * [`App::authorize_join`] — the application-level identification buffer
//!   check of the dynamic-membership Join (§3.1),
//! * [`App::on_state_installed`] — invalidate caches after state transfer
//!   (an upcall the original library also needs but the paper shows is easy
//!   to get wrong).

use std::cell::RefCell;
use std::rc::Rc;

use pbft_state::PagedState;

use crate::types::ClientId;

/// Shared handle to the replica's state region. The protocol engine and the
/// application both access the region (the engine for checkpoints and state
/// transfer, the application during execution), mirroring the single shared
/// memory region of the original library.
pub type StateHandle = Rc<RefCell<PagedState>>;

/// Non-deterministic data chosen by the primary and agreed through the
/// pre-prepare (§2.5): a wall-clock timestamp and a random value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NonDet {
    /// The primary's clock at assignment time (nanoseconds).
    pub timestamp_ns: u64,
    /// The primary's random value.
    pub random: u64,
}

/// Execution-side resource metrics reported by the application, charged to
/// virtual time by the driving harness. A null operation reports all zeros —
/// this is exactly what makes "null operations per second" unrepresentative
/// of real applications (§4.2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecMetrics {
    /// CPU microseconds consumed by application logic.
    pub cpu_us: f64,
    /// Synchronous flushes to stable storage (fsync equivalents).
    pub disk_flushes: u64,
    /// Bytes written to stable storage.
    pub disk_write_bytes: u64,
}

impl ExecMetrics {
    /// Accumulate another metrics record.
    pub fn add(&mut self, other: &ExecMetrics) {
        self.cpu_us += other.cpu_us;
        self.disk_flushes += other.disk_flushes;
        self.disk_write_bytes += other.disk_write_bytes;
    }
}

/// The replicated application.
pub trait App {
    /// Execute one ordered operation. `nondet` is the agreed
    /// non-deterministic data; `read_only` marks the §2.1 read-only fast
    /// path (the application must not modify state). Returns the reply body
    /// and resource metrics.
    fn execute(
        &mut self,
        client: ClientId,
        op: &[u8],
        nondet: &NonDet,
        read_only: bool,
    ) -> (Vec<u8>, ExecMetrics);

    /// Execute one ordered operation with access to the library-managed
    /// per-session state (the §3.3.2 subsystem; see [`crate::session`]).
    /// The default ignores the session and calls [`App::execute`] —
    /// stateless applications need not know sessions exist.
    fn execute_with_session(
        &mut self,
        client: ClientId,
        op: &[u8],
        nondet: &NonDet,
        read_only: bool,
        session: &mut crate::session::SessionCtx<'_>,
    ) -> (Vec<u8>, ExecMetrics) {
        let _ = session;
        self.execute(client, op, nondet, read_only)
    }

    /// Produce non-deterministic data (primary-side upcall). The default
    /// uses the local clock and the provided randomness.
    fn make_nondet(&mut self, now_ns: u64, random: u64) -> NonDet {
        NonDet {
            timestamp_ns: now_ns,
            random,
        }
    }

    /// Validate the primary's non-deterministic data (backup-side upcall,
    /// added by the BASE follow-up work; §2.5). `window_ns` comes from
    /// configuration. The default accepts timestamps within the window and
    /// any randomness.
    fn validate_nondet(&self, nondet: &NonDet, now_ns: u64, window_ns: u64) -> bool {
        let delta = now_ns.abs_diff(nondet.timestamp_ns);
        delta <= window_ns
    }

    /// Authorize a joining client from its application-level identification
    /// buffer; returns the application identity (e.g. a user id) to bind to
    /// the session, or `None` to reject (§3.1). Only one session per
    /// application identity may be active. The default accepts everybody,
    /// binding the identity to the buffer itself.
    fn authorize_join(&mut self, idbuf: &[u8]) -> Option<Vec<u8>> {
        Some(idbuf.to_vec())
    }

    /// Called after the engine installs pages via state transfer or rollback
    /// so the application can drop caches derived from state contents.
    fn on_state_installed(&mut self) {}
}

/// The null application: empty execution, used for the paper's §4.1
/// benchmarks. The reply body size is configurable (the paper's experiments
/// use equal request and reply sizes).
#[derive(Debug)]
pub struct NullApp {
    reply_size: usize,
    executed: u64,
}

impl NullApp {
    /// Create a null app whose replies are `reply_size` bytes.
    pub fn new(reply_size: usize) -> Self {
        NullApp {
            reply_size,
            executed: 0,
        }
    }

    /// Number of operations executed.
    pub fn executed(&self) -> u64 {
        self.executed
    }
}

impl App for NullApp {
    fn execute(
        &mut self,
        _client: ClientId,
        _op: &[u8],
        _nondet: &NonDet,
        _read_only: bool,
    ) -> (Vec<u8>, ExecMetrics) {
        self.executed += 1;
        (vec![0u8; self.reply_size], ExecMetrics::default())
    }
}

/// A tiny key-value application over the state region, used by tests to give
/// executions real state effects (so checkpoints and state transfer move
/// actual data). Ops: `put <k8> <v8>` / `get <k8>` over fixed 8-byte keys,
/// stored at `hash(key) % slots` in the app section.
#[derive(Debug)]
pub struct KvApp {
    state: StateHandle,
    base: u64,
    slots: u64,
}

impl KvApp {
    /// Operation encoding for `put`.
    pub fn op_put(key: u64, value: u64) -> Vec<u8> {
        let mut v = vec![b'p'];
        v.extend_from_slice(&key.to_be_bytes());
        v.extend_from_slice(&value.to_be_bytes());
        v
    }

    /// Operation encoding for `get`.
    pub fn op_get(key: u64) -> Vec<u8> {
        let mut v = vec![b'g'];
        v.extend_from_slice(&key.to_be_bytes());
        v
    }

    /// Create a KvApp storing slots starting at byte `base` of the region.
    pub fn new(state: StateHandle, base: u64, slots: u64) -> Self {
        KvApp { state, base, slots }
    }

    fn slot_offset(&self, key: u64) -> u64 {
        self.base + (key % self.slots) * 16
    }
}

impl App for KvApp {
    fn execute(
        &mut self,
        _client: ClientId,
        op: &[u8],
        _nondet: &NonDet,
        read_only: bool,
    ) -> (Vec<u8>, ExecMetrics) {
        let metrics = ExecMetrics {
            cpu_us: 1.0,
            ..Default::default()
        };
        if op.len() < 9 {
            return (b"err".to_vec(), metrics);
        }
        let key = u64::from_be_bytes(op[1..9].try_into().expect("8 bytes"));
        let off = self.slot_offset(key);
        match op[0] {
            b'p' if !read_only && op.len() >= 17 => {
                let mut st = self.state.borrow_mut();
                let mut rec = [0u8; 16];
                rec[..8].copy_from_slice(&key.to_be_bytes());
                rec[8..].copy_from_slice(&op[9..17]);
                st.modify(off, 16).expect("in-bounds slot");
                st.write(off, &rec).expect("modified slot");
                (b"ok".to_vec(), metrics)
            }
            b'g' => {
                let st = self.state.borrow();
                let rec = st.read_vec(off, 16).expect("in-bounds slot");
                (rec, metrics)
            }
            _ => (b"err".to_vec(), metrics),
        }
    }
}

/// A demonstration of the §3.3.2 session-state subsystem: each session
/// owns a counter in library-managed state. Ops: `incr` bumps and returns
/// the counter; `read` returns it (usable on the read-only path); `reset`
/// clears it. A fresh session always starts from zero — the library clears
/// session state on Leave and on session takeover.
#[derive(Debug, Default)]
pub struct SessionCounterApp;

impl SessionCounterApp {
    fn counter(session: &crate::session::SessionCtx<'_>) -> u64 {
        let bytes = session.get();
        if bytes.len() == 8 {
            u64::from_be_bytes(bytes.try_into().expect("8 bytes"))
        } else {
            0
        }
    }
}

impl App for SessionCounterApp {
    fn execute(
        &mut self,
        _client: ClientId,
        _op: &[u8],
        _nondet: &NonDet,
        _read_only: bool,
    ) -> (Vec<u8>, ExecMetrics) {
        (
            b"err: session app requires session execution".to_vec(),
            ExecMetrics::default(),
        )
    }

    fn execute_with_session(
        &mut self,
        _client: ClientId,
        op: &[u8],
        _nondet: &NonDet,
        read_only: bool,
        session: &mut crate::session::SessionCtx<'_>,
    ) -> (Vec<u8>, ExecMetrics) {
        let metrics = ExecMetrics {
            cpu_us: 1.0,
            ..Default::default()
        };
        let reply = match op {
            b"incr" if !read_only => {
                let next = Self::counter(session) + 1;
                match session.put(&next.to_be_bytes()) {
                    Ok(()) => next.to_be_bytes().to_vec(),
                    Err(e) => format!("err: {e}").into_bytes(),
                }
            }
            b"read" => Self::counter(session).to_be_bytes().to_vec(),
            b"reset" if !read_only => match session.clear() {
                Ok(()) => 0u64.to_be_bytes().to_vec(),
                Err(e) => format!("err: {e}").into_bytes(),
            },
            _ => b"err: unknown op".to_vec(),
        };
        (reply, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle(pages: usize) -> StateHandle {
        Rc::new(RefCell::new(PagedState::new(pages)))
    }

    #[test]
    fn null_app_reply_size() {
        let mut app = NullApp::new(128);
        let (reply, m) = app.execute(ClientId(1), b"x", &NonDet::default(), false);
        assert_eq!(reply.len(), 128);
        assert_eq!(m, ExecMetrics::default());
        assert_eq!(app.executed(), 1);
    }

    #[test]
    fn kv_put_get() {
        let st = handle(4);
        let mut app = KvApp::new(st.clone(), 0, 32);
        let (r, _) = app.execute(
            ClientId(1),
            &KvApp::op_put(5, 99),
            &NonDet::default(),
            false,
        );
        assert_eq!(r, b"ok");
        let (r, _) = app.execute(ClientId(1), &KvApp::op_get(5), &NonDet::default(), true);
        assert_eq!(u64::from_be_bytes(r[8..16].try_into().unwrap()), 99);
        // State region actually changed.
        assert!(st.borrow().dirty_pages() > 0);
    }

    #[test]
    fn kv_rejects_malformed() {
        let mut app = KvApp::new(handle(1), 0, 4);
        let (r, _) = app.execute(ClientId(1), b"zz", &NonDet::default(), false);
        assert_eq!(r, b"err");
        // put refused on the read-only path
        let (r, _) = app.execute(ClientId(1), &KvApp::op_put(1, 1), &NonDet::default(), true);
        assert_eq!(r, b"err");
    }

    #[test]
    fn default_nondet_validation_window() {
        let app = NullApp::new(0);
        let nd = NonDet {
            timestamp_ns: 1_000_000,
            random: 5,
        };
        assert!(app.validate_nondet(&nd, 1_100_000, 200_000));
        assert!(!app.validate_nondet(&nd, 2_000_000, 200_000));
        // Symmetric: primary clock ahead of ours.
        assert!(app.validate_nondet(&nd, 900_000, 200_000));
    }

    #[test]
    fn default_join_authorization_accepts() {
        let mut app = NullApp::new(0);
        assert_eq!(app.authorize_join(b"alice"), Some(b"alice".to_vec()));
    }

    #[test]
    fn session_counter_app_counts_per_session() {
        use crate::session::{SessionCtx, SessionStore};
        let mut app = SessionCounterApp;
        let mut store = SessionStore::new();
        for expect in 1..=3u64 {
            let mut ctx = SessionCtx::new(&mut store, ClientId(1), false);
            let (r, _) =
                app.execute_with_session(ClientId(1), b"incr", &NonDet::default(), false, &mut ctx);
            assert_eq!(r, expect.to_be_bytes());
        }
        // A different session counts separately.
        let mut ctx = SessionCtx::new(&mut store, ClientId(2), false);
        let (r, _) =
            app.execute_with_session(ClientId(2), b"incr", &NonDet::default(), false, &mut ctx);
        assert_eq!(r, 1u64.to_be_bytes());
        // Read on the read-only path.
        let mut ctx = SessionCtx::new(&mut store, ClientId(1), true);
        let (r, _) =
            app.execute_with_session(ClientId(1), b"read", &NonDet::default(), true, &mut ctx);
        assert_eq!(r, 3u64.to_be_bytes());
        assert!(!ctx.is_dirty());
        // incr is rejected on the read-only path (the app guards it).
        let mut ctx = SessionCtx::new(&mut store, ClientId(1), true);
        let (r, _) =
            app.execute_with_session(ClientId(1), b"incr", &NonDet::default(), true, &mut ctx);
        assert!(r.starts_with(b"err"));
    }

    #[test]
    fn exec_metrics_accumulate() {
        let mut a = ExecMetrics {
            cpu_us: 1.0,
            disk_flushes: 1,
            disk_write_bytes: 10,
        };
        a.add(&ExecMetrics {
            cpu_us: 2.0,
            disk_flushes: 3,
            disk_write_bytes: 5,
        });
        assert_eq!(a.disk_flushes, 4);
        assert_eq!(a.disk_write_bytes, 15);
        assert!((a.cpu_us - 3.0).abs() < 1e-9);
    }
}
