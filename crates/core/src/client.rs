//! The PBFT client engine (sans-io).
//!
//! Implements the client side of §2.1: requests are sent to the primary
//! (or multicast to all replicas when big), replies are collected until a
//! quorum of matching results arrives — f+1 stable replies, or 2f+1
//! tentative/read-only replies — and unanswered requests are retransmitted
//! to the whole group. The client also runs the blind NewKey retransmission
//! timer of §2.3 and, in dynamic deployments, the two-phase Join of §3.1.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use pbft_crypto::challenge::{make_response, Challenge};
use pbft_crypto::Digest;

use crate::config::{AuthMode, PbftConfig};
use crate::keys::ClientKeys;
use crate::messages::{
    AuthTag, Envelope, Message, NewKeyMsg, Operation, ReplyMsg, RequestMsg, Sender,
};
use crate::output::{HandleResult, NetTarget, Output, TimerKind};
use crate::routing::{RouteError, ShardMap};
use crate::types::{ClientId, NetAddr, ReplicaId, View};

/// Events surfaced to the application driving the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// The dynamic Join completed; the service assigned this id.
    Joined(ClientId),
    /// The dynamic Join was denied.
    JoinDenied(String),
    /// A request completed with a quorum-certified result.
    ReplyDelivered {
        /// The request's client timestamp.
        timestamp: u64,
        /// The certified result bytes.
        result: Vec<u8>,
        /// Nanoseconds between first send and quorum.
        latency_ns: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum JoinState {
    /// Static membership or join already complete.
    Member,
    /// Phase-one Join sent; waiting for f+1 matching challenges.
    AwaitingChallenge,
    /// Phase-two sent; waiting for the admission verdict.
    AwaitingAdmission,
}

#[derive(Debug)]
struct Outstanding {
    req: RequestMsg,
    sent_ns: u64,
    big: bool,
    /// Per-replica replies: result digest + tentative flag.
    replies: HashMap<ReplicaId, (Digest, bool)>,
    /// First full result seen per digest (to hand to the application).
    results: HashMap<Digest, Vec<u8>>,
}

/// Client metrics for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientMetrics {
    /// Requests completed with a quorum.
    pub completed: u64,
    /// Total latency (ns) across completed requests.
    pub total_latency_ns: u64,
    /// Retransmissions sent.
    pub retransmissions: u64,
}

/// The PBFT client state machine.
pub struct Client {
    cfg: PbftConfig,
    keys: ClientKeys,
    group_seed: u64,
    addr: NetAddr,
    id: ClientId,
    join: JoinState,
    idbuf: Vec<u8>,
    join_nonce: u64,
    timestamp: u64,
    view_guess: View,
    outstanding: Option<Outstanding>,
    queue: VecDeque<(Vec<u8>, bool)>,
    events: Vec<ClientEvent>,
    /// In a sharded deployment, the partition and the group this client's
    /// replica set serves (see [`Client::bind_shard`]).
    shard: Option<(ShardMap, u32)>,
    /// Metrics for throughput harnesses.
    pub metrics: ClientMetrics,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("id", &self.id)
            .field("join", &self.join)
            .field("completed", &self.metrics.completed)
            .finish()
    }
}

impl Client {
    /// A statically configured client (known to all replicas a priori).
    pub fn new_static(cfg: PbftConfig, group_seed: u64, id: ClientId, addr: NetAddr) -> Client {
        let keys = ClientKeys::new(group_seed, id, cfg.n());
        Client {
            cfg,
            keys,
            group_seed,
            addr,
            id,
            join: JoinState::Member,
            idbuf: Vec::new(),
            join_nonce: 0,
            timestamp: 0,
            view_guess: 0,
            outstanding: None,
            queue: VecDeque::new(),
            events: Vec::new(),
            shard: None,
            metrics: ClientMetrics::default(),
        }
    }

    /// A dynamic client that must Join before submitting requests (§3.1).
    /// `identity_seed` individualizes its key pair; `idbuf` is the
    /// application identification buffer (e.g. credentials).
    pub fn new_dynamic(
        cfg: PbftConfig,
        group_seed: u64,
        identity_seed: u64,
        addr: NetAddr,
        idbuf: Vec<u8>,
    ) -> Client {
        // Until an id is assigned, the client's own key pair hangs off its
        // identity seed; replica public keys come from the group config.
        let provisional = ClientId(identity_seed | 0x8000_0000_0000_0000);
        let keys = ClientKeys::new_dynamic(group_seed, identity_seed, provisional, cfg.n());
        Client {
            cfg,
            keys,
            group_seed,
            addr,
            id: provisional,
            join: JoinState::AwaitingChallenge,
            idbuf,
            join_nonce: identity_seed,
            timestamp: 0,
            view_guess: 0,
            outstanding: None,
            queue: VecDeque::new(),
            events: Vec::new(),
            shard: None,
            metrics: ClientMetrics::default(),
        }
    }

    /// The client's current id (provisional until a dynamic join completes).
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Whether the client is a full member (can submit requests).
    pub fn is_member(&self) -> bool {
        self.join == JoinState::Member
    }

    /// Drain surfaced events.
    pub fn take_events(&mut self) -> Vec<ClientEvent> {
        std::mem::take(&mut self.events)
    }

    /// Queue depth (submitted but not yet sent operations).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Whether a request is in flight.
    pub fn has_outstanding(&self) -> bool {
        self.outstanding.is_some()
    }

    /// Called once at startup: distribute session keys (static members) or
    /// begin the Join (dynamic), and arm the blind NewKey timer.
    pub fn on_start(&mut self, now_ns: u64) -> HandleResult {
        let mut res = HandleResult::default();
        match self.join {
            JoinState::Member => self.send_new_key(&mut res),
            JoinState::AwaitingChallenge | JoinState::AwaitingAdmission => {
                self.join = JoinState::AwaitingChallenge;
                self.send_join_phase1(now_ns, &mut res);
            }
        }
        res.outputs.push(Output::SetTimer {
            kind: TimerKind::NewKey,
            delay_ns: self.cfg.newkey_interval_ns,
        });
        res
    }

    /// Submit an application operation. Sends immediately if idle, else
    /// queues (PBFT allows one outstanding request per client).
    pub fn submit(&mut self, op: Vec<u8>, read_only: bool, now_ns: u64) -> HandleResult {
        let mut res = HandleResult::default();
        self.queue.push_back((op, read_only));
        self.pump(now_ns, &mut res);
        res
    }

    /// Bind this client to one group of a sharded deployment: it will only
    /// accept route-aware submissions ([`Client::submit_routed`]) whose keys
    /// the partition assigns to `shard`.
    ///
    /// The binding is advisory plumbing for the transport layer — the
    /// replicas this client's sends reach *are* group `shard` — so the check
    /// catches mis-routed operations before they are ordered by a group that
    /// does not own their keys.
    pub fn bind_shard(&mut self, map: ShardMap, shard: u32) {
        assert!(shard < map.shards(), "shard index out of range");
        self.shard = Some((map, shard));
    }

    /// The shard this client is bound to, if any.
    pub fn bound_shard(&self) -> Option<u32> {
        self.shard.as_ref().map(|(_, s)| *s)
    }

    /// Install a newer [`ShardMap`] epoch on an already-bound client (the
    /// epoch-retry path: a `WrongEpoch` rejection carries the rejecting
    /// group's map). The bound group index is kept — the client still talks
    /// to the same replicas — but routing checks now run against the newer
    /// partition, so keys that moved away are refused as `ForeignShard`
    /// before they reach a group that would reject them anyway. Older or
    /// equal epochs, or an unbound client, are no-ops.
    ///
    /// Returns `true` when the map was actually installed.
    pub fn rebind_shard(&mut self, map: ShardMap) -> bool {
        match &mut self.shard {
            Some((cur, shard)) if map.epoch() > cur.epoch() && *shard < map.shards() => {
                *cur = map;
                true
            }
            _ => false,
        }
    }

    /// Route-aware submission: verify that every shard key of the operation
    /// routes to this client's bound group, then [`Client::submit`].
    ///
    /// Errors are typed ([`RouteError`]): `CrossShard` when the keys span
    /// groups (atomic cross-shard operations must go through the two-phase
    /// commit of [`crate::xshard`] rather than a single group's order),
    /// `ForeignShard` when the operation belongs to a different group than
    /// the one this client talks to, and `NoKeys` when the operation names
    /// no key at all. An unbound client accepts everything (the
    /// single-group deployment is the degenerate one-shard case).
    pub fn submit_routed<K: AsRef<[u8]>>(
        &mut self,
        keys: &[K],
        op: Vec<u8>,
        read_only: bool,
        now_ns: u64,
    ) -> Result<HandleResult, RouteError> {
        if let Some((map, bound)) = &self.shard {
            let key_shard = map.route(keys)?;
            if key_shard != *bound {
                return Err(RouteError::ForeignShard {
                    key_shard,
                    bound_shard: *bound,
                });
            }
        }
        Ok(self.submit(op, read_only, now_ns))
    }

    /// Ask the service to terminate this session (§3.1 Leave).
    pub fn leave(&mut self, now_ns: u64) -> HandleResult {
        let mut res = HandleResult::default();
        if self.join == JoinState::Member {
            let req = self.build_request(Operation::Leave, false);
            self.dispatch_request(req, now_ns, &mut res);
        }
        res
    }

    fn pump(&mut self, now_ns: u64, res: &mut HandleResult) {
        if self.outstanding.is_some() || self.join != JoinState::Member {
            return;
        }
        let Some((op, read_only)) = self.queue.pop_front() else {
            return;
        };
        let req = self.build_request(Operation::App(op), read_only);
        self.dispatch_request(req, now_ns, res);
    }

    fn build_request(&mut self, op: Operation, read_only: bool) -> RequestMsg {
        self.timestamp += 1;
        RequestMsg {
            client: self.id,
            timestamp: self.timestamp,
            read_only,
            reply_addr: self.addr,
            op,
        }
    }

    fn dispatch_request(&mut self, req: RequestMsg, now_ns: u64, res: &mut HandleResult) {
        let big = self.cfg.is_big(req.encoded_len());
        self.outstanding = Some(Outstanding {
            req: req.clone(),
            sent_ns: now_ns,
            big,
            replies: HashMap::new(),
            results: HashMap::new(),
        });
        self.send_request(&req, big, false, res);
        res.outputs.push(Output::SetTimer {
            kind: TimerKind::Retransmit,
            delay_ns: self.cfg.client_retransmit_ns,
        });
    }

    /// Send a request: big requests are multicast to all replicas; others go
    /// to the primary only. On retransmission everything goes to everyone
    /// ("the client is expected to keep retransmitting its request").
    fn send_request(
        &mut self,
        req: &RequestMsg,
        big: bool,
        retransmit: bool,
        res: &mut HandleResult,
    ) {
        let is_join = matches!(
            req.op,
            Operation::JoinPhase1 { .. } | Operation::JoinPhase2 { .. }
        );
        let msg = Message::Request(req.clone());
        let prefix = Envelope::encode_prefix(self.sender(), &msg);
        res.counts.digest_bytes += prefix.len() as u64;
        let auth = if is_join {
            // Joins are always signed: the service has no session key yet.
            res.counts.sign += 1;
            AuthTag::Sig(self.keys.keypair().sign(&prefix))
        } else {
            self.keys
                .seal_request(self.cfg.auth, &prefix, &mut res.counts)
        };
        // Encode-once: every destination shares the same sealed bytes.
        let packet = Arc::new(Envelope::seal(prefix, &auth));
        let env = Arc::new(Envelope {
            sender: self.sender(),
            msg,
            auth,
        });
        if big || retransmit || is_join {
            for i in 0..self.cfg.n() as u32 {
                res.outputs.push(Output::Send {
                    to: NetTarget::Replica(ReplicaId(i)),
                    packet: Arc::clone(&packet),
                    envelope: Arc::clone(&env),
                });
            }
        } else {
            let primary = self.cfg.primary_of(self.view_guess);
            res.outputs.push(Output::Send {
                to: NetTarget::Replica(primary),
                packet,
                envelope: env,
            });
        }
    }

    fn sender(&self) -> Sender {
        match self.join {
            JoinState::Member => Sender::Client(self.id),
            _ => Sender::Anonymous,
        }
    }

    fn send_new_key(&mut self, res: &mut HandleResult) {
        let msg = Message::NewKey(NewKeyMsg {
            client: self.id,
            reply_addr: self.addr,
            keys: self.keys.session_key_bytes(),
        });
        let prefix = Envelope::encode_prefix(Sender::Client(self.id), &msg);
        res.counts.sign += 1;
        let auth = AuthTag::Sig(self.keys.keypair().sign(&prefix));
        let packet = Arc::new(Envelope::seal(prefix, &auth));
        let env = Arc::new(Envelope {
            sender: Sender::Client(self.id),
            msg,
            auth,
        });
        for i in 0..self.cfg.n() as u32 {
            res.outputs.push(Output::Send {
                to: NetTarget::Replica(ReplicaId(i)),
                packet: Arc::clone(&packet),
                envelope: Arc::clone(&env),
            });
        }
    }

    /// Proactive-recovery hook: re-derive this client's session keys
    /// ([`ClientKeys::rekey`]) and redistribute them with a fresh signed
    /// NewKey broadcast. A replica that was just rebooted on the rolling
    /// recovery schedule lost its transient session keys (§2.3); this
    /// re-keys it immediately instead of waiting for the blind NewKey
    /// retransmission timer. No-op for clients still mid-join.
    pub fn redistribute_session_keys(&mut self) -> HandleResult {
        let mut res = HandleResult::default();
        if matches!(self.join, JoinState::Member) {
            self.keys.rekey(self.group_seed, self.id);
            self.send_new_key(&mut res);
        }
        res
    }

    fn send_join_phase1(&mut self, now_ns: u64, res: &mut HandleResult) {
        let op = Operation::JoinPhase1 {
            pubkey: self.keys.keypair().public(),
            nonce: self.join_nonce,
            reply_addr: self.addr,
            idbuf: self.idbuf.clone(),
        };
        // Provisional reply-matching id: the fingerprint prefix.
        let fp = self.keys.keypair().public().fingerprint();
        self.id = ClientId(fp.prefix_u64());
        let req = self.build_request(op, false);
        self.dispatch_request(req, now_ns, res);
    }

    fn send_join_phase2(&mut self, challenge: Challenge, now_ns: u64, res: &mut HandleResult) {
        let fp = self.keys.keypair().public().fingerprint();
        let response = make_response(&challenge, &fp);
        let op = Operation::JoinPhase2 {
            fingerprint: fp,
            response,
        };
        self.join = JoinState::AwaitingAdmission;
        let req = self.build_request(op, false);
        self.dispatch_request(req, now_ns, res);
    }

    /// Handle an incoming packet (replies only; clients ignore the rest).
    pub fn handle_packet(&mut self, packet: &[u8], now_ns: u64) -> HandleResult {
        let mut res = HandleResult::default();
        let Ok((env, prefix_len)) = Envelope::decode(packet) else {
            return res;
        };
        let Message::Reply(reply) = env.msg else {
            return res;
        };
        let Sender::Replica(from) = env.sender else {
            return res;
        };
        if from != reply.replica || from.0 as usize >= self.cfg.n() {
            return res;
        }
        if !self
            .keys
            .verify_reply(from, &packet[..prefix_len], &env.auth, &mut res.counts)
        {
            return res;
        }
        self.on_reply(reply, now_ns, &mut res);
        res
    }

    fn on_reply(&mut self, reply: ReplyMsg, now_ns: u64, res: &mut HandleResult) {
        let Some(out) = &mut self.outstanding else {
            return;
        };
        if reply.client != self.id || reply.timestamp != out.req.timestamp {
            return;
        }
        // Digest-only replies (§2.1 designated-replier optimization) vote
        // with the carried digest; full replies are digested here and also
        // supply the body the quorum certifies.
        let Some(digest) = reply.matching_digest() else {
            return; // malformed digest-only reply
        };
        if !reply.digest_only {
            res.counts.digest_bytes += reply.result.len() as u64;
            out.results
                .entry(digest)
                .or_insert_with(|| reply.result.clone());
        }
        out.replies.insert(reply.replica, (digest, reply.tentative));
        // Quorum rules (§2.1): f+1 matching stable replies, or 2f+1 matching
        // when any of them are tentative (incl. the read-only path).
        let stable_matching = out
            .replies
            .values()
            .filter(|(d, tent)| *d == digest && !tent)
            .count();
        let any_matching = out.replies.values().filter(|(d, _)| *d == digest).count();
        let done = stable_matching >= self.cfg.weak_quorum() || any_matching >= self.cfg.quorum();
        if !done {
            return;
        }
        let Some(result) = out.results.get(&digest).cloned() else {
            // A digest quorum with no body yet: a designated full reply is
            // still in flight (or lost — retransmission recovers it, since
            // replicas answer retransmits with the full body). Keep
            // collecting.
            return;
        };
        let latency_ns = now_ns.saturating_sub(out.sent_ns);
        self.view_guess = self.view_guess.max(reply.view);
        self.outstanding = None;
        res.outputs.push(Output::CancelTimer {
            kind: TimerKind::Retransmit,
        });
        match self.join {
            JoinState::Member => {
                self.metrics.completed += 1;
                self.metrics.total_latency_ns += latency_ns;
                self.events.push(ClientEvent::ReplyDelivered {
                    timestamp: reply.timestamp,
                    result,
                    latency_ns,
                });
                self.pump(now_ns, res);
            }
            JoinState::AwaitingChallenge => {
                if result.len() == 32 {
                    let mut d = [0u8; 32];
                    d.copy_from_slice(&result);
                    self.send_join_phase2(Challenge(Digest(d)), now_ns, res);
                } else {
                    self.join = JoinState::AwaitingChallenge;
                    self.events
                        .push(ClientEvent::JoinDenied("malformed challenge".into()));
                }
            }
            JoinState::AwaitingAdmission => {
                if result.starts_with(b"joined:") && result.len() == 15 {
                    let id = u64::from_be_bytes(result[7..15].try_into().expect("8 bytes"));
                    self.id = ClientId(id);
                    // Derive the real session keys for the assigned id and
                    // distribute them.
                    self.keys.rekey(self.group_seed, self.id);
                    self.join = JoinState::Member;
                    self.timestamp = 0;
                    self.send_new_key(res);
                    self.events.push(ClientEvent::Joined(self.id));
                    self.pump(now_ns, res);
                } else {
                    let reason = String::from_utf8_lossy(&result).into_owned();
                    self.events.push(ClientEvent::JoinDenied(reason));
                }
            }
        }
    }

    /// Handle a timer firing.
    pub fn on_timer(&mut self, kind: TimerKind, _now_ns: u64) -> HandleResult {
        let mut res = HandleResult::default();
        match kind {
            TimerKind::Retransmit => {
                if let Some(out) = &mut self.outstanding {
                    // Castro's read-only fallback: a read-only request that
                    // missed its optimistic 2f+1 quorum (slow, restarted or
                    // key-less replicas) is retransmitted as a *regular*
                    // ordered request, which needs only f+1 stable replies.
                    // Without this, an f = 1 group with two replicas missing
                    // this client's session key can never serve it a
                    // read-only result — and every queued request wedges
                    // behind the one outstanding slot.
                    if out.req.read_only {
                        out.req.read_only = false;
                        // Escalation opens a NEW round: bump the timestamp so
                        // in-flight replies from the abandoned optimistic round
                        // can no longer match `(client, timestamp)` and be
                        // counted toward the ordered quorum — they may carry a
                        // value that was never stable. The higher timestamp
                        // also defeats replica-side duplicate suppression,
                        // which would otherwise resend the cached optimistic
                        // answer instead of ordering the request.
                        self.timestamp += 1;
                        out.req.timestamp = self.timestamp;
                        out.replies.clear();
                        out.results.clear();
                    }
                    let req = out.req.clone();
                    let big = out.big;
                    self.metrics.retransmissions += 1;
                    self.send_request(&req, big, true, &mut res);
                    res.outputs.push(Output::SetTimer {
                        kind: TimerKind::Retransmit,
                        delay_ns: self.cfg.client_retransmit_ns,
                    });
                }
            }
            TimerKind::NewKey => {
                // Blind periodic authenticator retransmission (§2.3).
                if self.join == JoinState::Member && self.cfg.auth == AuthMode::Macs {
                    self.send_new_key(&mut res);
                }
                res.outputs.push(Output::SetTimer {
                    kind: TimerKind::NewKey,
                    delay_ns: self.cfg.newkey_interval_ns,
                });
            }
            _ => {}
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyStore;
    use crate::types::ReplicaId;

    const SEED: u64 = 0x7e57;

    fn cfg() -> PbftConfig {
        PbftConfig::default()
    }

    fn client() -> Client {
        Client::new_static(cfg(), SEED, ClientId(1), 100)
    }

    /// Seal a reply as replica `r` would (keys preinstalled for client 1).
    fn sealed_reply(r: u32, timestamp: u64, result: &[u8], tentative: bool) -> Vec<u8> {
        let store = KeyStore::new_replica(SEED, ReplicaId(r), 4, &[ClientId(1)]);
        let msg = Message::Reply(ReplyMsg {
            view: 0,
            client: ClientId(1),
            timestamp,
            replica: ReplicaId(r),
            tentative,
            digest_only: false,
            result: result.to_vec(),
        });
        let prefix = Envelope::encode_prefix(Sender::Replica(ReplicaId(r)), &msg);
        let mut counts = crate::output::OpCounts::default();
        let auth = store.seal_to_client(AuthMode::Macs, ClientId(1), &prefix, &mut counts);
        Envelope::seal(prefix, &auth)
    }

    #[test]
    fn submit_sends_to_all_when_big() {
        let mut c = client();
        let res = c.submit(vec![0u8; 64], false, 0);
        // allbig default: multicast to all 4 replicas.
        assert_eq!(res.sends().count(), 4);
        assert!(c.has_outstanding());
    }

    #[test]
    fn second_submit_queues() {
        let mut c = client();
        let _ = c.submit(vec![1], false, 0);
        let res = c.submit(vec![2], false, 0);
        assert_eq!(res.sends().count(), 0, "one outstanding request per client");
        assert_eq!(c.queued(), 1);
    }

    #[test]
    fn tentative_replies_need_quorum_of_three() {
        let mut c = client();
        let _ = c.submit(vec![1], false, 0);
        for r in 0..2u32 {
            let res = c.handle_packet(&sealed_reply(r, 1, b"ok", true), 1000);
            drop(res);
            assert!(c.has_outstanding(), "2 tentative replies are not enough");
        }
        let _ = c.handle_packet(&sealed_reply(2, 1, b"ok", true), 2000);
        assert!(
            !c.has_outstanding(),
            "2f+1 matching tentative replies complete"
        );
        let evs = c.take_events();
        assert!(matches!(
            &evs[0],
            ClientEvent::ReplyDelivered { result, timestamp: 1, .. } if result == b"ok"
        ));
        assert_eq!(c.metrics.completed, 1);
    }

    #[test]
    fn stable_replies_need_only_f_plus_one() {
        let mut c = client();
        let _ = c.submit(vec![1], false, 0);
        let _ = c.handle_packet(&sealed_reply(0, 1, b"ok", false), 1000);
        assert!(c.has_outstanding());
        let _ = c.handle_packet(&sealed_reply(1, 1, b"ok", false), 1000);
        assert!(!c.has_outstanding(), "f+1 stable replies complete");
    }

    #[test]
    fn mismatched_results_do_not_complete() {
        let mut c = client();
        let _ = c.submit(vec![1], false, 0);
        let _ = c.handle_packet(&sealed_reply(0, 1, b"yes", false), 1000);
        let _ = c.handle_packet(&sealed_reply(1, 1, b"no", false), 1000);
        assert!(c.has_outstanding(), "divergent results must not certify");
        // A second vote for "yes" completes it.
        let _ = c.handle_packet(&sealed_reply(2, 1, b"yes", false), 1000);
        assert!(!c.has_outstanding());
        let evs = c.take_events();
        assert!(matches!(&evs[0], ClientEvent::ReplyDelivered { result, .. } if result == b"yes"));
    }

    #[test]
    fn stale_timestamp_replies_ignored() {
        let mut c = client();
        let _ = c.submit(vec![1], false, 0);
        for r in 0..3u32 {
            let _ = c.handle_packet(&sealed_reply(r, 99, b"ok", true), 1000);
        }
        assert!(c.has_outstanding(), "replies for another timestamp ignored");
    }

    #[test]
    fn retransmit_goes_to_everyone() {
        let mut c = client();
        let _ = c.submit(vec![1], false, 0);
        let res = c.on_timer(TimerKind::Retransmit, 1_000_000);
        assert_eq!(res.sends().count(), 4);
        assert_eq!(c.metrics.retransmissions, 1);
        // Completion cancels the timer and issues the next queued op.
        let _ = c.submit(vec![2], false, 0);
        for r in 0..3u32 {
            let _ = c.handle_packet(&sealed_reply(r, 1, b"ok", true), 2000);
        }
        assert!(c.has_outstanding(), "queued op dispatched after completion");
        assert_eq!(c.queued(), 0);
    }

    #[test]
    fn escalated_read_ignores_stale_optimistic_replies() {
        let mut c = client();
        let _ = c.submit(b"read".to_vec(), true, 0);
        // The retransmit timer escalates the read-only request to an
        // ordered one (§2.1 fallback). That must open a fresh round.
        let _ = c.on_timer(TimerKind::Retransmit, 1_000_000);
        // 2f+1 late replies from the abandoned optimistic round (old
        // timestamp) arrive afterwards: they must not complete the
        // escalated request — their value was never ordered.
        for r in 0..3u32 {
            let _ = c.handle_packet(&sealed_reply(r, 1, b"stale", true), 2_000_000);
        }
        assert!(
            c.has_outstanding(),
            "stale optimistic replies certified the escalated round"
        );
        // Replies for the escalated round's timestamp complete it.
        for r in 0..3u32 {
            let _ = c.handle_packet(&sealed_reply(r, 2, b"fresh", true), 3_000_000);
        }
        assert!(!c.has_outstanding());
        let evs = c.take_events();
        assert!(
            matches!(&evs[0], ClientEvent::ReplyDelivered { result, .. } if result == b"fresh")
        );
    }

    #[test]
    fn newkey_timer_rebroadcasts_keys() {
        let mut c = client();
        let res = c.on_timer(TimerKind::NewKey, 0);
        assert_eq!(
            res.sends().count(),
            4,
            "blind NewKey to every replica (§2.3)"
        );
        assert!(res
            .sends()
            .all(|(_, env)| matches!(env.msg, Message::NewKey(_))));
    }

    #[test]
    fn bad_reply_auth_ignored() {
        let mut c = client();
        let _ = c.submit(vec![1], false, 0);
        // A reply sealed with the wrong deployment seed fails verification.
        let store = KeyStore::new_replica(SEED ^ 1, ReplicaId(0), 4, &[ClientId(1)]);
        let msg = Message::Reply(ReplyMsg {
            view: 0,
            client: ClientId(1),
            timestamp: 1,
            replica: ReplicaId(0),
            tentative: false,
            digest_only: false,
            result: b"forged".to_vec(),
        });
        let prefix = Envelope::encode_prefix(Sender::Replica(ReplicaId(0)), &msg);
        let mut counts = crate::output::OpCounts::default();
        let auth = store.seal_to_client(AuthMode::Macs, ClientId(1), &prefix, &mut counts);
        let packet = Envelope::seal(prefix, &auth);
        let _ = c.handle_packet(&packet, 1000);
        let _ = c.handle_packet(&sealed_reply(1, 1, b"forged", false), 1000);
        assert!(
            c.has_outstanding(),
            "one bad + one good reply must not certify"
        );
    }

    #[test]
    fn routed_submission_enforces_the_binding() {
        use crate::routing::{RouteError, ShardMap};
        let map = ShardMap::new(4);
        let key = b"row-1".to_vec();
        let home = map.shard_of(&key);
        let mut c = client();
        c.bind_shard(map, home);
        assert_eq!(c.bound_shard(), Some(home));

        // The op's key routes here: accepted and dispatched.
        let res = c
            .submit_routed(std::slice::from_ref(&key), vec![1], false, 0)
            .expect("routes home");
        assert!(res.sends().count() > 0);

        // A key owned by another group is a typed ForeignShard error.
        let foreign = crate::routing::test_key_on_other_shard(&map, &key);
        let err = c
            .submit_routed(std::slice::from_ref(&foreign), vec![2], false, 0)
            .unwrap_err();
        assert!(matches!(err, RouteError::ForeignShard { bound_shard, .. } if bound_shard == home));

        // Keys spanning groups are a typed CrossShard error.
        let err = c
            .submit_routed(&[key, foreign], vec![3], false, 0)
            .unwrap_err();
        assert!(matches!(err, RouteError::CrossShard { .. }));
        assert_eq!(c.queued(), 0, "rejected ops are never queued");
    }

    #[test]
    fn rebind_installs_only_newer_epochs() {
        use crate::routing::ShardMap;
        let map = ShardMap::ranged(2);
        let plan = map.split(0);
        let mut c = client();
        assert!(!c.rebind_shard(plan.new_map), "unbound client: no-op");
        c.bind_shard(map, 1);
        assert!(!c.rebind_shard(map), "equal epoch: no-op");
        assert!(c.rebind_shard(plan.new_map), "newer epoch installs");
        assert_eq!(c.bound_shard(), Some(1), "binding survives the rebind");
        assert!(
            !c.rebind_shard(map),
            "an older map cannot rewind the routing epoch"
        );
        // Routing now runs against the new partition: a key that moved to
        // the new group is refused before it reaches the old owner.
        let moved = (0..4096u64)
            .map(|i| i.to_be_bytes().to_vec())
            .find(|k| plan.moves(k) && plan.new_map.shard_of(k) != 1)
            .expect("some key moved away from shard 1's view");
        assert!(c
            .submit_routed(std::slice::from_ref(&moved), vec![1], false, 0)
            .is_err());
    }

    #[test]
    fn unbound_client_routes_everything() {
        let mut c = client();
        assert_eq!(c.bound_shard(), None);
        let res = c
            .submit_routed(&[b"any".as_slice()], vec![1], false, 0)
            .expect("unbound accepts");
        assert!(res.sends().count() > 0);
    }

    #[test]
    fn dynamic_client_starts_with_join() {
        let mut c = Client::new_dynamic(cfg(), SEED, 9, 200, b"user:pw".to_vec());
        assert!(!c.is_member());
        let res = c.on_start(0);
        assert!(res
            .sends()
            .any(|(_, env)| matches!(&env.msg, Message::Request(r)
                if matches!(r.op, Operation::JoinPhase1 { .. }))));
    }
}
