//! Dynamic client membership (paper §3.1).
//!
//! The replicated membership tables: the *redirection table* that maps
//! arbitrary client identifiers to node-table slots, the session table with
//! per-session last-activity timestamps, and the pending two-phase Join
//! attempts. All mutations happen during the execution of totally-ordered
//! Join/Leave system requests with agreed timestamps, so every correct
//! replica holds identical tables; the tables are serialized into the
//! library partition of the replicated state region so that checkpoints
//! cover them and state transfer carries them to recovering replicas.

use std::collections::BTreeMap;

use pbft_crypto::challenge::{make_challenge, verify_response, Challenge, ChallengeResponse};
use pbft_crypto::{Digest, PublicKey};
use pbft_state::{PagedState, Section, StateError};

use crate::types::{ClientId, NetAddr, SeqNum};
use crate::wire::{Dec, Enc, WireError};

/// An active client session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// The assigned client identifier.
    pub client: ClientId,
    /// Application-level identity bound at authorization time (e.g. user id).
    pub app_id: Vec<u8>,
    /// The client's transport address.
    pub addr: NetAddr,
    /// The client's public key.
    pub pubkey: PublicKey,
    /// Timestamp (primary clock) of the session's last executed request —
    /// the basis for stale-session cleanup.
    pub last_active_ns: u64,
}

/// A phase-one Join awaiting its challenge response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingJoin {
    /// The deterministic challenge all replicas derived.
    pub challenge: Challenge,
    /// The claimed public key.
    pub pubkey: PublicKey,
    /// The claimed address (proven by receiving the challenge there).
    pub addr: NetAddr,
    /// Client nonce.
    pub nonce: u64,
    /// Application identification buffer, checked at phase two.
    pub idbuf: Vec<u8>,
}

/// Outcome of a phase-two Join execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinOutcome {
    /// Admitted with this identifier (and possibly a prior session of the
    /// same application identity was terminated).
    Joined {
        /// The newly assigned client id.
        client: ClientId,
        /// A previous session of the same identity that was terminated.
        terminated: Option<ClientId>,
    },
    /// Rejected: unknown/expired attempt, bad response, authorization
    /// failure, or table full with no stale sessions.
    Denied(&'static str),
}

/// The membership tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    capacity: usize,
    next_id: u64,
    /// Redirection table: client id → slot index. Checked *before*
    /// authenticator verification ("the system first checks to see if the
    /// identifier exists in the redirection table before going into the more
    /// lengthy process of verifying its signature or authenticator").
    redirection: BTreeMap<ClientId, u32>,
    slots: Vec<Option<Session>>,
    pending: BTreeMap<Digest, PendingJoin>,
}

impl Membership {
    /// Empty tables with `capacity` session slots.
    pub fn new(capacity: usize) -> Membership {
        Membership {
            capacity,
            next_id: 1_000, // distinct from the static-configuration id range
            redirection: BTreeMap::new(),
            slots: vec![None; capacity],
            pending: BTreeMap::new(),
        }
    }

    /// Cheap pre-authentication membership check via the redirection table.
    pub fn contains(&self, client: ClientId) -> bool {
        self.redirection.contains_key(&client)
    }

    /// Look up a session.
    pub fn session(&self, client: ClientId) -> Option<&Session> {
        let slot = *self.redirection.get(&client)?;
        self.slots.get(slot as usize)?.as_ref()
    }

    /// Number of active sessions.
    pub fn active_sessions(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Pending join attempts.
    pub fn pending_joins(&self) -> usize {
        self.pending.len()
    }

    /// Record a request execution for activity tracking.
    pub fn touch(&mut self, client: ClientId, now_ns: u64) {
        if let Some(slot) = self.redirection.get(&client).copied() {
            if let Some(Some(s)) = self.slots.get_mut(slot as usize) {
                s.last_active_ns = s.last_active_ns.max(now_ns);
            }
        }
    }

    /// Execute a phase-one Join (totally ordered at `seq`): derive and
    /// record the challenge. Identical on every correct replica.
    pub fn phase1(
        &mut self,
        pubkey: PublicKey,
        nonce: u64,
        addr: NetAddr,
        idbuf: Vec<u8>,
        seq: SeqNum,
    ) -> Challenge {
        let fp = pubkey.fingerprint();
        let challenge = make_challenge(&fp, nonce, seq);
        self.pending.insert(
            fp,
            PendingJoin {
                challenge,
                pubkey,
                addr,
                nonce,
                idbuf,
            },
        );
        challenge
    }

    /// Pending join attempt for a fingerprint (used by replicas to verify
    /// phase-two signatures).
    pub fn pending(&self, fingerprint: &Digest) -> Option<&PendingJoin> {
        self.pending.get(fingerprint)
    }

    /// Execute a phase-two Join. `authorize` is the application upcall for
    /// the identification buffer; `now_ns` is the agreed (primary) time used
    /// for stale cleanup; `stale_ns` is the configured staleness threshold.
    pub fn phase2(
        &mut self,
        fingerprint: &Digest,
        response: &ChallengeResponse,
        now_ns: u64,
        stale_ns: u64,
        authorize: &mut dyn FnMut(&[u8]) -> Option<Vec<u8>>,
    ) -> JoinOutcome {
        let Some(pending) = self.pending.get(fingerprint).cloned() else {
            return JoinOutcome::Denied("no pending join for fingerprint");
        };
        let fp = pending.pubkey.fingerprint();
        if !verify_response(&pending.challenge, &fp, response) {
            return JoinOutcome::Denied("bad challenge response");
        }
        let Some(app_id) = authorize(&pending.idbuf) else {
            return JoinOutcome::Denied("authorization rejected");
        };
        // Single session per application identity: terminate any prior one.
        let mut terminated = None;
        let prior: Vec<ClientId> = self
            .slots
            .iter()
            .flatten()
            .filter(|s| s.app_id == app_id)
            .map(|s| s.client)
            .collect();
        for c in prior {
            self.remove(c);
            terminated = Some(c);
        }
        let Some(slot) = self.alloc_slot(now_ns, stale_ns) else {
            return JoinOutcome::Denied("session table full");
        };
        self.pending.remove(fingerprint);
        let client = ClientId(self.next_id);
        self.next_id += 1;
        self.slots[slot as usize] = Some(Session {
            client,
            app_id,
            addr: pending.addr,
            pubkey: pending.pubkey,
            last_active_ns: now_ns,
        });
        self.redirection.insert(client, slot);
        JoinOutcome::Joined { client, terminated }
    }

    /// Execute a Leave: "all further communication with the service is
    /// prohibited for this client".
    pub fn leave(&mut self, client: ClientId) -> bool {
        self.remove(client)
    }

    fn remove(&mut self, client: ClientId) -> bool {
        if let Some(slot) = self.redirection.remove(&client) {
            self.slots[slot as usize] = None;
            true
        } else {
            false
        }
    }

    /// Find a free slot; when full, run the stale-session cleanup of §3.1
    /// ("locate all clients with a last executed request older than the
    /// current join request minus a configurable threshold").
    fn alloc_slot(&mut self, now_ns: u64, stale_ns: u64) -> Option<u32> {
        if let Some(i) = self.slots.iter().position(|s| s.is_none()) {
            return Some(i as u32);
        }
        let cutoff = now_ns.saturating_sub(stale_ns);
        let stale: Vec<ClientId> = self
            .slots
            .iter()
            .flatten()
            .filter(|s| s.last_active_ns < cutoff)
            .map(|s| s.client)
            .collect();
        if stale.is_empty() {
            return None; // "If no such stale sessions are found, the new Join request is denied."
        }
        for c in stale {
            self.remove(c);
        }
        self.slots
            .iter()
            .position(|s| s.is_none())
            .map(|i| i as u32)
    }

    /// Serialize into the library partition of the state region (with the
    /// modify-notification the PBFT contract demands).
    ///
    /// # Errors
    /// Propagates [`StateError`] if the section is too small.
    pub fn persist(&self, section: &Section, state: &mut PagedState) -> Result<(), StateError> {
        let mut e = Enc::new();
        e.u32(self.capacity as u32).u64(self.next_id);
        e.u32(self.slots.len() as u32);
        for slot in &self.slots {
            match slot {
                Some(s) => {
                    e.u8(1)
                        .u64(s.client.0)
                        .bytes(&s.app_id)
                        .u32(s.addr)
                        .raw(&s.pubkey.to_bytes())
                        .u64(s.last_active_ns);
                }
                None => {
                    e.u8(0);
                }
            }
        }
        e.u32(self.pending.len() as u32);
        for (fp, p) in &self.pending {
            e.digest(fp)
                .digest(&p.challenge.0)
                .raw(&p.pubkey.to_bytes())
                .u32(p.addr)
                .u64(p.nonce)
                .bytes(&p.idbuf);
        }
        let bytes = e.into_bytes();
        let mut framed = Enc::new();
        framed.bytes(&bytes);
        let framed = framed.into_bytes();
        section.modify(state, 0, framed.len())?;
        section.write(state, 0, &framed)
    }

    /// Reload from the library partition (after state transfer). Returns the
    /// empty table set if the partition has never been persisted.
    ///
    /// # Errors
    /// Propagates [`StateError`] on a section that cannot be read;
    /// deserialization failures yield [`WireError`].
    pub fn load(
        section: &Section,
        state: &PagedState,
        capacity: usize,
    ) -> Result<Membership, WireError> {
        let mut header = [0u8; 4];
        if section.read(state, 0, &mut header).is_err() {
            return Ok(Membership::new(capacity));
        }
        let len = u32::from_be_bytes(header) as usize;
        if len == 0 {
            return Ok(Membership::new(capacity));
        }
        let mut buf = vec![0u8; len];
        section
            .read(state, 4, &mut buf)
            .map_err(|_| WireError::Truncated)?;
        let mut d = Dec::new(&buf);
        let cap = d.u32()? as usize;
        let next_id = d.u64()?;
        let n_slots = d.u32()? as usize;
        if n_slots > 1_000_000 {
            return Err(WireError::BadLength(n_slots as u64));
        }
        let mut slots = Vec::with_capacity(n_slots);
        let mut redirection = BTreeMap::new();
        for i in 0..n_slots {
            match d.u8()? {
                0 => slots.push(None),
                1 => {
                    let client = ClientId(d.u64()?);
                    let app_id = d.bytes()?;
                    let addr = d.u32()?;
                    let pk: [u8; 16] = d.raw(16)?.try_into().expect("16 bytes");
                    let last_active_ns = d.u64()?;
                    redirection.insert(client, i as u32);
                    slots.push(Some(Session {
                        client,
                        app_id,
                        addr,
                        pubkey: PublicKey::from_bytes(&pk),
                        last_active_ns,
                    }));
                }
                t => return Err(WireError::BadTag(t)),
            }
        }
        let n_pending = d.u32()? as usize;
        if n_pending > 1_000_000 {
            return Err(WireError::BadLength(n_pending as u64));
        }
        let mut pending = BTreeMap::new();
        for _ in 0..n_pending {
            let fp = d.digest()?;
            let challenge = Challenge(d.digest()?);
            let pk: [u8; 16] = d.raw(16)?.try_into().expect("16 bytes");
            let addr = d.u32()?;
            let nonce = d.u64()?;
            let idbuf = d.bytes()?;
            pending.insert(
                fp,
                PendingJoin {
                    challenge,
                    pubkey: PublicKey::from_bytes(&pk),
                    addr,
                    nonce,
                    idbuf,
                },
            );
        }
        d.finish()?;
        Ok(Membership {
            capacity: cap,
            next_id,
            redirection,
            slots,
            pending,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbft_crypto::challenge::make_response;
    use pbft_crypto::KeyPair;

    fn pk(seed: u64) -> PublicKey {
        KeyPair::generate(seed).public()
    }

    fn join(m: &mut Membership, seed: u64, now: u64) -> JoinOutcome {
        let pubkey = pk(seed);
        let fp = pubkey.fingerprint();
        let ch = m.phase1(
            pubkey,
            seed,
            seed as NetAddr,
            format!("user{seed}").into_bytes(),
            10,
        );
        let resp = make_response(&ch, &fp);
        m.phase2(&fp, &resp, now, 1_000, &mut |idbuf| Some(idbuf.to_vec()))
    }

    #[test]
    fn two_phase_join_admits() {
        let mut m = Membership::new(4);
        match join(&mut m, 1, 100) {
            JoinOutcome::Joined { client, terminated } => {
                assert_eq!(client, ClientId(1000));
                assert_eq!(terminated, None);
                assert!(m.contains(client));
                assert_eq!(m.session(client).expect("session").addr, 1);
            }
            other => panic!("expected join, got {other:?}"),
        }
        assert_eq!(m.active_sessions(), 1);
        assert_eq!(m.pending_joins(), 0);
    }

    #[test]
    fn wrong_response_denied() {
        let mut m = Membership::new(4);
        let pubkey = pk(2);
        let fp = pubkey.fingerprint();
        let _ch = m.phase1(pubkey, 7, 3, b"id".to_vec(), 5);
        let bad = ChallengeResponse(Digest::of(b"forged"));
        assert_eq!(
            m.phase2(&fp, &bad, 0, 0, &mut |_| Some(vec![])),
            JoinOutcome::Denied("bad challenge response")
        );
    }

    #[test]
    fn unknown_fingerprint_denied() {
        let mut m = Membership::new(4);
        let resp = ChallengeResponse(Digest::of(b"x"));
        assert!(matches!(
            m.phase2(&Digest::of(b"nope"), &resp, 0, 0, &mut |_| Some(vec![])),
            JoinOutcome::Denied(_)
        ));
    }

    #[test]
    fn authorization_can_reject() {
        let mut m = Membership::new(4);
        let pubkey = pk(3);
        let fp = pubkey.fingerprint();
        let ch = m.phase1(pubkey, 1, 1, b"bad-credentials".to_vec(), 5);
        let resp = make_response(&ch, &fp);
        assert_eq!(
            m.phase2(&fp, &resp, 0, 0, &mut |_| None),
            JoinOutcome::Denied("authorization rejected")
        );
    }

    #[test]
    fn same_identity_terminates_previous_session() {
        let mut m = Membership::new(4);
        let pubkey = pk(4);
        let fp = pubkey.fingerprint();
        let ch = m.phase1(pubkey, 1, 1, b"alice".to_vec(), 5);
        let resp = make_response(&ch, &fp);
        let first = match m.phase2(&fp, &resp, 10, 1000, &mut |i| Some(i.to_vec())) {
            JoinOutcome::Joined { client, .. } => client,
            o => panic!("{o:?}"),
        };
        // Second join with a different key but the same app identity.
        let pubkey2 = pk(5);
        let fp2 = pubkey2.fingerprint();
        let ch2 = m.phase1(pubkey2, 2, 2, b"alice".to_vec(), 6);
        let resp2 = make_response(&ch2, &fp2);
        match m.phase2(&fp2, &resp2, 20, 1000, &mut |i| Some(i.to_vec())) {
            JoinOutcome::Joined { client, terminated } => {
                assert_eq!(terminated, Some(first));
                assert!(!m.contains(first), "old session terminated");
                assert!(m.contains(client));
            }
            o => panic!("{o:?}"),
        }
        assert_eq!(m.active_sessions(), 1);
    }

    #[test]
    fn full_table_cleans_stale_sessions() {
        let mut m = Membership::new(2);
        assert!(matches!(join(&mut m, 1, 100), JoinOutcome::Joined { .. }));
        assert!(matches!(join(&mut m, 2, 200), JoinOutcome::Joined { .. }));
        assert_eq!(m.active_sessions(), 2);
        // Table full; both sessions are recent relative to stale_ns=1000 at
        // now=500 → denied.
        let pubkey = pk(3);
        let fp = pubkey.fingerprint();
        let ch = m.phase1(pubkey, 3, 3, b"user3".to_vec(), 7);
        let resp = make_response(&ch, &fp);
        assert_eq!(
            m.phase2(&fp, &resp, 500, 1_000, &mut |i| Some(i.to_vec())),
            JoinOutcome::Denied("session table full")
        );
        // Much later, both are stale → cleaned, join admitted.
        let ch = m.phase1(pk(3), 3, 3, b"user3".to_vec(), 8);
        let resp = make_response(&ch, &pk(3).fingerprint());
        assert!(matches!(
            m.phase2(&pk(3).fingerprint(), &resp, 5_000, 1_000, &mut |i| Some(
                i.to_vec()
            )),
            JoinOutcome::Joined { .. }
        ));
        assert_eq!(m.active_sessions(), 1, "both stale sessions were cleared");
        let _ = ch;
    }

    #[test]
    fn leave_removes_session() {
        let mut m = Membership::new(4);
        let client = match join(&mut m, 1, 100) {
            JoinOutcome::Joined { client, .. } => client,
            o => panic!("{o:?}"),
        };
        assert!(m.leave(client));
        assert!(!m.contains(client));
        assert!(!m.leave(client), "second leave is a no-op");
    }

    #[test]
    fn touch_updates_last_active() {
        let mut m = Membership::new(4);
        let client = match join(&mut m, 1, 100) {
            JoinOutcome::Joined { client, .. } => client,
            o => panic!("{o:?}"),
        };
        m.touch(client, 900);
        assert_eq!(m.session(client).expect("session").last_active_ns, 900);
        m.touch(client, 500); // never goes backwards
        assert_eq!(m.session(client).expect("session").last_active_ns, 900);
        m.touch(ClientId(99), 1); // unknown client ignored
    }

    #[test]
    fn persist_load_roundtrip() {
        let mut m = Membership::new(4);
        let _ = join(&mut m, 1, 100);
        let _ = join(&mut m, 2, 200);
        // Leave one pending join in flight.
        m.phase1(pk(9), 9, 9, b"pending".to_vec(), 33);

        let mut state = PagedState::new(4);
        let section = Section {
            base: 0,
            len: 2 * 4096,
        };
        m.persist(&section, &mut state).expect("persist");
        let loaded = Membership::load(&section, &state, 4).expect("load");
        assert_eq!(loaded, m);
    }

    #[test]
    fn load_from_fresh_state_is_empty() {
        let state = PagedState::new(2);
        let section = Section { base: 0, len: 4096 };
        let m = Membership::load(&section, &state, 8).expect("load");
        assert_eq!(m.active_sessions(), 0);
        assert_eq!(m.pending_joins(), 0);
    }

    #[test]
    fn identical_operations_identical_tables() {
        // The determinism property every replica relies on.
        let mut a = Membership::new(4);
        let mut b = Membership::new(4);
        for m in [&mut a, &mut b] {
            let _ = join(m, 1, 100);
            let _ = join(m, 2, 200);
            m.touch(ClientId(1000), 300);
        }
        assert_eq!(a, b);
        let mut sa = PagedState::new(2);
        let mut sb = PagedState::new(2);
        let sec = Section { base: 0, len: 4096 };
        a.persist(&sec, &mut sa).expect("persist");
        b.persist(&sec, &mut sb).expect("persist");
        assert_eq!(sa.refresh_digest(), sb.refresh_digest());
    }
}
