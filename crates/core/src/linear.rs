//! A linear-communication, rotating-leader consensus engine.
//!
//! [`LinearReplica`] is the second [`ConsensusEngine`] in this crate,
//! built to make the paper's quadratic-PBFT cost measurable against the
//! HotStuff/Tendermint-style alternative the later literature settled on.
//! It reuses the PBFT replica wholesale — the message log, checkpointing,
//! Merkle state transfer, recovery statuses, batching, and the wire format
//! are all shared — and changes only how votes travel:
//!
//! - **Agreement is leader-aggregated.** Backups send their prepare vote to
//!   the current leader only. When the leader holds 2f backup prepares it
//!   broadcasts a [`PrepareQC`](crate::messages::Message::PrepareQC)
//!   certifying the quorum; backups answer with a commit vote, again to the
//!   leader only, and a
//!   [`CommitQC`](crate::messages::Message::CommitQC) broadcast completes
//!   the slot. Per slot this is ~5(n−1) messages — O(n) — versus PBFT's
//!   pre-prepare multicast plus two all-to-all vote rounds — O(n²).
//! - **Rotation is leader-directed.** A view-change vote goes only to the
//!   incoming leader (`primary_of(target)`), which broadcasts the same
//!   new-view installation message PBFT uses once it holds a 2f+1 quorum:
//!   O(n) messages per rotation instead of O(n²). Timer management,
//!   exponential backoff, and the new-view safety computation (set "O")
//!   are inherited unchanged.
//!
//! # Trust model
//!
//! Certificate voter lists are **unattested**: a QC names its voters but
//! does not carry their MACs/signatures. This is the same documented
//! simplification the repo makes for the prepared certificates inside
//! view-change messages, and it is sound for the crash/partition/timing
//! fault model the conformance and propcheck suites exercise. Because of
//! it, QCs are accepted from any authenticated group member — which is
//! also what lets the status-driven recovery path replay certificates on
//! behalf of a crashed leader.
//!
//! # What is inherited verbatim
//!
//! Client interaction (including tentative execution and the read-only fast
//! path), checkpoint attestations, state transfer, the §2.3 restart
//! recovery protocol, dynamic membership, and the cross-shard layer all
//! operate above the agreement substrate and work identically under either
//! engine. That is the point of the [`ConsensusEngine`] split.

use pbft_crypto::Digest;

use crate::app::{App, StateHandle};
use crate::config::PbftConfig;
use crate::engine::ConsensusEngine;
use crate::messages::{CommitMsg, Message, QuorumCertMsg};
use crate::output::{HandleResult, NetTarget, TimerKind};
use crate::replica::{Replica, ReplicaMetrics};
use crate::types::{ClientId, ReplicaId, SeqNum, View};

/// The linear-communication engine: a [`Replica`] with leader-aggregated
/// vote flow. See the [module docs](self) for the protocol delta.
///
/// Dereferences to [`Replica`], so every inspection helper the test
/// harness uses on the PBFT engine works here too.
pub struct LinearReplica(Replica);

impl LinearReplica {
    /// Create a linear-mode replica. Parameters are those of
    /// [`Replica::new`].
    pub fn new(
        cfg: PbftConfig,
        group_seed: u64,
        me: ReplicaId,
        state: StateHandle,
        app: Box<dyn App>,
        preinstalled_clients: &[ClientId],
    ) -> LinearReplica {
        let mut r = Replica::new(cfg, group_seed, me, state, app, preinstalled_clients);
        r.linear = true;
        LinearReplica(r)
    }

    /// The wrapped replica.
    pub fn inner(&self) -> &Replica {
        &self.0
    }

    /// The wrapped replica, mutable.
    pub fn inner_mut(&mut self) -> &mut Replica {
        &mut self.0
    }
}

impl std::ops::Deref for LinearReplica {
    type Target = Replica;

    fn deref(&self) -> &Replica {
        &self.0
    }
}

impl std::ops::DerefMut for LinearReplica {
    fn deref_mut(&mut self) -> &mut Replica {
        &mut self.0
    }
}

impl std::fmt::Debug for LinearReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("LinearReplica").field(&self.0).finish()
    }
}

impl ConsensusEngine for LinearReplica {
    fn build(
        cfg: PbftConfig,
        group_seed: u64,
        me: ReplicaId,
        state: StateHandle,
        app: Box<dyn App>,
        preinstalled_clients: &[ClientId],
    ) -> Self {
        LinearReplica::new(cfg, group_seed, me, state, app, preinstalled_clients)
    }

    fn engine_name() -> &'static str {
        "linear"
    }

    fn id(&self) -> ReplicaId {
        self.0.id()
    }

    fn on_start(&mut self, now_ns: u64, restarted: bool) -> HandleResult {
        self.0.on_start(now_ns, restarted)
    }

    fn handle_packet(&mut self, packet: &[u8], now_ns: u64) -> HandleResult {
        self.0.handle_packet(packet, now_ns)
    }

    fn on_timer(&mut self, kind: TimerKind, now_ns: u64) -> HandleResult {
        self.0.on_timer(kind, now_ns)
    }

    fn state_handle(&self) -> StateHandle {
        self.0.state_handle()
    }

    fn view(&self) -> View {
        self.0.view()
    }

    fn last_executed(&self) -> SeqNum {
        self.0.last_executed()
    }

    fn stable_checkpoint(&self) -> (SeqNum, Digest) {
        self.0.stable_checkpoint()
    }

    fn exec_chain(&self) -> Digest {
        self.0.exec_chain()
    }

    fn metrics(&self) -> &ReplicaMetrics {
        self.0.metrics()
    }

    fn force_suspect(&mut self, now_ns: u64) -> HandleResult {
        self.0.force_suspect(now_ns)
    }

    fn is_recovering(&self) -> bool {
        self.0.is_recovering()
    }

    fn in_view_change(&self) -> bool {
        self.0.in_view_change()
    }
}

// The linear-mode certificate handlers live on `Replica` itself (gated on
// the `linear` flag) so they can reach the shared log/execution machinery.
impl Replica {
    /// Handle the leader's prepare certificate: adopt the quorum, mark the
    /// slot prepared, and answer with a commit vote addressed to the leader.
    pub(crate) fn on_prepare_qc(&mut self, qc: QuorumCertMsg, now_ns: u64, res: &mut HandleResult) {
        if !self.linear
            || self.in_view_change
            || qc.view != self.view
            || !self.log.in_watermarks(qc.seq)
        {
            return;
        }
        let primary = self.cfg.primary_of(qc.view);
        let needed = 2 * self.cfg.f;
        if qc.voters.iter().filter(|&&r| r != primary).count() < needed {
            return;
        }
        let me = self.id();
        let Some(e) = self.log.entry_for(qc.seq, qc.view, qc.digest) else {
            return; // digest conflict: certified minority, ignore
        };
        let newly_prepared = !e.prepared;
        e.prepares.extend(qc.voters.iter().copied());
        e.prepared = true;
        e.commits.insert(me);
        let committed = e.committed;
        if me != primary && !committed {
            // (Re)send the commit vote even for a duplicate certificate: a
            // retransmitted PrepareQC doubles as the leader's request for
            // commit votes lost in transit.
            let commit = CommitMsg {
                view: qc.view,
                seq: qc.seq,
                digest: qc.digest,
                replica: me,
            };
            self.send_authenticated(NetTarget::Replica(primary), Message::Commit(commit), res);
        }
        if newly_prepared && self.cfg.tentative_execution {
            self.try_execute(now_ns, res);
        }
        self.update_committed(qc.seq, now_ns, res);
    }

    /// Handle the leader's commit certificate: adopt the quorum and run the
    /// shared committed-local path (execution, reply upgrade, checkpoints).
    pub(crate) fn on_commit_qc(&mut self, qc: QuorumCertMsg, now_ns: u64, res: &mut HandleResult) {
        if !self.linear
            || self.in_view_change
            || qc.view != self.view
            || !self.log.in_watermarks(qc.seq)
        {
            return;
        }
        if qc.voters.len() < self.cfg.quorum() {
            return;
        }
        let Some(e) = self.log.entry_for(qc.seq, qc.view, qc.digest) else {
            return;
        };
        // A commit quorum implies the prepare quorum, so mark the slot
        // prepared even if the PrepareQC itself was lost —
        // `update_committed` insists on it.
        e.prepared = true;
        e.commits.extend(qc.voters.iter().copied());
        self.update_committed(qc.seq, now_ns, res);
    }
}

#[cfg(test)]
mod tests {
    use std::cell::RefCell;
    use std::rc::Rc;

    use super::*;
    use crate::app::NullApp;
    use crate::messages::{Envelope, Sender};
    use crate::output::Output;
    use crate::replica::LIB_REGION_PAGES;

    fn engine(i: u32) -> LinearReplica {
        let cfg = PbftConfig::default();
        let pages = LIB_REGION_PAGES as usize + 4;
        let state = Rc::new(RefCell::new(pbft_state::PagedState::new(pages)));
        LinearReplica::new(
            cfg,
            7,
            ReplicaId(i),
            state,
            Box::new(NullApp::new(64)),
            &[ClientId(1)],
        )
    }

    fn sent_names(res: &HandleResult) -> Vec<(&'static str, NetTarget)> {
        res.outputs
            .iter()
            .filter_map(|o| match o {
                Output::Send { to, envelope, .. } => Some((envelope.msg.name(), *to)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn flag_is_set_and_engine_names_differ() {
        let e = engine(1);
        assert!(e.inner().is_linear());
        assert_eq!(LinearReplica::engine_name(), "linear");
        assert_eq!(<Replica as ConsensusEngine>::engine_name(), "pbft");
    }

    #[test]
    fn prepare_qc_marks_prepared_and_votes_commit_to_leader() {
        let mut e = engine(1);
        let digest = pbft_crypto::Digest::of(b"batch");
        // The slot must exist within watermarks; fabricate the log entry the
        // way a pre-prepare would.
        e.inner_mut().log.entry_for(3, 0, digest).expect("entry");
        let qc = QuorumCertMsg {
            view: 0,
            seq: 3,
            digest,
            voters: vec![ReplicaId(2), ReplicaId(3)],
        };
        let mut res = HandleResult::default();
        e.inner_mut().on_prepare_qc(qc, 0, &mut res);
        let sends = sent_names(&res);
        assert_eq!(
            sends,
            vec![("commit", NetTarget::Replica(ReplicaId(0)))],
            "one commit vote, addressed to the leader"
        );
    }

    #[test]
    fn commit_qc_with_subquorum_votes_is_ignored() {
        let mut e = engine(1);
        let digest = pbft_crypto::Digest::of(b"batch");
        e.inner_mut().log.entry_for(3, 0, digest).expect("entry");
        let qc = QuorumCertMsg {
            view: 0,
            seq: 3,
            digest,
            voters: vec![ReplicaId(0), ReplicaId(2)], // 2 < quorum of 3
        };
        let mut res = HandleResult::default();
        e.inner_mut().on_commit_qc(qc, 0, &mut res);
        assert!(res.outputs.is_empty());
        assert_eq!(e.last_executed(), 0);
    }

    #[test]
    fn qc_packets_from_any_replica_sender_are_dispatched() {
        // Seal a PrepareQC as replica 3 (not the leader) and feed it to a
        // backup: the recovery help path depends on non-leader QC replay.
        let mut sender = engine(3);
        let mut receiver = engine(1);
        let digest = pbft_crypto::Digest::of(b"batch");
        receiver
            .inner_mut()
            .log
            .entry_for(2, 0, digest)
            .expect("entry");
        let msg = Message::PrepareQC(QuorumCertMsg {
            view: 0,
            seq: 2,
            digest,
            voters: vec![ReplicaId(2), ReplicaId(3)],
        });
        let mut tmp = HandleResult::default();
        sender
            .inner_mut()
            .send_authenticated(NetTarget::Replica(ReplicaId(1)), msg, &mut tmp);
        let packet = match &tmp.outputs[0] {
            Output::Send { packet, .. } => packet.clone(),
            other => panic!("expected send, got {other:?}"),
        };
        let (env, _) = Envelope::decode(&packet).expect("decodes");
        assert_eq!(env.sender, Sender::Replica(ReplicaId(3)));
        let res = receiver.handle_packet(&packet, 0);
        assert!(
            sent_names(&res)
                .iter()
                .any(|(name, to)| *name == "commit" && *to == NetTarget::Replica(ReplicaId(0))),
            "backup adopted the replayed certificate and voted to the leader"
        );
    }
}
