//! View changes: electing a new primary while preserving committed requests.
//!
//! Follows the Castro–Liskov construction: view-change votes carry the
//! sender's stable checkpoint and its prepared certificates; the new primary
//! collects 2f+1 votes, recomputes the pre-prepare set "O" and broadcasts a
//! new-view message; backups recompute O independently and verify it.
//!
//! Simplification (documented in DESIGN.md): prepared certificates are
//! carried as the original pre-prepare without the 2f prepare attestations,
//! which is sound for crash faults and for the paper's experiments; full
//! Byzantine-proof view changes require signed prepares (as the original
//! PBFT uses when configured with signatures).

use pbft_crypto::Digest;

use crate::app::NonDet;
use crate::messages::{Message, NewViewMsg, PrePrepareMsg, PreparedProof, ViewChangeMsg};
use crate::output::{HandleResult, NetTarget, Output, TimerKind};
use crate::types::{SeqNum, View};

use super::Replica;

impl Replica {
    /// Vote to move to `target` view.
    pub(crate) fn start_view_change(&mut self, target: View, now_ns: u64, res: &mut HandleResult) {
        if self.vc.target == Some(target) || target <= self.view {
            return;
        }
        self.in_view_change = true;
        self.vc.target = Some(target);
        self.metrics.view_changes_started += 1;
        let prepared = self
            .log
            .prepared_proofs_above(self.stable.0)
            .into_iter()
            .map(|preprepare| PreparedProof { preprepare })
            .collect();
        let vc = ViewChangeMsg {
            new_view: target,
            last_stable_seq: self.stable.0,
            stable_root: self.stable.1,
            prepared,
            replica: self.id(),
        };
        let me = self.id();
        self.vc
            .votes
            .entry(target)
            .or_default()
            .insert(me, vc.clone());
        if self.linear {
            // Linear rotation: the vote goes to the incoming leader alone —
            // O(n) messages per rotation across the group instead of the
            // O(n²) all-to-all exchange. The leader already counted its own
            // vote above, so it sends nothing.
            let leader = self.cfg.primary_of(target);
            if leader != me {
                self.send_authenticated(NetTarget::Replica(leader), Message::ViewChange(vc), res);
            }
        } else {
            self.multicast(Message::ViewChange(vc), res);
        }
        // Exponential backoff across failed rounds (knobs in `PbftConfig`).
        res.outputs.push(Output::SetTimer {
            kind: TimerKind::NewViewTimeout,
            delay_ns: self.cfg.view_change_delay_ns(target - self.view),
        });
        self.try_build_new_view(target, now_ns, res);
    }

    pub(crate) fn on_view_change(
        &mut self,
        vc: ViewChangeMsg,
        now_ns: u64,
        res: &mut HandleResult,
    ) {
        let w = vc.new_view;
        if w <= self.view {
            return;
        }
        self.vc.votes.entry(w).or_default().insert(vc.replica, vc);
        // Liveness rule: join a view change that f+1 replicas already voted
        // for (prevents a partitioned minority from stalling us).
        let have = self.vc.votes.get(&w).map_or(0, |m| m.len());
        let voting_for = self.vc.target.unwrap_or(self.view);
        if have >= self.cfg.weak_quorum() && w > voting_for {
            self.start_view_change(w, now_ns, res);
        }
        self.try_build_new_view(w, now_ns, res);
    }

    /// If this replica is the primary of `w` and holds a quorum of votes,
    /// build and broadcast the new-view message.
    fn try_build_new_view(&mut self, w: View, now_ns: u64, res: &mut HandleResult) {
        if self.cfg.primary_of(w) != self.id() || self.view >= w {
            return;
        }
        let Some(votes) = self.vc.votes.get(&w) else {
            return;
        };
        if votes.len() < self.cfg.quorum() {
            return;
        }
        let vcs: Vec<ViewChangeMsg> = votes.values().take(self.cfg.quorum()).cloned().collect();
        let (min_s, max_s, o) = compute_new_view_preprepares(&vcs, w);
        let nv = NewViewMsg {
            view: w,
            view_changes: vcs.clone(),
            pre_prepares: o.clone(),
        };
        self.multicast(Message::NewView(nv), res);
        let hint = stable_hint(&vcs);
        self.metrics.new_views_entered += 1;
        self.enter_new_view(w, min_s, max_s, o, hint, now_ns, res);
    }

    pub(crate) fn on_new_view(&mut self, nv: NewViewMsg, now_ns: u64, res: &mut HandleResult) {
        if nv.view < self.view || (nv.view == self.view && !self.in_view_change) {
            return;
        }
        if nv.view_changes.len() < self.cfg.quorum() {
            return;
        }
        // Independently recompute O and verify the primary's version.
        let (min_s, max_s, expected) = compute_new_view_preprepares(&nv.view_changes, nv.view);
        if expected.len() != nv.pre_prepares.len()
            || expected
                .iter()
                .zip(nv.pre_prepares.iter())
                .any(|(a, b)| a.batch_digest() != b.batch_digest())
        {
            return; // malformed new-view: stay in view change, timeout advances us
        }
        let hint = stable_hint(&nv.view_changes);
        self.metrics.new_views_entered += 1;
        self.enter_new_view(nv.view, min_s, max_s, nv.pre_prepares, hint, now_ns, res);
    }

    #[allow(clippy::too_many_arguments)]
    fn enter_new_view(
        &mut self,
        w: View,
        min_s: SeqNum,
        max_s: SeqNum,
        o: Vec<PrePrepareMsg>,
        stable_hint: Option<(SeqNum, Digest)>,
        now_ns: u64,
        res: &mut HandleResult,
    ) {
        self.view = w;
        self.in_view_change = false;
        self.vc.target = None;
        self.vc.votes.retain(|&v, _| v > w);
        self.rollback_tentative(res);
        self.seq_assign = self.seq_assign.max(max_s).max(min_s);
        // If our stable checkpoint is behind the quorum's, fetch it.
        if self.stable.0 < min_s {
            if let Some((seq, root)) = stable_hint {
                if seq > self.stable.0 {
                    self.start_state_transfer(seq, root, res);
                }
            }
        }
        for pp in o {
            // Process every re-issued pre-prepare — *including* sequences
            // this replica already executed in a previous view. Peers that
            // lag may need this replica's prepare/commit votes to
            // re-assemble quorums in the new view: if the advanced replicas
            // sat out, a group whose checkpoint never stabilized past the
            // lag point could never commit the gap again (the lagging
            // members cannot state-transfer to a checkpoint only a minority
            // holds) — a permanent wedge. Re-executing is not a risk:
            // execution is keyed off `last_executed`, which never moves
            // backwards here (the tentative prefix was already rolled back
            // above).
            self.on_preprepare(pp, now_ns, true, res);
        }
        // Stale pre-prepares beyond the re-issued range would otherwise sit
        // in the log counting against the congestion window forever — the
        // new view never re-agrees them (see `drop_stale_above`).
        self.log.drop_stale_above(max_s, w);
        self.vc_timer_armed = false;
        self.arm_vc_timer(res);
        res.outputs.push(Output::CancelTimer {
            kind: TimerKind::NewViewTimeout,
        });
        self.try_execute(now_ns, res);
        // If we are the new primary, requests observed as a backup but never
        // ordered become our initial batching queue.
        if self.is_primary() {
            let observed: Vec<_> = std::mem::take(&mut self.observed).into_values().collect();
            for req in observed {
                let executed_ts = self.last_req_ts.get(&req.client).copied().unwrap_or(0);
                let assigned = self.assigned_ts.get(&req.client).copied().unwrap_or(0);
                let digest = req.digest();
                if req.timestamp > executed_ts.max(assigned)
                    && !self.pending_digests.contains(&digest)
                {
                    self.pending_digests.insert(digest);
                    self.assigned_ts.insert(req.client, req.timestamp);
                    self.pending.push_back(req);
                }
            }
        }
        self.try_issue(now_ns, res);
    }

    /// Roll tentatively executed batches back to the last stable checkpoint
    /// and re-execute the committed prefix (§2.1 tentative execution).
    pub(crate) fn rollback_tentative(&mut self, res: &mut HandleResult) {
        let has_tentative = self.log.iter().any(|(_, e)| e.executed && e.tentative);
        if !has_tentative {
            return;
        }
        let base = self.stable.0;
        let Some(snap) = self.checkpoints.get(&base).cloned() else {
            return; // no snapshot to roll back to (cannot happen: we retain stable)
        };
        {
            let mut st = self.state.borrow_mut();
            st.restore(&snap).expect("stable snapshot matches geometry");
        }
        // The app (and any wrapper keeping region-backed tables, e.g. the
        // xshard lock/stage tables) plus the library's own region mirrors
        // must all rewind to the restored image before re-execution.
        self.app.on_state_installed();
        self.reload_membership();
        self.reload_sessions();
        self.exec_chain = self
            .checkpoint_chain
            .get(&base)
            .copied()
            .unwrap_or(Digest::ZERO);
        let old_last = self.last_executed;
        self.last_executed = base;
        // Re-execute the committed prefix; stop at the first non-committed
        // batch (it will be re-agreed in the new view).
        for seq in base + 1..=old_last {
            let Some(e) = self.log.get(seq) else { break };
            if !e.committed {
                break;
            }
            let Some(pp) = e.preprepare.clone() else {
                break;
            };
            let bodies_ok = pp
                .entries
                .iter()
                .all(|en| en.full.is_some() || self.bodies.contains_key(&en.digest));
            if !bodies_ok {
                break;
            }
            self.execute_batch(&pp, true, 0, res);
            let e = self.log.get_mut(seq).expect("entry exists");
            e.executed = true;
            e.tentative = false;
            self.last_executed = seq;
            // Take interval-boundary checkpoints exactly like the normal
            // execution path: the state at this instant *is* the post-`seq`
            // image, so the snapshot is correct. Skipping them here left a
            // replica that rolled back through a boundary permanently
            // unable to vote for it — and a group where every member did
            // (view-change churn) could never stabilize the boundary, never
            // advance the low watermark, and wedged at the high watermark.
            self.maybe_checkpoint(seq, res);
        }
        // Anything beyond the committed prefix is no longer executed.
        let last = self.last_executed;
        for seq in last + 1..=old_last {
            if let Some(e) = self.log.get_mut(seq) {
                e.executed = false;
                e.tentative = false;
            }
        }
        // The state is back on the committed prefix: no tentative effect
        // survives, so every contention-gated read can be answered.
        self.tentative_effects.clear();
        self.flush_deferred_reads(0, res);
    }

    pub(crate) fn on_new_view_timeout(&mut self, now_ns: u64, res: &mut HandleResult) {
        if !self.in_view_change {
            return;
        }
        let next = self.vc.target.unwrap_or(self.view) + 1;
        self.start_view_change(next, now_ns, res);
    }
}

/// Compute `(min_s, max_s, O)` from a set of view-change votes — used
/// identically by the new primary (to build) and by backups (to verify).
pub(crate) fn compute_new_view_preprepares(
    vcs: &[ViewChangeMsg],
    new_view: View,
) -> (SeqNum, SeqNum, Vec<PrePrepareMsg>) {
    let min_s = vcs.iter().map(|v| v.last_stable_seq).max().unwrap_or(0);
    let max_s = vcs
        .iter()
        .flat_map(|v| v.prepared.iter().map(|p| p.preprepare.seq))
        .max()
        .unwrap_or(min_s)
        .max(min_s);
    let mut o = Vec::new();
    for seq in min_s + 1..=max_s {
        let best = vcs
            .iter()
            .flat_map(|v| v.prepared.iter())
            .filter(|p| p.preprepare.seq == seq)
            .max_by_key(|p| p.preprepare.view);
        let pp = match best {
            Some(p) => PrePrepareMsg {
                view: new_view,
                seq,
                nondet: p.preprepare.nondet,
                entries: p.preprepare.entries.clone(),
            },
            // Gap: fill with a null request so the sequence stays dense.
            None => PrePrepareMsg {
                view: new_view,
                seq,
                nondet: NonDet::default(),
                entries: Vec::new(),
            },
        };
        o.push(pp);
    }
    (min_s, max_s, o)
}

/// The stable checkpoint to adopt from a vote set: the highest
/// `(last_stable_seq, stable_root)` claimed. (With ≤ f faulty voters in a
/// 2f+1 set this can over-claim; the fetcher validates every page against
/// the root, and a bogus root simply fails to transfer and is retried —
/// see DESIGN.md's simplifications.)
fn stable_hint(vcs: &[ViewChangeMsg]) -> Option<(SeqNum, Digest)> {
    vcs.iter()
        .map(|v| (v.last_stable_seq, v.stable_root))
        .max_by_key(|(s, _)| *s)
}
