//! Protocol-level tests: a deterministic in-crate router drives full
//! clusters of replica and client engines through the scenarios the paper
//! describes, with byte-level packets (so authentication is fully exercised)
//! and manual fault injection.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use pbft_state::PagedState;

use crate::app::{KvApp, NullApp, StateHandle};
use crate::client::{Client, ClientEvent};
use crate::config::{AuthMode, PbftConfig};
use crate::output::{NetTarget, Output};
use crate::replica::{Replica, LIB_REGION_PAGES};
use crate::types::{ClientId, NetAddr, ReplicaId};

const SEED: u64 = 0xBEEF;
const STATE_PAGES: usize = LIB_REGION_PAGES as usize + 8;
const CLIENT_ADDR_BASE: NetAddr = 100;

/// Which app backs the replicas.
#[derive(Clone, Copy, PartialEq)]
#[allow(clippy::large_enum_variant)] // test-only config, Copy matters more
enum AppKind {
    Null(usize),
    Kv,
    /// Kv wrapped in [`crate::xshard::XShardApp`] (optionally with an
    /// elastic identity) — the deployments whose operations declare shard
    /// keys, which is what the read-only contention gate keys on.
    XKv(Option<(u32, crate::routing::ShardMap)>),
    SessionCounter,
}

/// Packet filter: `(source, destination, message discriminant) -> drop?`.
type DropFilter = Box<dyn Fn(Source, &NetTarget, u8) -> bool>;

struct Net {
    cfg: PbftConfig,
    replicas: Vec<Replica>,
    clients: Vec<Client>,
    alive: Vec<bool>,
    /// (source label, destination, packet bytes, message discriminant)
    queue: VecDeque<(Source, NetTarget, crate::output::PacketBuf, u8)>,
    now: u64,
    /// Packets this filter returns `true` for are dropped.
    drop: Option<DropFilter>,
    dropped: usize,
    /// Packets this filter returns `true` for are parked instead of
    /// delivered; [`Net::release_held`] re-queues them (delayed delivery).
    hold: Option<DropFilter>,
    held: VecDeque<(Source, NetTarget, crate::output::PacketBuf, u8)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Replica(usize),
    Client(usize),
}

fn make_state() -> StateHandle {
    Rc::new(RefCell::new(PagedState::new(STATE_PAGES)))
}

fn make_replica(cfg: &PbftConfig, i: u32, app: AppKind, clients: &[ClientId]) -> Replica {
    let state = make_state();
    let app: Box<dyn crate::app::App> = match app {
        AppKind::Null(size) => Box::new(NullApp::new(size)),
        AppKind::Kv => Box::new(KvApp::new(
            state.clone(),
            LIB_REGION_PAGES * pbft_state::PAGE_SIZE as u64,
            128,
        )),
        AppKind::XKv(identity) => {
            let inner = Box::new(KvApp::new(
                state.clone(),
                LIB_REGION_PAGES * pbft_state::PAGE_SIZE as u64,
                128,
            ));
            let mut app = crate::xshard::XShardApp::mount(inner, state.clone());
            if let Some((group, map)) = identity {
                app.set_identity(group, map);
            }
            Box::new(app)
        }
        AppKind::SessionCounter => Box::new(crate::app::SessionCounterApp),
    };
    Replica::new(cfg.clone(), SEED, ReplicaId(i), state, app, clients)
}

impl Net {
    fn new(cfg: PbftConfig, num_clients: usize, app: AppKind) -> Net {
        let client_ids: Vec<ClientId> = (1..=num_clients as u64).map(ClientId).collect();
        let preinstalled = if cfg.dynamic_membership {
            Vec::new()
        } else {
            client_ids.clone()
        };
        let replicas: Vec<Replica> = (0..cfg.n() as u32)
            .map(|i| make_replica(&cfg, i, app, &preinstalled))
            .collect();
        let clients: Vec<Client> = client_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                Client::new_static(cfg.clone(), SEED, id, CLIENT_ADDR_BASE + i as NetAddr)
            })
            .collect();
        let alive = vec![true; replicas.len()];
        let mut net = Net {
            cfg,
            replicas,
            clients,
            alive,
            queue: VecDeque::new(),
            now: 1_000_000,
            drop: None,
            dropped: 0,
            hold: None,
            held: VecDeque::new(),
        };
        for i in 0..net.replicas.len() {
            let res = net.replicas[i].on_start(net.now, false);
            net.route(Source::Replica(i), res.outputs);
        }
        for i in 0..net.clients.len() {
            let res = net.clients[i].on_start(net.now);
            net.route(Source::Client(i), res.outputs);
        }
        net.pump(10_000);
        net
    }

    fn route(&mut self, src: Source, outputs: Vec<Output>) {
        for o in outputs {
            if let Output::Send { to, packet, .. } = o {
                let disc = packet.first().copied().unwrap_or(0);
                self.queue.push_back((src, to, packet, disc));
            }
        }
    }

    fn client_index(&self, addr: NetAddr) -> Option<usize> {
        let idx = addr.checked_sub(CLIENT_ADDR_BASE)? as usize;
        (idx < self.clients.len()).then_some(idx)
    }

    /// Deliver queued packets until quiescent or `max_steps`.
    fn pump(&mut self, max_steps: usize) {
        for _ in 0..max_steps {
            let Some((src, to, packet, disc)) = self.queue.pop_front() else {
                return;
            };
            if let Some(f) = &self.drop {
                if f(src, &to, disc) {
                    self.dropped += 1;
                    continue;
                }
            }
            if let Some(f) = &self.hold {
                if f(src, &to, disc) {
                    self.held.push_back((src, to, packet, disc));
                    continue;
                }
            }
            self.now += 10_000; // 10µs per hop
            match to {
                NetTarget::Replica(r) => {
                    let i = r.0 as usize;
                    if !self.alive[i] {
                        continue;
                    }
                    let res = self.replicas[i].handle_packet(&packet, self.now);
                    self.route(Source::Replica(i), res.outputs);
                }
                NetTarget::Client(addr) => {
                    if let Some(i) = self.client_index(addr) {
                        let res = self.clients[i].handle_packet(&packet, self.now);
                        self.route(Source::Client(i), res.outputs);
                    }
                }
            }
        }
        panic!("pump did not quiesce within the step budget");
    }

    /// Stop holding and deliver every parked packet.
    fn release_held(&mut self) {
        self.hold = None;
        while let Some(p) = self.held.pop_front() {
            self.queue.push_back(p);
        }
    }

    fn submit(&mut self, client: usize, op: Vec<u8>, read_only: bool) {
        let res = self.clients[client].submit(op, read_only, self.now);
        self.route(Source::Client(client), res.outputs);
    }

    fn fire_replica_timer(&mut self, i: usize, kind: crate::output::TimerKind) {
        self.now += 1_000_000;
        let res = self.replicas[i].on_timer(kind, self.now);
        self.route(Source::Replica(i), res.outputs);
    }

    fn fire_client_timer(&mut self, i: usize, kind: crate::output::TimerKind) {
        self.now += 1_000_000;
        let res = self.clients[i].on_timer(kind, self.now);
        self.route(Source::Client(i), res.outputs);
    }

    fn client_events(&mut self, i: usize) -> Vec<ClientEvent> {
        self.clients[i].take_events()
    }

    /// Result bytes of client `i`'s most recent completed request.
    fn last_reply(&mut self, i: usize) -> Option<Vec<u8>> {
        self.client_events(i)
            .into_iter()
            .rev()
            .find_map(|e| match e {
                ClientEvent::ReplyDelivered { result, .. } => Some(result),
                _ => None,
            })
    }

    fn completed(&self, i: usize) -> u64 {
        self.clients[i].metrics.completed
    }

    fn assert_chains_equal(&self, among: &[usize]) {
        let chains: Vec<_> = among
            .iter()
            .map(|&i| self.replicas[i].exec_chain())
            .collect();
        for w in chains.windows(2) {
            assert_eq!(w[0], w[1], "replica execution chains diverged");
        }
    }

    fn assert_states_equal(&mut self, among: &[usize]) {
        let roots: Vec<_> = among
            .iter()
            .map(|&i| {
                self.replicas[i]
                    .state_handle()
                    .borrow_mut()
                    .refresh_digest()
            })
            .collect();
        for w in roots.windows(2) {
            assert_eq!(w[0], w[1], "replica states diverged");
        }
    }
}

fn default_cfg() -> PbftConfig {
    PbftConfig {
        checkpoint_interval: 4,
        log_size: 16,
        ..Default::default()
    }
}

// ----------------------------------------------------------------------
// Normal case
// ----------------------------------------------------------------------

#[test]
fn normal_case_single_request() {
    let mut net = Net::new(default_cfg(), 1, AppKind::Null(64));
    net.submit(0, vec![1, 2, 3], false);
    net.pump(10_000);
    assert_eq!(net.completed(0), 1);
    let evs = net.client_events(0);
    assert!(matches!(&evs[0], ClientEvent::ReplyDelivered { result, .. } if result.len() == 64));
    net.assert_chains_equal(&[0, 1, 2, 3]);
    for r in &net.replicas {
        assert_eq!(r.last_executed(), 1);
        assert_eq!(r.view(), 0);
    }
}

#[test]
fn sequence_of_requests_from_many_clients() {
    let mut net = Net::new(default_cfg(), 4, AppKind::Kv);
    for round in 0..5u64 {
        for c in 0..4usize {
            net.submit(c, KvApp::op_put(c as u64 * 100 + round, round), false);
        }
        net.pump(100_000);
    }
    for c in 0..4 {
        assert_eq!(net.completed(c), 5, "client {c}");
    }
    net.assert_chains_equal(&[0, 1, 2, 3]);
    net.assert_states_equal(&[0, 1, 2, 3]);
    // 20 requests with interval 4 → stable checkpoint advanced and logs GCd.
    for r in &net.replicas {
        assert!(
            r.stable_checkpoint().0 >= 4,
            "stable = {}",
            r.stable_checkpoint().0
        );
        assert!(r.metrics().checkpoints_taken >= 1);
    }
}

#[test]
fn non_big_requests_flow_through_primary() {
    let cfg = PbftConfig {
        all_requests_big: false,
        ..default_cfg()
    };
    let mut net = Net::new(cfg, 2, AppKind::Null(32));
    net.submit(0, vec![7; 100], false);
    net.submit(1, vec![8; 100], false);
    net.pump(10_000);
    assert_eq!(net.completed(0), 1);
    assert_eq!(net.completed(1), 1);
    net.assert_chains_equal(&[0, 1, 2, 3]);
}

#[test]
fn signature_mode_works() {
    let cfg = PbftConfig {
        auth: AuthMode::Signatures,
        ..default_cfg()
    };
    let mut net = Net::new(cfg, 2, AppKind::Null(32));
    net.submit(0, vec![1], false);
    net.submit(1, vec![2], false);
    net.pump(10_000);
    assert_eq!(net.completed(0), 1);
    assert_eq!(net.completed(1), 1);
    net.assert_chains_equal(&[0, 1, 2, 3]);
}

#[test]
fn batching_disabled_still_executes() {
    let cfg = PbftConfig {
        batching: false,
        ..default_cfg()
    };
    let mut net = Net::new(cfg, 3, AppKind::Null(16));
    for c in 0..3 {
        net.submit(c, vec![c as u8], false);
    }
    // Without batching the primary paces issuance on its event-loop tick
    // (`nobatch_issue_tick_ns`); drive the tick manually — each firing
    // advances the clock 1 ms and releases the next agreement.
    for _ in 0..4 {
        net.pump(50_000);
        net.fire_replica_timer(0, crate::output::TimerKind::BatchKick);
    }
    net.pump(50_000);
    for c in 0..3 {
        assert_eq!(net.completed(c), 1);
    }
    net.assert_chains_equal(&[0, 1, 2, 3]);
}

#[test]
fn batching_disabled_without_tick_executes_inline() {
    let cfg = PbftConfig {
        batching: false,
        nobatch_issue_tick_ns: 0,
        ..default_cfg()
    };
    let mut net = Net::new(cfg, 3, AppKind::Null(16));
    for c in 0..3 {
        net.submit(c, vec![c as u8], false);
    }
    net.pump(50_000);
    for c in 0..3 {
        assert_eq!(net.completed(c), 1);
    }
    // One request per agreement: at least 3 batches executed.
    assert!(net.replicas[0].metrics().batches_executed >= 3);
    net.assert_chains_equal(&[0, 1, 2, 3]);
}

#[test]
fn tentative_execution_disabled_still_executes() {
    let cfg = PbftConfig {
        tentative_execution: false,
        ..default_cfg()
    };
    let mut net = Net::new(cfg, 1, AppKind::Null(16));
    net.submit(0, vec![1], false);
    net.pump(10_000);
    assert_eq!(net.completed(0), 1);
    for r in &net.replicas {
        assert_eq!(r.metrics().tentative_executions, 0);
    }
}

#[test]
fn duplicate_request_served_from_reply_cache() {
    let mut net = Net::new(default_cfg(), 1, AppKind::Null(16));
    net.submit(0, vec![1], false);
    net.pump(10_000);
    assert_eq!(net.completed(0), 1);
    let before: u64 = net
        .replicas
        .iter()
        .map(|r| r.metrics().executed_requests)
        .sum();
    // Fire the client's retransmit timer manually: the request was answered,
    // so this is a pure duplicate.
    net.fire_client_timer(0, crate::output::TimerKind::Retransmit);
    net.pump(10_000);
    let after: u64 = net
        .replicas
        .iter()
        .map(|r| r.metrics().executed_requests)
        .sum();
    assert_eq!(before, after, "duplicates must not re-execute");
}

#[test]
fn read_only_fast_path() {
    let mut net = Net::new(default_cfg(), 1, AppKind::Kv);
    net.submit(0, KvApp::op_put(7, 42), false);
    net.pump(10_000);
    net.submit(0, KvApp::op_get(7), true);
    net.pump(10_000);
    assert_eq!(net.completed(0), 2);
    let evs = net.client_events(0);
    match &evs[1] {
        ClientEvent::ReplyDelivered { result, .. } => {
            assert_eq!(u64::from_be_bytes(result[8..16].try_into().unwrap()), 42);
        }
        other => panic!("unexpected event {other:?}"),
    }
    // Served without consuming a sequence number.
    for r in &net.replicas {
        assert_eq!(r.last_executed(), 1);
        assert!(r.metrics().read_only_served >= 1);
    }
}

/// Frame a Kv put as a key-declaring `XMsg::KeyedOp`.
fn keyed_put(key: u64, val: u64) -> Vec<u8> {
    crate::xshard::XMsg::KeyedOp {
        txid: 0x9000 + key,
        keys: vec![key.to_be_bytes().to_vec()],
        op: KvApp::op_put(key, val),
    }
    .encode()
}

/// Frame a Kv get as a key-declaring `XMsg::KeyedOp`.
fn keyed_get(key: u64) -> Vec<u8> {
    crate::xshard::XMsg::KeyedOp {
        txid: 0xA000 + key,
        keys: vec![key.to_be_bytes().to_vec()],
        op: KvApp::op_get(key),
    }
    .encode()
}

#[test]
fn contended_read_defers_until_tentative_state_resolves() {
    let mut net = Net::new(default_cfg(), 3, AppKind::XKv(None));
    // Park every commit in flight: batches prepare and execute tentatively
    // on all replicas but cannot commit yet.
    net.hold = Some(Box::new(|_, _, disc| disc == 4));
    net.submit(0, keyed_put(5, 55), false);
    net.pump(50_000);
    // The client completes on 2f+1 matching *tentative* replies, but the
    // write is uncommitted on every replica.
    assert_eq!(net.completed(0), 1);
    for r in &net.replicas {
        assert_eq!(r.metrics().tentative_executions, 1);
    }
    // A read of the dirty key parks on every replica: answering it from
    // tentative state would expose an uncommitted value.
    net.submit(1, keyed_get(5), true);
    net.pump(50_000);
    assert_eq!(
        net.completed(1),
        0,
        "read of a dirty key must not be answered from tentative state"
    );
    for r in &net.replicas {
        assert_eq!(r.metrics().read_only_deferred, 1);
        assert_eq!(r.metrics().read_only_served, 0);
    }
    // The gate is per-key: a read of an unrelated key passes immediately.
    net.submit(2, keyed_get(6), true);
    net.pump(50_000);
    assert_eq!(net.completed(2), 1, "uncontended read must not be delayed");
    // Deliver the parked commits: the batch commits locally and the
    // deferred read is flushed with the now-committed value.
    net.release_held();
    net.pump(100_000);
    assert_eq!(net.completed(1), 1, "parked read served after local commit");
    let result = net.last_reply(1).expect("read completed");
    let mut expect = 5u64.to_be_bytes().to_vec();
    expect.extend_from_slice(&55u64.to_be_bytes());
    assert_eq!(result, expect, "deferred read returns the committed record");
    for r in &net.replicas {
        assert_eq!(r.metrics().read_only_served, 2);
    }
    net.assert_states_equal(&[0, 1, 2, 3]);
}

#[test]
fn read_defers_while_reshard_uncommitted() {
    use crate::routing::ShardMap;
    let map = ShardMap::ranged(1);
    let plan = map.split(0);
    let moved = (0..4096u64)
        .find(|k| plan.moves(&k.to_be_bytes()))
        .expect("some key moves under the split");
    let mut net = Net::new(default_cfg(), 2, AppKind::XKv(Some((0, map))));
    net.hold = Some(Box::new(|_, _, disc| disc == 4));
    // Order the epoch flip with commits parked: every replica executes it
    // tentatively and holds the new map uncommitted.
    net.submit(
        0,
        crate::xshard::XMsg::Reshard {
            txid: 7,
            map: plan.new_map,
        }
        .encode(),
        false,
    );
    net.pump(50_000);
    assert_eq!(net.completed(0), 1);
    // A keyed read for a moved key must NOT be bounced `WrongEpoch` off
    // the uncommitted flip — the carried map could still be rolled back
    // by a view change, stranding the client on a target group that never
    // installs its data. The read parks until the epoch's fate is known.
    net.submit(1, keyed_get(moved), true);
    net.pump(50_000);
    assert_eq!(
        net.completed(1),
        0,
        "uncommitted epoch flip leaked to a read-only client"
    );
    for r in &net.replicas {
        assert!(r.metrics().read_only_deferred >= 1);
    }
    // Commit the flip: the parked read is answered, and the WrongEpoch it
    // now gets carries the *committed* next-epoch map — safe to act on.
    net.release_held();
    net.pump(100_000);
    assert_eq!(net.completed(1), 1, "parked read served after local commit");
    let result = net.last_reply(1).expect("read completed");
    match crate::xshard::XReply::decode(&result) {
        Some(crate::xshard::XReply::WrongEpoch { map: carried, .. }) => {
            assert_eq!(
                carried.epoch(),
                plan.new_map.epoch(),
                "rejection carries the committed map"
            );
        }
        other => panic!("expected a committed-epoch WrongEpoch, got {other:?}"),
    }
    net.assert_states_equal(&[0, 1, 2, 3]);
}

#[test]
fn bad_authenticator_rejected() {
    let mut net = Net::new(default_cfg(), 1, AppKind::Null(16));
    // A request sealed by a client whose keys the replicas do not have.
    let mut rogue = Client::new_static(net.cfg.clone(), SEED ^ 99, ClientId(9), 999);
    let res = rogue.submit(vec![1], false, net.now);
    net.route(Source::Client(0), res.outputs.into_iter().take(4).collect());
    net.pump(10_000);
    let failures: u64 = net.replicas.iter().map(|r| r.metrics().auth_failures).sum();
    assert!(failures > 0);
    for r in &net.replicas {
        assert_eq!(r.last_executed(), 0, "rogue request must not execute");
    }
}

// ----------------------------------------------------------------------
// Checkpoints & watermarks
// ----------------------------------------------------------------------

#[test]
fn checkpoints_garbage_collect_log_and_bodies() {
    let mut net = Net::new(default_cfg(), 1, AppKind::Kv);
    for i in 0..8u64 {
        net.submit(0, KvApp::op_put(i, i), false);
        net.pump(10_000);
    }
    assert_eq!(net.completed(0), 8);
    for r in &net.replicas {
        assert!(
            r.stable_checkpoint().0 >= 8,
            "stable = {}",
            r.stable_checkpoint().0
        );
        assert!(r.retained_checkpoints() <= 2);
        assert_eq!(r.body_store_len(), 0, "bodies pruned after GC");
    }
}

// ----------------------------------------------------------------------
// §2.4: big-request body loss
// ----------------------------------------------------------------------

#[test]
fn lost_big_request_body_wedges_replica_until_checkpoint() {
    let mut net = Net::new(default_cfg(), 1, AppKind::Kv);
    // Drop the client's request multicast to replica 3 only.
    net.drop = Some(Box::new(|src, to, disc| {
        matches!(src, Source::Client(0)) && *to == NetTarget::Replica(ReplicaId(3)) && disc == 1
        // request
    }));
    net.submit(0, KvApp::op_put(1, 1), false);
    net.pump(50_000);
    // Replicas 0-2 executed; replica 3 is wedged on the missing body.
    assert_eq!(
        net.completed(0),
        1,
        "quorum of 3 replicas still serves the client"
    );
    assert_eq!(net.replicas[3].last_executed(), 0);
    assert!(net.replicas[3].metrics().stuck_missing_body > 0);
    // Stop dropping; drive to the next checkpoint: replica 3 recovers via
    // state transfer ("will be stuck at this point until the next checkpoint
    // arrives and the recovery process kicks in").
    net.drop = None;
    for i in 2..=4u64 {
        net.submit(0, KvApp::op_put(i, i), false);
        net.pump(50_000);
    }
    net.pump(50_000);
    assert!(net.replicas[3].metrics().state_transfers_completed >= 1);
    assert_eq!(net.replicas[3].last_executed(), 4);
    net.assert_states_equal(&[0, 1, 2, 3]);
}

#[test]
fn body_fetch_fix_recovers_without_checkpoint() {
    let cfg = PbftConfig {
        fetch_missing_bodies: true,
        ..default_cfg()
    };
    let mut net = Net::new(cfg, 1, AppKind::Kv);
    net.drop = Some(Box::new(|src, to, disc| {
        matches!(src, Source::Client(0)) && *to == NetTarget::Replica(ReplicaId(3)) && disc == 1
    }));
    net.submit(0, KvApp::op_put(1, 1), false);
    net.pump(50_000);
    net.drop = None;
    // The wedged replica multicast BodyFetch; peers answered; no checkpoint
    // needed.
    assert_eq!(net.replicas[3].last_executed(), 1);
    assert_eq!(net.replicas[3].metrics().state_transfers_completed, 0);
    net.assert_states_equal(&[0, 1, 2, 3]);
}

// ----------------------------------------------------------------------
// View changes
// ----------------------------------------------------------------------

#[test]
fn primary_failure_triggers_view_change_and_request_survives() {
    let mut net = Net::new(default_cfg(), 1, AppKind::Kv);
    net.alive[0] = false; // crash the primary of view 0
    net.submit(0, KvApp::op_put(5, 55), false);
    net.pump(50_000);
    assert_eq!(net.completed(0), 0, "no primary, no progress");
    // Backups' suspicion timers fire.
    for i in 1..4 {
        net.fire_replica_timer(i, crate::output::TimerKind::ViewChange);
    }
    net.pump(100_000);
    for i in 1..4 {
        assert_eq!(net.replicas[i].view(), 1, "replica {i}");
    }
    assert_eq!(net.completed(0), 1, "request executed in the new view");
    net.assert_chains_equal(&[1, 2, 3]);
    net.assert_states_equal(&[1, 2, 3]);
}

#[test]
fn prepared_request_survives_view_change() {
    // The primary orders a request and dies after prepares circulate; the
    // new view must re-issue the same batch (safety of the P set).
    // Tentative execution is off so that "prepared" does not already answer
    // the client.
    let cfg = PbftConfig {
        tentative_execution: false,
        ..default_cfg()
    };
    let mut net = Net::new(cfg, 1, AppKind::Kv);
    // Drop every commit so nothing executes in view 0, but prepares flow.
    net.drop = Some(Box::new(|_, _, disc| disc == 4));
    net.submit(0, KvApp::op_put(9, 99), false);
    net.pump(50_000);
    assert_eq!(net.completed(0), 0);
    net.drop = None;
    net.alive[0] = false;
    for i in 1..4 {
        net.fire_replica_timer(i, crate::output::TimerKind::ViewChange);
    }
    net.pump(100_000);
    assert_eq!(
        net.completed(0),
        1,
        "prepared request re-executed in view 1"
    );
    net.assert_states_equal(&[1, 2, 3]);
    // The value must be the one the old primary ordered.
    net.submit(0, KvApp::op_get(9), true);
    net.pump(50_000);
    let evs = net.client_events(0);
    let last = evs.last().expect("read reply");
    match last {
        ClientEvent::ReplyDelivered { result, .. } => {
            assert_eq!(u64::from_be_bytes(result[8..16].try_into().unwrap()), 99);
        }
        other => panic!("unexpected event {other:?}"),
    }
}

#[test]
fn successive_primary_failures_advance_views() {
    let mut net = Net::new(default_cfg(), 1, AppKind::Null(16));
    net.alive[0] = false;
    net.alive[1] = false; // the next primary is dead too — but f=1 means
                          // only one *Byzantine* fault; two crashed replicas
                          // still leave 2f+1=3... no: n=4 with 2 dead leaves
                          // 2 < 2f+1. So revive 1 after the first round.
    net.submit(0, vec![1], false);
    net.pump(50_000);
    for i in 2..4 {
        net.fire_replica_timer(i, crate::output::TimerKind::ViewChange);
    }
    net.pump(50_000);
    // View 1's primary (replica 1) is dead: the new-view timeout fires and
    // pushes everyone to view 2.
    net.alive[1] = true;
    for i in 2..4 {
        net.fire_replica_timer(i, crate::output::TimerKind::NewViewTimeout);
    }
    net.pump(100_000);
    for i in 2..4 {
        assert_eq!(net.replicas[i].view(), 2, "replica {i}");
    }
    // Only 2 of 4 replicas hold the request body (replica 1 missed the
    // original multicast), so the client needs stable replies — which its
    // retransmission collects.
    net.fire_client_timer(0, crate::output::TimerKind::Retransmit);
    net.pump(100_000);
    assert_eq!(net.completed(0), 1);
}

// ----------------------------------------------------------------------
// §2.3: crash-restart recovery and the authenticator stall
// ----------------------------------------------------------------------

#[test]
fn restarted_replica_recovers_via_state_transfer() {
    let mut net = Net::new(default_cfg(), 1, AppKind::Kv);
    for i in 0..4u64 {
        net.submit(0, KvApp::op_put(i, i * 10), false);
        net.pump(50_000);
    }
    assert_eq!(net.completed(0), 4);
    // Crash replica 2 and replace it with a blank instance (transient state
    // and client session keys lost; durable state zeroed — the strongest
    // form of the §2.3 scenario).
    net.alive[2] = false;
    net.replicas[2] = make_replica(&net.cfg, 2, AppKind::Kv, &[]);
    net.alive[2] = true;
    let res = net.replicas[2].on_start(net.now, true);
    net.route(Source::Replica(2), res.outputs);
    net.pump(50_000);
    assert!(net.replicas[2].metrics().state_transfers_completed >= 1);
    assert_eq!(net.replicas[2].last_executed(), 4);
    net.assert_states_equal(&[0, 1, 2, 3]);
    assert!(!net.replicas[2].is_recovering());

    // The restarted replica has no client session keys: fresh requests fail
    // authentication there (the paper's authenticator stall)...
    net.submit(0, KvApp::op_put(50, 1), false);
    net.pump(50_000);
    assert!(net.replicas[2].metrics().auth_failures > 0);
    // ...until the client's blind NewKey retransmission timer fires (§2.3).
    net.fire_client_timer(0, crate::output::TimerKind::NewKey);
    net.pump(50_000);
    net.submit(0, KvApp::op_put(51, 2), false);
    net.pump(50_000);
    assert_eq!(net.completed(0), 6);
    // And the replica executes again (caught up at the next checkpoint at
    // the latest).
    for i in 0..6u64 {
        net.submit(0, KvApp::op_put(60 + i, i), false);
        net.pump(50_000);
    }
    net.pump(50_000);
    net.assert_states_equal(&[0, 1, 2, 3]);
}

// ----------------------------------------------------------------------
// Dynamic membership (§3.1)
// ----------------------------------------------------------------------

fn dynamic_cfg() -> PbftConfig {
    PbftConfig {
        dynamic_membership: true,
        ..default_cfg()
    }
}

#[test]
fn dynamic_client_joins_and_executes() {
    let cfg = dynamic_cfg();
    let mut net = Net::new(cfg.clone(), 0, AppKind::Kv);
    let mut dyn_client = Client::new_dynamic(cfg, SEED, 7, CLIENT_ADDR_BASE, b"alice:pw".to_vec());
    let res = dyn_client.on_start(net.now);
    net.clients.push(dyn_client);
    net.route(Source::Client(0), res.outputs);
    net.pump(50_000);
    let evs = net.client_events(0);
    let joined = evs.iter().find_map(|e| match e {
        ClientEvent::Joined(id) => Some(*id),
        _ => None,
    });
    let id = joined.expect("join completed");
    assert!(net.clients[0].is_member());
    for r in &net.replicas {
        let m = r.membership().expect("dynamic mode");
        assert!(m.contains(id));
        assert_eq!(m.active_sessions(), 1);
    }
    // And the joined client can execute application requests over MACs.
    net.submit(0, KvApp::op_put(1, 111), false);
    net.pump(50_000);
    assert_eq!(net.completed(0), 1);
    net.assert_states_equal(&[0, 1, 2, 3]);
}

#[test]
fn leave_terminates_session() {
    let cfg = dynamic_cfg();
    let mut net = Net::new(cfg.clone(), 0, AppKind::Null(16));
    let mut dyn_client = Client::new_dynamic(cfg, SEED, 9, CLIENT_ADDR_BASE, b"bob".to_vec());
    let res = dyn_client.on_start(net.now);
    net.clients.push(dyn_client);
    net.route(Source::Client(0), res.outputs);
    net.pump(50_000);
    assert!(net.clients[0].is_member());
    net.submit(0, vec![1], false);
    net.pump(50_000);
    assert_eq!(net.completed(0), 1);

    let res = net.clients[0].leave(net.now);
    net.route(Source::Client(0), res.outputs);
    net.pump(50_000);
    // The Leave itself completes as a request (hence completed == 2).
    assert_eq!(net.completed(0), 2);
    for r in &net.replicas {
        assert_eq!(r.membership().expect("dynamic").active_sessions(), 0);
    }
    // Further requests are rejected ("all further communication with the
    // service is prohibited").
    let failures_before: u64 = net.replicas.iter().map(|r| r.metrics().auth_failures).sum();
    net.submit(0, vec![2], false);
    net.pump(50_000);
    let failures_after: u64 = net.replicas.iter().map(|r| r.metrics().auth_failures).sum();
    assert!(failures_after > failures_before);
    assert_eq!(net.completed(0), 2, "request after leave must not complete");
}

#[test]
fn second_join_with_same_identity_terminates_first_session() {
    let cfg = dynamic_cfg();
    let mut net = Net::new(cfg.clone(), 0, AppKind::Null(16));
    let mut c1 = Client::new_dynamic(cfg.clone(), SEED, 11, CLIENT_ADDR_BASE, b"carol".to_vec());
    let res = c1.on_start(net.now);
    net.clients.push(c1);
    net.route(Source::Client(0), res.outputs);
    net.pump(50_000);
    assert!(net.clients[0].is_member());
    let first_id = net.clients[0].id();

    // A second device joins with the same application identity.
    let mut c2 = Client::new_dynamic(cfg, SEED, 12, CLIENT_ADDR_BASE + 1, b"carol".to_vec());
    let res = c2.on_start(net.now);
    net.clients.push(c2);
    net.route(Source::Client(1), res.outputs);
    net.pump(50_000);
    assert!(net.clients[1].is_member());
    for r in &net.replicas {
        let m = r.membership().expect("dynamic");
        assert_eq!(m.active_sessions(), 1, "single session per identity");
        assert!(!m.contains(first_id), "previous session terminated");
    }
}

// ----------------------------------------------------------------------
// §2.5: non-determinism validation
// ----------------------------------------------------------------------

#[test]
fn stale_nondet_rejected_when_validation_enforced() {
    let mut cfg = default_cfg();
    cfg.nondet.validate_window_ns = 1_000; // 1µs window: everything is stale
    cfg.nondet.skip_validation_on_replay = false;
    let mut net = Net::new(cfg, 1, AppKind::Null(16));
    net.submit(0, vec![1], false);
    net.pump(50_000);
    // Backups rejected the pre-prepare: nothing executes.
    assert_eq!(net.completed(0), 0);
    let rejections: u64 = net
        .replicas
        .iter()
        .map(|r| r.metrics().nondet_validation_failures)
        .sum();
    assert!(rejections >= 3, "all backups rejected, got {rejections}");
}

// ----------------------------------------------------------------------
// §3.3.2: the per-session state subsystem
// ----------------------------------------------------------------------

fn join_dynamic_client(
    net: &mut Net,
    cfg: &PbftConfig,
    seed_id: u64,
    addr: NetAddr,
    identity: &[u8],
) -> usize {
    let mut c = Client::new_dynamic(cfg.clone(), SEED, seed_id, addr, identity.to_vec());
    let res = c.on_start(net.now);
    let idx = net.clients.len();
    net.clients.push(c);
    net.route(Source::Client(idx), res.outputs);
    net.pump(50_000);
    assert!(net.clients[idx].is_member(), "join completed");
    idx
}

#[test]
fn session_state_accumulates_across_requests() {
    let cfg = dynamic_cfg();
    let mut net = Net::new(cfg.clone(), 0, AppKind::SessionCounter);
    let c = join_dynamic_client(&mut net, &cfg, 21, CLIENT_ADDR_BASE, b"dave");
    for expect in 1..=3u64 {
        net.submit(c, b"incr".to_vec(), false);
        net.pump(50_000);
        assert_eq!(net.completed(c), expect);
        let reply = net.last_reply(c).expect("reply");
        assert_eq!(
            reply,
            expect.to_be_bytes().to_vec(),
            "library session state persists"
        );
    }
    // The session table lives in the replicated region: identical on all.
    net.assert_states_equal(&[0, 1, 2, 3]);
}

#[test]
fn leave_clears_session_state() {
    let cfg = dynamic_cfg();
    let mut net = Net::new(cfg.clone(), 0, AppKind::SessionCounter);
    let c = join_dynamic_client(&mut net, &cfg, 22, CLIENT_ADDR_BASE, b"erin");
    net.submit(c, b"incr".to_vec(), false);
    net.pump(50_000);
    let res = net.clients[c].leave(net.now);
    net.route(Source::Client(c), res.outputs);
    net.pump(50_000);
    // Rejoin with the same identity: the counter must restart from zero.
    let c2 = join_dynamic_client(&mut net, &cfg, 23, CLIENT_ADDR_BASE + 1, b"erin");
    net.submit(c2, b"incr".to_vec(), false);
    net.pump(50_000);
    assert_eq!(
        net.last_reply(c2).expect("reply"),
        1u64.to_be_bytes().to_vec()
    );
}

#[test]
fn session_takeover_clears_previous_state() {
    let cfg = dynamic_cfg();
    let mut net = Net::new(cfg.clone(), 0, AppKind::SessionCounter);
    let c1 = join_dynamic_client(&mut net, &cfg, 24, CLIENT_ADDR_BASE, b"frank");
    net.submit(c1, b"incr".to_vec(), false);
    net.pump(50_000);
    net.submit(c1, b"incr".to_vec(), false);
    net.pump(50_000);
    // A second device signs on with the same identity, terminating the
    // first session — and its library-managed state.
    let c2 = join_dynamic_client(&mut net, &cfg, 25, CLIENT_ADDR_BASE + 1, b"frank");
    net.submit(c2, b"incr".to_vec(), false);
    net.pump(50_000);
    assert_eq!(
        net.last_reply(c2).expect("reply"),
        1u64.to_be_bytes().to_vec(),
        "takeover starts from a clean session"
    );
}

#[test]
fn session_state_survives_state_transfer() {
    let mut cfg = dynamic_cfg();
    cfg.checkpoint_interval = 4;
    cfg.log_size = 16;
    let mut net = Net::new(cfg.clone(), 0, AppKind::SessionCounter);
    let c = join_dynamic_client(&mut net, &cfg, 26, CLIENT_ADDR_BASE, b"grace");
    for _ in 0..6 {
        net.submit(c, b"incr".to_vec(), false);
        net.pump(50_000);
    }
    // Crash replica 3 and bring it back blank: it must recover the session
    // table through the Merkle transfer.
    net.alive[3] = false;
    net.replicas[3] = make_replica(&net.cfg, 3, AppKind::SessionCounter, &[]);
    net.alive[3] = true;
    let res = net.replicas[3].on_start(net.now, true);
    net.route(Source::Replica(3), res.outputs);
    net.pump(50_000);
    assert!(net.replicas[3].metrics().state_transfers_completed >= 1);
    // The restarted replica lost the client's MAC session key (§2.3): the
    // client's blind NewKey retransmission re-installs it.
    net.fire_client_timer(c, crate::output::TimerKind::NewKey);
    net.pump(50_000);
    // The recovered replica serves the session correctly: next incr = 7 on
    // every replica (exercised through the normal agreement path).
    net.submit(c, b"incr".to_vec(), false);
    net.pump(50_000);
    assert_eq!(
        net.last_reply(c).expect("reply"),
        7u64.to_be_bytes().to_vec()
    );
    net.assert_states_equal(&[0, 1, 2, 3]);
}

// ----------------------------------------------------------------------
// Hot path: encode-once broadcast and the clone budget
// ----------------------------------------------------------------------

/// Every destination of a broadcast must share one reference-counted
/// packet buffer — the encode-once rule. A refactor that reintroduces a
/// per-destination `Vec` clone changes the pointer identity and fails here.
#[test]
fn broadcast_shares_one_packet_buffer() {
    let cfg = default_cfg();
    let mut primary = make_replica(&cfg, 0, AppKind::Null(64), &[ClientId(1)]);
    let _ = primary.on_start(0, false);
    let mut client = Client::new_static(cfg, SEED, ClientId(1), CLIENT_ADDR_BASE);
    let sub = client.submit(vec![7; 100], false, 0);
    let request = sub
        .outputs
        .iter()
        .find_map(|o| match o {
            Output::Send { packet, .. } => Some(std::sync::Arc::clone(packet)),
            _ => None,
        })
        .expect("client sent the request");
    // The client's own multicast already shares one buffer across replicas.
    let client_packets: Vec<_> = sub
        .outputs
        .iter()
        .filter_map(|o| match o {
            Output::Send { packet, .. } => Some(packet),
            _ => None,
        })
        .collect();
    assert_eq!(client_packets.len(), 4, "allbig: request goes to everyone");
    for p in &client_packets {
        assert!(
            std::sync::Arc::ptr_eq(p, &request),
            "client multicast must share one buffer"
        );
    }

    let res = primary.handle_packet(&request, 1_000);
    let preprepares: Vec<_> = res
        .outputs
        .iter()
        .filter_map(|o| match o {
            Output::Send { packet, .. } if packet.first() == Some(&2) => Some(packet),
            _ => None,
        })
        .collect();
    assert_eq!(preprepares.len(), 3, "pre-prepare to each backup");
    for p in &preprepares[1..] {
        assert!(
            std::sync::Arc::ptr_eq(p, preprepares[0]),
            "broadcast destinations must share one sealed buffer"
        );
    }
    let m = primary.metrics();
    assert_eq!(
        m.hot_packet_clones, 0,
        "the hot-path clone budget is exactly zero"
    );
    assert_eq!(m.hot_bytes_copied, 0);
    assert_eq!(
        m.hot_encodings, 1,
        "one logical broadcast = one prefix encoding, independent of fan-out"
    );
}

/// Whole-cluster clone budget: agreement, replies, *and* the small-request
/// relay path (a backup forwarding a retransmitted request to the primary)
/// all stay within a zero per-destination deep-copy budget.
#[test]
fn hot_path_clone_budget_is_zero_under_traffic() {
    // Small requests so the relay path (backup -> primary) is exercised by
    // the retransmission below.
    let cfg = PbftConfig {
        all_requests_big: false,
        ..default_cfg()
    };
    let mut net = Net::new(cfg, 2, AppKind::Null(64));
    for round in 0..4u64 {
        for c in 0..2usize {
            net.submit(c, vec![round as u8; 32], false);
        }
        net.pump(100_000);
    }
    // Force a client retransmission: the request reaches the backups, which
    // relay it to the primary (the §2.1 small-request relay).
    net.submit(0, vec![9; 32], false);
    net.fire_client_timer(0, crate::output::TimerKind::Retransmit);
    net.pump(100_000);
    let mut encodings = 0;
    for (i, r) in net.replicas.iter().enumerate() {
        let m = r.metrics();
        assert_eq!(m.hot_packet_clones, 0, "replica {i} cloned a packet");
        assert_eq!(m.hot_bytes_copied, 0, "replica {i} deep-copied bytes");
        encodings += m.hot_encodings;
    }
    assert!(encodings > 0, "the counter is actually wired");
}
