//! The PBFT replica engine (sans-io).
//!
//! One [`Replica`] value is the complete protocol state machine for one
//! group member: feed it packets and timer firings, collect sends and timer
//! arms. Submodules: `execution` (ordering → execution → checkpoints),
//! `viewchange` (primary failover) and `recovery` (status exchange and
//! state transfer).

mod execution;
mod recovery;
mod viewchange;

#[cfg(test)]
mod tests;

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use pbft_crypto::Digest;
use pbft_state::{FetchRequest, Fetcher, Section, Snapshot};

use crate::app::{App, NonDet, StateHandle};
use crate::config::PbftConfig;
use crate::keys::KeyStore;
use crate::log::MessageLog;
use crate::membership::Membership;
use crate::messages::{
    AuthTag, Envelope, Message, NewKeyMsg, ReplyMsg, RequestMsg, Sender, StatusMsg, ViewChangeMsg,
};
use crate::output::{HandleResult, NetTarget, Output, TimerKind};
use crate::types::{ClientId, NetAddr, ReplicaId, SeqNum, View};

/// Pages holding the membership tables at the front of the state region.
pub const MEMBERSHIP_PAGES: u64 = 4;

/// Pages holding the per-session state table (the §3.3.2 subsystem), after
/// the membership pages.
pub const SESSION_PAGES: u64 = 4;

/// Pages reserved at the front of the state region for the library partition
/// (membership tables + session state + the cross-shard transaction tables
/// of [`crate::xshard`], which occupy [`crate::xshard::xshard_section`]
/// whether or not the deployment wraps its app in
/// [`crate::xshard::XShardApp`]). The application partition starts after
/// them.
pub const LIB_REGION_PAGES: u64 = MEMBERSHIP_PAGES + SESSION_PAGES + crate::xshard::XSHARD_PAGES;

/// Counters exposed for experiments and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicaMetrics {
    /// Requests whose execution completed (including tentative).
    pub executed_requests: u64,
    /// Batches executed.
    pub batches_executed: u64,
    /// Batches executed tentatively (before commit).
    pub tentative_executions: u64,
    /// Times execution stalled on a missing big-request body (§2.4).
    pub stuck_missing_body: u64,
    /// State transfers started.
    pub state_transfers_started: u64,
    /// State transfers completed.
    pub state_transfers_completed: u64,
    /// View changes this replica voted for.
    pub view_changes_started: u64,
    /// New views entered.
    pub new_views_entered: u64,
    /// Messages dropped for failed authentication (includes the restarted-
    /// replica authenticator losses of §2.3).
    pub auth_failures: u64,
    /// Pre-prepares rejected by non-determinism validation (§2.5).
    pub nondet_validation_failures: u64,
    /// Checkpoints taken.
    pub checkpoints_taken: u64,
    /// Read-only requests served via the fast path.
    pub read_only_served: u64,
    /// Read-only requests parked by the contention gate: their declared
    /// keys (or an admin operation such as a `Reshard`) were dirty in a
    /// tentatively executed, not-yet-committed batch, so the read was held
    /// until local commit instead of being answered from uncommitted state.
    pub read_only_deferred: u64,
    /// Contended reads served immediately because the deferred-read queue
    /// was at capacity ([`crate::PbftConfig::read_defer_max`]) — the
    /// pre-gate optimistic behavior, kept as the overload fallback.
    pub read_defer_overflow: u64,
    /// Malformed packets dropped.
    pub decode_failures: u64,
    /// Requests re-replied from the last-reply cache.
    pub duplicate_requests: u64,
    /// Agreement-phase packets sent (pre-prepare, prepare, commit, and the
    /// linear engine's QC broadcasts), counted per destination. The benches
    /// compare this across engines to expose per-slot communication cost.
    pub agreement_msgs_sent: u64,
    /// View-change protocol packets sent (view-change votes and new-view
    /// installations), counted per destination. PBFT's all-to-all votes make
    /// this O(n²) per rotation; the linear engine's leader-directed votes
    /// keep it O(n).
    pub viewchange_msgs_sent: u64,
    /// Hot-path cost counter: envelope prefix encodings performed on the
    /// send path. The encode-once rule makes this one per logical send or
    /// broadcast, independent of fan-out — the hotpath bench divides it by
    /// executed requests to check the amortized cost model.
    pub hot_encodings: u64,
    /// Hot-path cost counter: per-destination deep copies of a sealed
    /// packet or its envelope on the send path. Broadcast buffers are
    /// reference-counted, so this is structurally zero; the counter exists
    /// as the clone *budget* a unit test and the hotpath bench pin, so a
    /// later refactor that quietly reintroduces per-destination cloning
    /// fails loudly.
    pub hot_packet_clones: u64,
    /// Hot-path cost counter: bytes deep-copied on the send path beyond the
    /// single canonical encoding of each message (i.e. the bytes the clones
    /// counted by `hot_packet_clones` moved).
    pub hot_bytes_copied: u64,
}

/// Declared write-effects of one tentatively executed (prepared but not
/// yet committed) batch — what the read-only contention gate checks reads
/// against. Keys come from [`crate::xshard::XMsg::KeyedOp`] frames; any
/// other xshard frame (a `Reshard` epoch flip, a `RangeInstall`, 2PC
/// traffic) is an *admin* effect that conflicts with every keyed read.
/// Plain unframed operations declare no keys and are not tracked: reads
/// of such apps keep the pure optimistic path (the client-side 2f+1
/// matching rule is what protects them).
#[derive(Debug, Default, Clone)]
pub(crate) struct TentativeEffects {
    /// Shard keys written by the batch's `KeyedOp` requests.
    pub keys: Vec<Vec<u8>>,
    /// The batch contains an admin frame (epoch flip, range install, 2PC).
    pub admin: bool,
}

impl TentativeEffects {
    pub(crate) fn is_empty(&self) -> bool {
        self.keys.is_empty() && !self.admin
    }

    /// Record one request body's effects (no-op for unframed operations).
    pub(crate) fn note_op(&mut self, op: &[u8]) {
        match crate::xshard::XMsg::decode(op) {
            Some(crate::xshard::XMsg::KeyedOp { keys, .. }) => self.keys.extend(keys),
            Some(_) => self.admin = true,
            None => {}
        }
    }
}

/// An in-progress state transfer.
pub(crate) struct FetchState {
    pub target_seq: SeqNum,
    pub target_root: Digest,
    pub fetcher: Fetcher,
    pub peers: Vec<ReplicaId>,
    pub attempt: usize,
    pub outstanding: Vec<FetchRequest>,
}

/// View-change vote collection.
#[derive(Default)]
pub(crate) struct ViewChangeState {
    /// Votes per proposed view.
    pub votes: BTreeMap<View, BTreeMap<ReplicaId, ViewChangeMsg>>,
    /// The view this replica is currently trying to install (when in a view
    /// change).
    pub target: Option<View>,
}

/// The PBFT replica state machine. See the crate docs for the driving
/// contract.
pub struct Replica {
    pub(crate) cfg: PbftConfig,
    pub(crate) keys: KeyStore,
    pub(crate) state: StateHandle,
    pub(crate) app: Box<dyn App>,
    pub(crate) lib_section: Section,

    pub(crate) view: View,
    pub(crate) in_view_change: bool,
    pub(crate) seq_assign: SeqNum,
    pub(crate) log: MessageLog,
    pub(crate) last_executed: SeqNum,
    /// Highest pre-prepare sequence seen; anything at or below is a
    /// retransmission/replay for non-determinism validation purposes (§2.5).
    pub(crate) max_pp_seen: SeqNum,

    /// Primary-side batching queue and assignment dedupe.
    pub(crate) pending: VecDeque<RequestMsg>,
    pub(crate) pending_digests: HashSet<Digest>,
    pub(crate) assigned_ts: HashMap<ClientId, u64>,

    /// Big-request body store, keyed by request digest (§2.1/§2.4).
    pub(crate) bodies: HashMap<Digest, RequestMsg>,

    /// Requests observed (as a backup) but not yet executed — the basis for
    /// primary suspicion, and re-queued if this replica becomes primary.
    pub(crate) observed: BTreeMap<Digest, RequestMsg>,

    /// Per-client last executed timestamp and cached reply.
    pub(crate) last_req_ts: HashMap<ClientId, u64>,
    pub(crate) last_reply: HashMap<ClientId, ReplyMsg>,
    pub(crate) client_addr: HashMap<ClientId, NetAddr>,

    /// Own checkpoints (serving state transfer) and votes.
    pub(crate) checkpoints: BTreeMap<SeqNum, Snapshot>,
    /// Execution-chain value at each retained checkpoint (for rollback).
    pub(crate) checkpoint_chain: BTreeMap<SeqNum, Digest>,
    pub(crate) ckpt_votes: BTreeMap<(SeqNum, Digest), std::collections::BTreeSet<ReplicaId>>,
    pub(crate) stable: (SeqNum, Digest),

    pub(crate) fetch: Option<FetchState>,
    pub(crate) vc: ViewChangeState,
    pub(crate) membership: Option<Membership>,
    /// Per-session application state (§3.3.2), mirrored in its region
    /// section.
    pub(crate) sessions: crate::session::SessionStore,
    pub(crate) session_section: Section,

    /// Recovery state (§2.3): set after a restart until the first state
    /// transfer completes.
    pub(crate) recovering: bool,
    pub(crate) peer_status: BTreeMap<ReplicaId, StatusMsg>,
    /// Last time (ns) we sent status+retransmissions to help a lagging peer
    /// (rate limiter: replying to every status would ping-pong into a storm
    /// of signed retransmissions under healthy pipeline skew).
    pub(crate) last_peer_help: BTreeMap<ReplicaId, u64>,

    /// Declared write-effects of every tentatively executed batch still
    /// awaiting commit, keyed by sequence number (the read-only contention
    /// gate's dirty set). Entries leave at commit, rollback, or state
    /// transfer — the three places tentative marks are resolved.
    pub(crate) tentative_effects: BTreeMap<SeqNum, TentativeEffects>,
    /// Read-only requests parked by the contention gate until the dirty
    /// batches covering their keys commit locally. Bounded by
    /// [`PbftConfig::read_defer_max`]; flushed wherever
    /// `tentative_effects` entries are resolved.
    pub(crate) deferred_reads: VecDeque<RequestMsg>,

    /// Execution-order commitment: running digest of executed batches, used
    /// by tests to prove all replicas executed the same sequence.
    pub(crate) exec_chain: Digest,

    /// Linear-communication mode ([`crate::linear`]): votes flow to the
    /// leader, which broadcasts quorum certificates; view-change votes go to
    /// the incoming leader only.
    pub(crate) linear: bool,

    /// Last pre-prepare issuance time (the no-batching pacing quantum).
    pub(crate) last_issue_ns: u64,
    /// Deadline of the current pipelined batch-formation gather, if one is
    /// open (see [`PbftConfig::pipeline_min_batch`]): the primary is
    /// holding a thin batch back while older batches fill the pipeline,
    /// and will issue whatever is pending by this instant at the latest.
    pub(crate) gather_deadline_ns: Option<u64>,
    /// Width of the most recently issued batch — the saturation signal the
    /// batch-formation gate's refractory term keys on (a wide batch means
    /// arrivals are plentiful and a short gather will fill the next one).
    pub(crate) last_issue_width: usize,
    /// Progress marker for the view-change timer heuristic.
    pub(crate) vc_timer_baseline: SeqNum,
    pub(crate) vc_timer_armed: bool,

    pub(crate) metrics: ReplicaMetrics,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.keys.me())
            .field("view", &self.view)
            .field("last_executed", &self.last_executed)
            .field("stable", &self.stable.0)
            .finish()
    }
}

impl Replica {
    /// Create a replica.
    ///
    /// `preinstalled_clients` models the completed startup key exchange of a
    /// static deployment; pass `&[]` for a freshly restarted replica (which
    /// has lost all client session keys — the §2.3 scenario).
    pub fn new(
        cfg: PbftConfig,
        group_seed: u64,
        me: ReplicaId,
        state: StateHandle,
        app: Box<dyn App>,
        preinstalled_clients: &[ClientId],
    ) -> Replica {
        let n = cfg.n();
        let keys = KeyStore::new_replica(group_seed, me, n, preinstalled_clients);
        let page = pbft_state::PAGE_SIZE as u64;
        let lib_section = Section {
            base: 0,
            len: MEMBERSHIP_PAGES * page,
        };
        let session_section = Section {
            base: MEMBERSHIP_PAGES * page,
            len: SESSION_PAGES * page,
        };
        let sessions = crate::session::SessionStore::load(&session_section, &state.borrow())
            .unwrap_or_default();
        let membership = if cfg.dynamic_membership {
            let m = Membership::load(&lib_section, &state.borrow(), cfg.max_clients)
                .unwrap_or_else(|_| Membership::new(cfg.max_clients));
            Some(m)
        } else {
            None
        };
        let log = MessageLog::new(cfg.log_size);
        let mut r = Replica {
            cfg,
            keys,
            state,
            app,
            lib_section,
            view: 0,
            in_view_change: false,
            seq_assign: 0,
            log,
            last_executed: 0,
            max_pp_seen: 0,
            pending: VecDeque::new(),
            pending_digests: HashSet::new(),
            assigned_ts: HashMap::new(),
            bodies: HashMap::new(),
            observed: BTreeMap::new(),
            last_req_ts: HashMap::new(),
            last_reply: HashMap::new(),
            client_addr: HashMap::new(),
            checkpoints: BTreeMap::new(),
            checkpoint_chain: BTreeMap::new(),
            ckpt_votes: BTreeMap::new(),
            stable: (0, Digest::ZERO),
            sessions,
            session_section,
            fetch: None,
            vc: ViewChangeState::default(),
            membership,
            recovering: false,
            peer_status: BTreeMap::new(),
            last_peer_help: BTreeMap::new(),
            tentative_effects: BTreeMap::new(),
            deferred_reads: VecDeque::new(),
            exec_chain: Digest::ZERO,
            linear: false,
            last_issue_ns: 0,
            gather_deadline_ns: None,
            last_issue_width: 0,
            vc_timer_baseline: 0,
            vc_timer_armed: false,
            metrics: ReplicaMetrics::default(),
        };
        // Record the genesis checkpoint (seq 0) so state transfer toward it
        // and rollback of early tentative executions are possible.
        let root = r.state.borrow_mut().refresh_digest();
        let snap = r.state.borrow().snapshot(0);
        r.stable = (0, root);
        r.checkpoints.insert(0, snap);
        r.checkpoint_chain.insert(0, Digest::ZERO);
        r
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.keys.me()
    }

    /// Current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// Whether this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.cfg.primary_of(self.view) == self.id() && !self.in_view_change
    }

    /// Highest executed sequence number.
    pub fn last_executed(&self) -> SeqNum {
        self.last_executed
    }

    /// Last stable checkpoint `(seq, root)`.
    pub fn stable_checkpoint(&self) -> (SeqNum, Digest) {
        self.stable
    }

    /// Execution-order commitment digest (equal across correct replicas that
    /// executed the same sequence).
    pub fn exec_chain(&self) -> Digest {
        self.exec_chain
    }

    /// Metrics counters.
    pub fn metrics(&self) -> &ReplicaMetrics {
        &self.metrics
    }

    /// The replica's state handle (for harness inspection).
    pub fn state_handle(&self) -> StateHandle {
        self.state.clone()
    }

    /// Mutable access to the application (test injection).
    pub fn app_mut(&mut self) -> &mut dyn App {
        self.app.as_mut()
    }

    /// Membership tables (dynamic mode only).
    pub fn membership(&self) -> Option<&Membership> {
        self.membership.as_ref()
    }

    /// Whether this replica is still recovering from a restart.
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// Whether a leader rotation is in flight: this replica has voted a
    /// view change and has not yet entered the new view.
    pub fn in_view_change(&self) -> bool {
        self.in_view_change
    }

    /// True when running in linear-communication mode (constructed through
    /// [`crate::linear::LinearReplica`]).
    pub fn is_linear(&self) -> bool {
        self.linear
    }

    /// Fault-injection surface: cast an unjustified view-change vote, the
    /// way a Byzantine replica spamming view changes would. Each call votes
    /// for one view past the highest view this replica has voted for, so a
    /// repeated caller emits a stream of escalating, *correctly
    /// authenticated* votes. Honest deployments never call this; the
    /// harness's `ViewChangeStorm` fault is built on it. Safety is
    /// unaffected (view changes preserve committed prefixes by
    /// construction); the interesting question a storm probes is how much
    /// liveness and throughput the spam costs — a lone stormer stays below
    /// the `f + 1` join rule, so correct replicas must keep committing.
    pub fn force_suspect(&mut self, now_ns: u64) -> HandleResult {
        let mut res = HandleResult::default();
        let target = self.vc.target.unwrap_or(self.view).max(self.view) + 1;
        self.start_view_change(target, now_ns, &mut res);
        res
    }

    /// Diagnostic snapshot of agreement state (wedge debugging in the
    /// harness; not part of the protocol).
    pub fn debug_wedge_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "view={:?} exec={} stable={} assign={} pending={} in_vc={} fetch={}",
            self.view,
            self.last_executed,
            self.stable.0,
            self.seq_assign,
            self.pending.len(),
            self.in_view_change,
            self.fetch.is_some(),
        );
        for (&s, e) in self.log.iter() {
            if e.executed && !e.tentative && s % 64 != 0 {
                continue; // only interesting entries
            }
            let _ = write!(
                out,
                "\n  seq={s} v={:?} pp={} prep={}({}) comm={}({}) exec={} tent={}",
                e.view,
                e.preprepare.is_some(),
                e.prepared,
                e.prepares.len(),
                e.committed,
                e.commits.len(),
                e.executed,
                e.tentative,
            );
        }
        let _ = write!(
            out,
            "\n  ckpts={:?}",
            self.checkpoints.keys().collect::<Vec<_>>()
        );
        for (r, st) in &self.peer_status {
            let _ = write!(
                out,
                "\n  peer {:?}: view={:?} exec={} stable={} root={:?}",
                r, st.view, st.last_executed, st.last_stable_seq, st.stable_root
            );
        }
        let _ = write!(
            out,
            "\n  votes={:?}",
            self.ckpt_votes
                .iter()
                .map(|((s, _), v)| (*s, v.len()))
                .collect::<Vec<_>>()
        );
        out
    }

    /// Called once when the replica (re)starts. `restarted` replays the
    /// paper's §2.3 scenario: announce status and recover from peers.
    pub fn on_start(&mut self, now_ns: u64, restarted: bool) -> HandleResult {
        let mut res = HandleResult::default();
        if restarted {
            self.recovering = true;
            let status = self.my_status();
            self.multicast(Message::Status(status), &mut res);
        }
        self.arm_vc_timer(&mut res);
        res.outputs.push(Output::SetTimer {
            kind: TimerKind::StatusTick,
            delay_ns: self.cfg.status_interval_ns,
        });
        let _ = now_ns;
        res
    }

    pub(crate) fn my_status(&self) -> StatusMsg {
        StatusMsg {
            replica: self.id(),
            view: self.view,
            last_stable_seq: self.stable.0,
            stable_root: self.stable.1,
            last_executed: self.last_executed,
            in_view_change: self.in_view_change,
        }
    }

    /// Message discriminants that must carry a replica multicast
    /// authenticator (or signature): these verify *before* the body is
    /// materialized, so a tampered packet is rejected straight off the
    /// borrowed view, without a single allocation.
    fn replica_authenticated(disc: u8) -> bool {
        // PrePrepare, Checkpoint, ViewChange, NewView, PrepareQC, CommitQC
        // (Prepare/Commit take the typed fast path and never get here).
        matches!(disc, 2 | 6 | 7 | 8 | 15 | 16)
    }

    /// Handle an incoming packet.
    ///
    /// The receive path is zero-copy up to authentication: the packet is
    /// parsed as a borrowed [`crate::messages::view::PacketView`] (one walk,
    /// no allocation), replica-authenticated kinds verify their MAC entry or
    /// signature against the borrowed prefix, and only then is the owned
    /// message materialized — once. Prepare/commit votes, the
    /// highest-volume kinds, are `Copy` and dispatch entirely from the view.
    pub fn handle_packet(&mut self, packet: &[u8], now_ns: u64) -> HandleResult {
        use crate::messages::view::{FastBody, PacketView};
        let mut res = HandleResult::default();
        let view = match PacketView::parse(packet) {
            Ok(v) => v,
            Err(_) => {
                self.metrics.decode_failures += 1;
                return res;
            }
        };
        match view.fast {
            FastBody::Prepare(p) => {
                if view.sender == Sender::Replica(p.replica) && self.verify_view(&view, &mut res) {
                    self.on_prepare(p, now_ns, &mut res);
                }
            }
            FastBody::Commit(c) => {
                if view.sender == Sender::Replica(c.replica) && self.verify_view(&view, &mut res) {
                    self.on_commit(c, now_ns, &mut res);
                }
            }
            FastBody::Other => {
                if Self::replica_authenticated(view.disc) && !self.verify_view(&view, &mut res) {
                    return res;
                }
                let env = match view.to_envelope() {
                    Ok(env) => env,
                    Err(_) => {
                        self.metrics.decode_failures += 1;
                        return res;
                    }
                };
                self.dispatch(env, view.prefix(), view.body(), now_ns, &mut res);
            }
        }
        res
    }

    /// Verify a borrowed packet view claiming to come from a fellow replica:
    /// its own authenticator entry (extracted without materializing the
    /// vector) or the signature, over the borrowed prefix.
    fn verify_view(
        &mut self,
        view: &crate::messages::view::PacketView<'_>,
        res: &mut HandleResult,
    ) -> bool {
        use crate::messages::view::AuthView;
        let Sender::Replica(from) = view.sender else {
            self.metrics.auth_failures += 1;
            return false;
        };
        let ok = match view.auth {
            AuthView::Authenticator { .. } => match view.auth.mac_for(self.id().0) {
                Some(mac) => {
                    self.keys
                        .verify_replica_entry(from, view.prefix(), mac, &mut res.counts)
                }
                None => false,
            },
            AuthView::Sig(sig) => self.keys.verify_from_replica(
                from,
                view.prefix(),
                &AuthTag::Sig(sig),
                &mut res.counts,
            ),
            _ => false,
        };
        if !ok {
            self.metrics.auth_failures += 1;
        }
        ok
    }

    /// Handle a materialized envelope whose replica authentication (where
    /// required) already passed. `prefix` is the authenticated prefix,
    /// `body` the canonical message encoding inside it.
    fn dispatch(
        &mut self,
        env: Envelope,
        prefix: &[u8],
        body: &[u8],
        now_ns: u64,
        res: &mut HandleResult,
    ) {
        match env.msg {
            Message::Request(req) => {
                self.on_request(env.sender, req, &env.auth, prefix, body, now_ns, res)
            }
            Message::PrePrepare(pp) => self.on_preprepare(pp, now_ns, false, res),
            // Prepare/Commit votes dispatch from the typed view in
            // `handle_packet` and never reach here.
            Message::Prepare(_) | Message::Commit(_) => {}
            Message::Checkpoint(c) => {
                if env.sender == Sender::Replica(c.replica) {
                    self.on_checkpoint(c, now_ns, res);
                }
            }
            Message::ViewChange(vc) => {
                if env.sender == Sender::Replica(vc.replica) {
                    self.on_view_change(vc, now_ns, res);
                }
            }
            Message::NewView(nv) => {
                if env.sender == Sender::Replica(self.cfg.primary_of(nv.view)) {
                    self.on_new_view(nv, now_ns, res);
                }
            }
            Message::NewKey(nk) => self.on_new_key(nk, prefix, &env.auth, res),
            Message::Status(s) => {
                if env.sender == Sender::Replica(s.replica) {
                    self.on_status(s, now_ns, res);
                }
            }
            Message::Fetch(f) => self.on_fetch(f, res),
            Message::FetchResp(fr) => self.on_fetch_resp(fr, now_ns, res),
            Message::BodyFetch(bf) => self.on_body_fetch(bf, res),
            Message::BodyResp(req) => self.on_body_resp(req, now_ns, res),
            // QCs are accepted from any authenticated group member, not just
            // the leader: the recovery help path resends them on behalf of a
            // crashed leader (the voter list itself is unattested — the same
            // trust model as the prepared certificates in view changes).
            Message::PrepareQC(qc) => self.on_prepare_qc(qc, now_ns, res),
            Message::CommitQC(qc) => self.on_commit_qc(qc, now_ns, res),
            Message::Reply(_) => { /* replicas do not consume replies */ }
        }
    }

    /// Handle a timer firing.
    pub fn on_timer(&mut self, kind: TimerKind, now_ns: u64) -> HandleResult {
        let mut res = HandleResult::default();
        match kind {
            TimerKind::ViewChange => self.on_vc_timer(now_ns, &mut res),
            TimerKind::NewViewTimeout => self.on_new_view_timeout(now_ns, &mut res),
            TimerKind::FetchRetry => self.on_fetch_retry(&mut res),
            TimerKind::BatchKick => {
                self.try_issue(now_ns, &mut res);
            }
            TimerKind::StatusTick => {
                // Periodic status broadcast: peers respond by retransmitting
                // what we are missing (recovery from lost datagrams).
                let status = self.my_status();
                self.multicast(Message::Status(status), &mut res);
                res.outputs.push(Output::SetTimer {
                    kind: TimerKind::StatusTick,
                    delay_ns: self.cfg.status_interval_ns,
                });
            }
            TimerKind::Retransmit | TimerKind::NewKey => { /* client-side timers */ }
        }
        res
    }

    // ------------------------------------------------------------------
    // Request intake (normal case §2.1 + dynamic membership §3.1)
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn on_request(
        &mut self,
        sender: Sender,
        req: RequestMsg,
        auth: &AuthTag,
        prefix: &[u8],
        body: &[u8],
        now_ns: u64,
        res: &mut HandleResult,
    ) {
        use crate::messages::Operation;

        let is_join = matches!(
            req.op,
            Operation::JoinPhase1 { .. } | Operation::JoinPhase2 { .. }
        );
        // The claimed sender must match the request body (joins are
        // anonymous until admitted).
        let sender_ok = match sender {
            Sender::Client(c) => c == req.client && !is_join,
            Sender::Anonymous => is_join,
            // Relayed requests are re-sent verbatim with the client's own
            // envelope, so a replica sender here is a protocol violation.
            Sender::Replica(_) => false,
        };
        if !sender_ok {
            self.metrics.auth_failures += 1;
            return;
        }
        if is_join {
            if !self.cfg.dynamic_membership {
                return;
            }
            if !self.verify_join_auth(&req, auth, prefix, res) {
                self.metrics.auth_failures += 1;
                return;
            }
        } else {
            // "the system first checks to see if the identifier exists in the
            // redirection table before going into the more lengthy process of
            // verifying its signature or authenticator."
            if let Some(m) = &self.membership {
                if !m.contains(req.client) && !self.keys.has_client_key(req.client) {
                    self.metrics.auth_failures += 1;
                    return;
                }
            } else if self.keys.client_pubkey(req.client).is_none() {
                // Static deployments: client public keys are configuration,
                // not session state, so a restarted replica still has them —
                // re-derive lazily. Without this, a signature-mode request
                // could never verify again after a restart.
                let pk = self.keys.static_client_pubkey(req.client);
                self.keys.install_client_pubkey(req.client, pk);
            }
            if !self
                .keys
                .verify_from_client(req.client, prefix, auth, &mut res.counts)
            {
                self.metrics.auth_failures += 1;
                return;
            }
        }

        self.client_addr.insert(req.client, req.reply_addr);

        // Duplicate suppression / reply retransmission.
        if let Some(&ts) = self.last_req_ts.get(&req.client) {
            if req.timestamp < ts {
                return;
            }
            if req.timestamp == ts {
                self.metrics.duplicate_requests += 1;
                if let Some(reply) = self.last_reply.get(&req.client).cloned() {
                    // Retransmissions always get the full body: the client
                    // may be stuck holding a digest quorum without it.
                    self.send_reply(reply, req.reply_addr, false, res);
                }
                return;
            }
        }

        // Read-only fast path (§2.1).
        if req.read_only && self.cfg.read_only_optimization && matches!(req.op, Operation::App(_)) {
            self.serve_read_only(&req, now_ns, res);
            return;
        }

        // The request digest is defined over the canonical request encoding,
        // which is exactly the body span of the packet we just parsed —
        // digest it in place instead of re-encoding the struct (the view
        // tests pin `Digest::of(body) == req.digest()`).
        let digest = Digest::of(body);
        res.counts.digest_bytes += body.len() as u64;
        let big = self.cfg.is_big(body.len());
        if big {
            // Body delivered by client multicast; remember it for execution.
            self.bodies.insert(digest, req.clone());
        }

        if self.is_primary() {
            let assigned = self.assigned_ts.get(&req.client).copied().unwrap_or(0);
            if req.timestamp <= assigned || self.pending_digests.contains(&digest) {
                // Already queued or assigned — but a retransmission is a
                // sign the client is waiting, so make sure the batching
                // engine is awake before dropping the duplicate.
                self.try_issue(now_ns, res);
                return;
            }
            self.pending_digests.insert(digest);
            self.assigned_ts.insert(req.client, req.timestamp);
            self.pending.push_back(req);
            self.try_issue(now_ns, res);
        } else {
            self.observed.insert(digest, req.clone());
            // Backups relay non-big requests to the primary verbatim — the
            // client's own envelope, so its authenticator stays valid — and
            // arm the suspicion timer. Encoded once, to the one destination;
            // no deep envelope clone.
            if !big {
                let primary = self.cfg.primary_of(self.view);
                let msg = Message::Request(req.clone());
                let relay_prefix = Envelope::encode_prefix(sender, &msg);
                self.metrics.hot_encodings += 1;
                let packet = std::sync::Arc::new(Envelope::seal(relay_prefix, auth));
                let env = std::sync::Arc::new(Envelope {
                    sender,
                    msg,
                    auth: auth.clone(),
                });
                res.outputs.push(Output::Send {
                    to: NetTarget::Replica(primary),
                    packet,
                    envelope: env,
                });
            }
            self.arm_vc_timer(res);
        }
    }

    fn verify_join_auth(
        &self,
        req: &RequestMsg,
        auth: &AuthTag,
        prefix: &[u8],
        res: &mut HandleResult,
    ) -> bool {
        use crate::messages::Operation;
        let AuthTag::Sig(sig) = auth else {
            return false;
        };
        let pubkey = match &req.op {
            Operation::JoinPhase1 { pubkey, .. } => *pubkey,
            Operation::JoinPhase2 { fingerprint, .. } => {
                match self
                    .membership
                    .as_ref()
                    .and_then(|m| m.pending(fingerprint))
                {
                    Some(p) => p.pubkey,
                    None => return false,
                }
            }
            _ => return false,
        };
        res.counts.sig_verify += 1;
        pubkey.verify(prefix, sig).is_ok()
    }

    /// §2.1 read-only fast path, behind the contention gate: a read whose
    /// declared keys are dirty in a tentatively executed (prepared but
    /// uncommitted) batch is parked until local commit — answering it now
    /// would expose uncommitted state, never match the committed quorum,
    /// and push the client into retransmit-and-escalate. Reads with no
    /// conflict are answered immediately against committed-or-tentative
    /// state exactly as before.
    fn serve_read_only(&mut self, req: &RequestMsg, now_ns: u64, res: &mut HandleResult) {
        use crate::messages::Operation;
        let Operation::App(op) = &req.op else { return };
        if self.read_defers(op) {
            if self.deferred_reads.len() >= self.cfg.read_defer_max {
                self.metrics.read_defer_overflow += 1;
                // Queue full: fall back to immediate optimistic service.
            } else {
                if !self
                    .deferred_reads
                    .iter()
                    .any(|r| r.client == req.client && r.timestamp == req.timestamp)
                {
                    self.metrics.read_only_deferred += 1;
                    self.deferred_reads.push_back(req.clone());
                }
                return;
            }
        }
        self.serve_read_now(req, now_ns, res);
    }

    /// Would serving `op` now observe a tentatively executed effect?
    fn read_defers(&self, op: &[u8]) -> bool {
        if self.tentative_effects.is_empty() {
            return false;
        }
        match crate::xshard::XMsg::decode(op) {
            // A keyed read conflicts with a dirty declared key or with any
            // admin effect (an uncommitted `Reshard` would leak a
            // `WrongEpoch{map}` for an epoch that may yet be rolled back).
            Some(crate::xshard::XMsg::KeyedOp { keys, .. }) => self
                .tentative_effects
                .values()
                .any(|e| e.admin || keys.iter().any(|k| e.keys.contains(k))),
            // Admin reads (decision/apply queries) scan protocol tables any
            // tracked tentative effect may be mutating.
            Some(_) => true,
            // Unframed operations declare no keys: optimistic path.
            None => false,
        }
    }

    /// Re-examine parked reads after tentative marks were resolved
    /// (commit, rollback, or state transfer): serve everything no longer
    /// contended, drop reads already answered through the ordered path.
    pub(crate) fn flush_deferred_reads(&mut self, now_ns: u64, res: &mut HandleResult) {
        use crate::messages::Operation;
        if self.deferred_reads.is_empty() {
            return;
        }
        let mut parked = VecDeque::new();
        while let Some(req) = self.deferred_reads.pop_front() {
            // A newer (or equal) executed timestamp means the client gave
            // up on the optimistic round and escalated: the ordered
            // execution already replied.
            if self
                .last_req_ts
                .get(&req.client)
                .is_some_and(|&ts| ts >= req.timestamp)
            {
                continue;
            }
            let Operation::App(op) = &req.op else {
                continue;
            };
            if self.read_defers(op) {
                parked.push_back(req);
            } else {
                self.serve_read_now(&req, now_ns, res);
            }
        }
        self.deferred_reads = parked;
    }

    fn serve_read_now(&mut self, req: &RequestMsg, now_ns: u64, res: &mut HandleResult) {
        use crate::messages::Operation;
        let Operation::App(op) = &req.op else { return };
        let nondet = NonDet {
            timestamp_ns: now_ns,
            random: 0,
        };
        let mut ctx = crate::session::SessionCtx::new(&mut self.sessions, req.client, true);
        let (result, exec) = self
            .app
            .execute_with_session(req.client, op, &nondet, true, &mut ctx);
        debug_assert!(!ctx.is_dirty(), "read-only path cannot mutate sessions");
        res.counts.exec_cpu_us += exec.cpu_us;
        self.metrics.read_only_served += 1;
        let reply = ReplyMsg {
            view: self.view,
            client: req.client,
            timestamp: req.timestamp,
            replica: self.id(),
            tentative: true, // read-only replies need a 2f+1 quorum
            digest_only: false,
            result,
        };
        let digest_only = !self.sends_full_reply(req.client, req.timestamp);
        self.send_reply(reply, req.reply_addr, digest_only, res);
    }

    // ------------------------------------------------------------------
    // NewKey (§2.3): install client session keys
    // ------------------------------------------------------------------

    fn on_new_key(&mut self, nk: NewKeyMsg, prefix: &[u8], auth: &AuthTag, res: &mut HandleResult) {
        let AuthTag::Sig(sig) = auth else {
            self.metrics.auth_failures += 1;
            return;
        };
        // Resolve the client's public key: static configuration or the
        // membership session established at Join time.
        let pubkey = self
            .keys
            .client_pubkey(nk.client)
            .or_else(|| {
                self.membership
                    .as_ref()
                    .and_then(|m| m.session(nk.client))
                    .map(|s| s.pubkey)
            })
            .or_else(|| {
                // Static deployments: the client's public key is part of the
                // (restart-surviving) configuration — derive it so the blind
                // NewKey can be verified and the session key re-learned, the
                // §2.3 recovery this retransmission exists for. Before this
                // fallback a replica restarted with empty tables could never
                // re-admit any client: the NewKey needs the pubkey, and the
                // pubkey only arrived at construction.
                (self.membership.is_none()).then(|| self.keys.static_client_pubkey(nk.client))
            });
        let Some(pubkey) = pubkey else {
            self.metrics.auth_failures += 1;
            return;
        };
        res.counts.sig_verify += 1;
        if pubkey.verify(prefix, sig).is_err() {
            self.metrics.auth_failures += 1;
            return;
        }
        let my_index = self.id().0 as usize;
        if let Some(key) = nk.keys.get(my_index) {
            self.keys.install_client_key(nk.client, *key);
            self.client_addr.insert(nk.client, nk.reply_addr);
        }
    }

    // ------------------------------------------------------------------
    // Sealing / sending helpers
    // ------------------------------------------------------------------

    /// Count agreement and view-change protocol traffic (one unit per
    /// destination copy). The head-to-head engine benches read these
    /// counters to expose per-slot and per-rotation communication cost.
    fn note_protocol_msgs(&mut self, msg: &Message, copies: u64) {
        match msg {
            Message::PrePrepare(_)
            | Message::Prepare(_)
            | Message::Commit(_)
            | Message::PrepareQC(_)
            | Message::CommitQC(_) => self.metrics.agreement_msgs_sent += copies,
            Message::ViewChange(_) | Message::NewView(_) => {
                self.metrics.viewchange_msgs_sent += copies
            }
            _ => {}
        }
    }

    /// Broadcast to every other replica. The encode-once rule: one prefix
    /// encoding, one authenticator vector (one short MAC per peer over the
    /// shared prefix digest), one seal — then every destination shares the
    /// same reference-counted packet and envelope. Nothing is cloned per
    /// destination.
    pub(crate) fn multicast(&mut self, msg: Message, res: &mut HandleResult) {
        self.note_protocol_msgs(&msg, self.cfg.n() as u64 - 1);
        let prefix = Envelope::encode_prefix(Sender::Replica(self.id()), &msg);
        self.metrics.hot_encodings += 1;
        let auth = self
            .keys
            .seal_multicast(self.cfg.auth, &prefix, &mut res.counts);
        let packet = std::sync::Arc::new(Envelope::seal(prefix, &auth));
        let env = std::sync::Arc::new(Envelope {
            sender: Sender::Replica(self.id()),
            msg,
            auth,
        });
        for i in 0..self.cfg.n() as u32 {
            if i == self.id().0 {
                continue;
            }
            res.outputs.push(Output::Send {
                to: NetTarget::Replica(ReplicaId(i)),
                packet: std::sync::Arc::clone(&packet),
                envelope: std::sync::Arc::clone(&env),
            });
        }
    }

    /// Send an authenticated message to a single replica (retransmissions).
    /// Uses the multicast authenticator, of which the receiver verifies its
    /// own entry.
    pub(crate) fn send_authenticated(
        &mut self,
        to: NetTarget,
        msg: Message,
        res: &mut HandleResult,
    ) {
        self.note_protocol_msgs(&msg, 1);
        let prefix = Envelope::encode_prefix(Sender::Replica(self.id()), &msg);
        self.metrics.hot_encodings += 1;
        let auth = self
            .keys
            .seal_multicast(self.cfg.auth, &prefix, &mut res.counts);
        let packet = std::sync::Arc::new(Envelope::seal(prefix, &auth));
        let env = std::sync::Arc::new(Envelope {
            sender: Sender::Replica(self.id()),
            msg,
            auth,
        });
        res.outputs.push(Output::Send {
            to,
            packet,
            envelope: env,
        });
    }

    /// Send an unauthenticated (digest-validated) message to one target.
    pub(crate) fn send_plain(&mut self, to: NetTarget, msg: Message, res: &mut HandleResult) {
        self.note_protocol_msgs(&msg, 1);
        let prefix = Envelope::encode_prefix(Sender::Replica(self.id()), &msg);
        self.metrics.hot_encodings += 1;
        let packet = std::sync::Arc::new(Envelope::seal(prefix, &AuthTag::None));
        let env = std::sync::Arc::new(Envelope {
            sender: Sender::Replica(self.id()),
            msg,
            auth: AuthTag::None,
        });
        res.outputs.push(Output::Send {
            to,
            packet,
            envelope: env,
        });
    }

    /// §2.1 designated-replier rule: per request, f+1 rotating replicas
    /// return the full result and the remaining 2f send only its digest.
    /// With at most f faults a correct designated replica always reaches
    /// the client, so the fast path never waits on a retransmission; the
    /// rotation (keyed on client and timestamp) spreads the full-reply
    /// bytes evenly across the group.
    pub(crate) fn sends_full_reply(&self, client: ClientId, timestamp: u64) -> bool {
        let n = self.cfg.n() as u64;
        let base = (client.0 ^ timestamp) % n;
        let offset = (u64::from(self.id().0) + n - base) % n;
        offset < self.cfg.weak_quorum() as u64
    }

    /// Send (and cache) a reply. The cache always keeps the full body —
    /// retransmitted requests are answered with it unconditionally, the
    /// fallback that keeps digest-only replies (§2.1 designated-replier
    /// optimization) live under more than f reply losses.
    pub(crate) fn send_reply(
        &mut self,
        reply: ReplyMsg,
        addr: NetAddr,
        digest_only: bool,
        res: &mut HandleResult,
    ) {
        let client = reply.client;
        self.last_reply.insert(client, reply.clone());
        let reply = if digest_only && reply.result.len() > 32 {
            res.counts.digest_bytes += reply.result.len() as u64;
            reply.to_digest_only()
        } else {
            reply
        };
        let msg = Message::Reply(reply);
        let prefix = Envelope::encode_prefix(Sender::Replica(self.id()), &msg);
        self.metrics.hot_encodings += 1;
        let auth = self
            .keys
            .seal_to_client(self.cfg.auth, client, &prefix, &mut res.counts);
        let packet = std::sync::Arc::new(Envelope::seal(prefix, &auth));
        let env = std::sync::Arc::new(Envelope {
            sender: Sender::Replica(self.id()),
            msg,
            auth,
        });
        res.outputs.push(Output::Send {
            to: NetTarget::Client(addr),
            packet,
            envelope: env,
        });
    }

    // ------------------------------------------------------------------
    // View-change timer heuristic
    // ------------------------------------------------------------------

    pub(crate) fn arm_vc_timer(&mut self, res: &mut HandleResult) {
        if !self.vc_timer_armed {
            self.vc_timer_armed = true;
            self.vc_timer_baseline = self.last_executed;
            res.outputs.push(Output::SetTimer {
                kind: TimerKind::ViewChange,
                delay_ns: self.cfg.view_change_timeout_ns,
            });
        }
    }

    fn on_vc_timer(&mut self, now_ns: u64, res: &mut HandleResult) {
        self.vc_timer_armed = false;
        if self.in_view_change {
            return; // NewViewTimeout drives further rounds
        }
        let has_outstanding = !self.pending.is_empty()
            || !self.observed.is_empty()
            || self
                .log
                .iter()
                .any(|(&s, e)| s > self.last_executed && e.preprepare.is_some() && !e.executed);
        // If the head of the execution queue is agreed but waiting on a
        // missing request body, the primary is not at fault — the §2.4
        // recovery paths (body fetch or checkpoint transfer) will unwedge
        // us; a view change would not.
        let head_blocked_on_body = self
            .log
            .get(self.last_executed + 1)
            .and_then(|e| e.preprepare.as_ref().map(|pp| (e, pp)))
            .is_some_and(|(e, pp)| {
                (e.prepared || e.committed)
                    && pp
                        .entries
                        .iter()
                        .any(|en| en.full.is_none() && !self.bodies.contains_key(&en.digest))
            });
        if self.last_executed == self.vc_timer_baseline && has_outstanding && !head_blocked_on_body
        {
            // No progress on known work: suspect the primary.
            self.start_view_change(self.view + 1, now_ns, res);
        } else {
            self.arm_vc_timer(res);
        }
    }
}
