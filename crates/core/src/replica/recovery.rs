//! Crash-restart recovery and checkpoint-based state transfer.
//!
//! A restarted replica has lost its transient state: the message log, the
//! client session keys (→ the §2.3 authenticator stall) and its protocol
//! position. It announces a `Status`; once f+1 peers agree on a stable
//! checkpoint ahead of it, it tree-walk-fetches the divergent pages and
//! resumes. A replica wedged by a lost big-request body (§2.4) recovers
//! through exactly the same path when the next checkpoint stabilizes.
//!
//! Because every library- and wrapper-level table that must survive these
//! paths is mirrored into the region (membership, sessions, and the
//! cross-shard 2PC tables of [`crate::xshard`]), a completed transfer ends
//! with reload calls — [`crate::app::App::on_state_installed`] plus the
//! library reloads — that rebuild the in-memory caches from the installed
//! pages. That is what lets a replica fast-forwarded *over* a
//! transaction's prepare answer the later commit like its peers.

use pbft_crypto::Digest;
use pbft_state::{serve_fetch, FetchRequest, FetchResponse, Fetcher};

use crate::membership::Membership;
use crate::messages::{CheckpointMsg, FetchMsg, FetchRespMsg, Message, StatusMsg};
use crate::output::{HandleResult, NetTarget, Output, TimerKind};
use crate::types::SeqNum;

use super::{FetchState, Replica};

impl Replica {
    pub(crate) fn on_status(&mut self, s: StatusMsg, now_ns: u64, res: &mut HandleResult) {
        if s.replica == self.id() {
            return;
        }
        let prev = self.peer_status.insert(s.replica, s);
        self.maybe_rejoin_group_view(res);
        let mine = self.my_status();
        // A peer a batch or two behind is normal pipeline skew under load;
        // only treat real gaps as "behind" — and rate-limit the help.
        // Without both guards, two loaded replicas reply-status to each
        // other forever, each reply carrying signed retransmissions, and the
        // storm eats the CPU that should be agreeing on new batches.
        const LAG_SLACK: u64 = 2;
        // The slack exception: a peer whose executed position has not moved
        // since its previous status is *stuck*, not skewed (a quiescent
        // system issues no new agreements, so a tail of lost commits would
        // otherwise leave it one or two batches — and one region digest —
        // behind forever). Skew never trips this: a loaded replica advances
        // between status ticks.
        let stuck_behind = prev.is_some_and(|p| p.last_executed == s.last_executed)
            && s.last_executed < mine.last_executed;
        let they_are_behind = s.last_stable_seq < mine.last_stable_seq
            || s.last_executed + LAG_SLACK < mine.last_executed
            || s.view < mine.view
            || stuck_behind;
        let help_due = match self.last_peer_help.get(&s.replica) {
            Some(&t) => now_ns.saturating_sub(t) >= self.cfg.status_interval_ns / 2,
            None => true, // never helped this peer yet
        };
        // A peer whose *stable checkpoint* sits below a checkpoint this
        // replica holds needs checkpoint votes, not agreement messages —
        // even when its executed position matches ours exactly. (After
        // view-change churn the original vote multicasts can all be lost
        // while every member still holds its checkpoints; without a
        // re-broadcast no boundary ever collects 2f+1 votes again and the
        // primary wedges at the high watermark with the group idle.)
        let ckpt_behind = self
            .checkpoints
            .keys()
            .next_back()
            .is_some_and(|&top| s.last_stable_seq < top);
        if (they_are_behind || ckpt_behind) && help_due {
            self.last_peer_help.insert(s.replica, now_ns);
            self.send_plain(NetTarget::Replica(s.replica), Message::Status(mine), res);
            self.retransmit_for_lagging_peer(&s, res);
            self.resend_checkpoint_votes(&s, res);
        }
        // f+1 matching stable-checkpoint reports ahead of us are a valid
        // proof (one of them is correct, and correct replicas only report
        // certified checkpoints). A restarted replica uses this to find its
        // footing; a wedged one — conflicting pre-prepares from an
        // equivocating primary, or the §2.4 missing-body stall with the
        // checkpoint certificate's direct votes lost — uses it to recover
        // even when fewer than 2f+1 checkpoint votes ever reach it.
        self.try_recover_from_statuses(self.recovering, res);
    }

    /// A replica stranded in a view change nobody else joined (its timer
    /// fired on lost datagrams, not on a faulty primary) re-adopts the
    /// group's view when a full quorum of peers reports a *lower* active
    /// view. Without this, the stranded replica rejects the group's
    /// retransmissions (they carry the lower view) and can only
    /// resynchronize at the next stable checkpoint — which a quiescent
    /// system never takes. Safety rests on the usual quorum-intersection
    /// argument: anything committed anywhere carries 2f+1 commits, so at
    /// least f+1 honest replicas carry it into any later view-change
    /// certificate regardless of this replica's votes.
    fn maybe_rejoin_group_view(&mut self, res: &mut HandleResult) {
        if !self.in_view_change {
            return;
        }
        let target = self.vc.target.unwrap_or(self.view);
        // Only peers *actively operating* in a lower view count — a peer
        // that is itself mid-view-change reports the view it is leaving,
        // and counting it would cancel a legitimate in-progress change
        // against a genuinely faulty primary. Statuses refresh every
        // status tick, so the evidence is at most one interval stale.
        let lower: Vec<_> = self
            .peer_status
            .values()
            .filter(|p| !p.in_view_change)
            .map(|p| p.view)
            .filter(|&v| v < target)
            .collect();
        if lower.len() < self.cfg.quorum() {
            return;
        }
        let group_view = lower.into_iter().max().expect("quorum is non-empty");
        self.view = group_view;
        self.in_view_change = false;
        self.vc.target = None;
        self.vc_timer_armed = false;
        self.arm_vc_timer(res);
        res.outputs.push(Output::CancelTimer {
            kind: TimerKind::NewViewTimeout,
        });
    }

    /// Re-send this replica's checkpoint votes for retained checkpoints
    /// above the peer's reported stable sequence, newest first (bounded).
    /// Votes below the peer's stable are ignored on arrival, so repeats are
    /// harmless; the caller's help rate-limit bounds the traffic.
    fn resend_checkpoint_votes(&mut self, s: &StatusMsg, res: &mut HandleResult) {
        const MAX_VOTES: usize = 2;
        let me = self.id();
        let msgs: Vec<Message> = self
            .checkpoints
            .iter()
            .rev()
            .filter(|&(&seq, _)| seq > s.last_stable_seq)
            .take(MAX_VOTES)
            .map(|(&seq, snap)| {
                Message::Checkpoint(CheckpointMsg {
                    seq,
                    root: snap.root,
                    replica: me,
                })
            })
            .collect();
        for msg in msgs {
            self.send_authenticated(NetTarget::Replica(s.replica), msg, res);
        }
    }

    /// Re-send agreement messages a lagging peer is missing: our own
    /// prepare/commit votes (safe for any replica to retransmit) and, when
    /// we are the issuing primary, the pre-prepare itself. This is PBFT's
    /// recovery from lost replica-to-replica datagrams — without it a single
    /// dropped commit wedges a replica until the next checkpoint.
    fn retransmit_for_lagging_peer(&mut self, s: &StatusMsg, res: &mut HandleResult) {
        const MAX_RETRANSMIT: u64 = 8;
        if s.view != self.view || s.last_executed >= self.last_executed {
            return;
        }
        let me = self.id();
        let to = NetTarget::Replica(s.replica);
        let hi = self.last_executed.min(s.last_executed + MAX_RETRANSMIT);
        let mut msgs: Vec<Message> = Vec::new();
        for seq in s.last_executed + 1..=hi {
            let Some(e) = self.log.get(seq) else { continue };
            let Some(pp) = &e.preprepare else { continue };
            if self.cfg.primary_of(e.view) == me {
                msgs.push(Message::PrePrepare(pp.clone()));
            } else if !self.linear && e.prepares.contains(&me) {
                msgs.push(Message::Prepare(crate::messages::PrepareMsg {
                    view: e.view,
                    seq,
                    digest: e.digest,
                    replica: me,
                }));
            }
            if self.linear {
                // Linear mode: individual votes are useless to the lagging
                // peer (only the leader aggregates them), but any replica
                // that holds a certificate's voter set can replay it.
                let qc = |voters: &std::collections::BTreeSet<crate::types::ReplicaId>| {
                    crate::messages::QuorumCertMsg {
                        view: e.view,
                        seq,
                        digest: e.digest,
                        voters: voters.iter().copied().collect(),
                    }
                };
                if e.committed {
                    msgs.push(Message::CommitQC(qc(&e.commits)));
                } else if e.prepared {
                    msgs.push(Message::PrepareQC(qc(&e.prepares)));
                }
            } else if e.commits.contains(&me) {
                msgs.push(Message::Commit(crate::messages::CommitMsg {
                    view: e.view,
                    seq,
                    digest: e.digest,
                    replica: me,
                }));
            }
        }
        for msg in msgs {
            self.send_authenticated(to, msg, res);
        }
    }

    /// f+1 matching `(stable_seq, stable_root)` reports ahead of us trigger
    /// a transfer. `adopt_view` (recovery after restart) additionally takes
    /// the view from the same report set.
    fn try_recover_from_statuses(&mut self, adopt_view: bool, res: &mut HandleResult) {
        let weak = self.cfg.weak_quorum();
        let mut groups: std::collections::BTreeMap<(SeqNum, Digest), Vec<&StatusMsg>> =
            Default::default();
        for s in self.peer_status.values() {
            groups
                .entry((s.last_stable_seq, s.stable_root))
                .or_default()
                .push(s);
        }
        let best = groups
            .iter()
            .filter(|((seq, _), members)| *seq > self.last_executed && members.len() >= weak)
            .max_by_key(|((seq, _), _)| *seq);
        if let Some((&(seq, root), members)) = best {
            if adopt_view {
                let new_view = members.iter().map(|s| s.view).max().unwrap_or(self.view);
                if new_view > self.view {
                    self.view = new_view;
                    self.in_view_change = false;
                }
            }
            self.start_state_transfer(seq, root, res);
        }
    }

    /// Begin (or upgrade) a state transfer toward checkpoint `(seq, root)`.
    pub(crate) fn start_state_transfer(
        &mut self,
        seq: SeqNum,
        root: Digest,
        res: &mut HandleResult,
    ) {
        if let Some(f) = &self.fetch {
            if f.target_seq >= seq {
                return; // already fetching something at least as new
            }
        }
        self.metrics.state_transfers_started += 1;
        let (fetcher, reqs) = {
            let mut st = self.state.borrow_mut();
            let _ = st.refresh_digest();
            res.counts.pages_hashed += st.last_refresh_hashed();
            Fetcher::new(st.tree(), root)
        };
        if reqs.is_empty() && fetcher.is_complete() {
            // Content already matches the target: adopt the checkpoint.
            self.fetch = Some(FetchState {
                target_seq: seq,
                target_root: root,
                fetcher,
                peers: vec![self.id()],
                attempt: 0,
                outstanding: Vec::new(),
            });
            self.finish_transfer(res);
            return;
        }
        let peers = self.checkpoint_peers(seq, root);
        let peer = peers[0];
        self.fetch = Some(FetchState {
            target_seq: seq,
            target_root: root,
            fetcher,
            peers,
            attempt: 0,
            outstanding: reqs.clone(),
        });
        for req in reqs {
            let msg = Message::Fetch(FetchMsg {
                target_seq: seq,
                req,
                replica: self.id(),
            });
            self.send_plain(NetTarget::Replica(peer), msg, res);
        }
        res.outputs.push(Output::SetTimer {
            kind: TimerKind::FetchRetry,
            delay_ns: 100_000_000,
        });
    }

    pub(crate) fn on_fetch(&mut self, f: FetchMsg, res: &mut HandleResult) {
        let resp = match self.checkpoints.get(&f.target_seq) {
            Some(snap) => serve_fetch(snap, &f.req),
            None => FetchResponse::Unavailable,
        };
        let msg = Message::FetchResp(FetchRespMsg {
            target_seq: f.target_seq,
            resp,
            replica: self.id(),
        });
        self.send_plain(NetTarget::Replica(f.replica), msg, res);
    }

    pub(crate) fn on_fetch_resp(&mut self, fr: FetchRespMsg, now_ns: u64, res: &mut HandleResult) {
        let Some(fs) = &mut self.fetch else { return };
        if fr.target_seq != fs.target_seq {
            return;
        }
        remove_outstanding(&mut fs.outstanding, &fr.resp);
        let outcome = {
            let st = self.state.borrow();
            fs.fetcher.on_response(st.tree(), fr.resp)
        };
        let next = match outcome {
            Ok(next) => next,
            Err(_) => {
                // Byzantine or corrupt peer: restart the walk from another.
                let (seq, root) = (fs.target_seq, fs.target_root);
                let attempt = fs.attempt + 1;
                self.fetch = None;
                self.start_state_transfer(seq, root, res);
                if let Some(f2) = &mut self.fetch {
                    f2.attempt = attempt;
                }
                return;
            }
        };
        let peer = fs.peers[fs.attempt % fs.peers.len()];
        fs.outstanding.extend(next.iter().cloned());
        let target_seq = fs.target_seq;
        // Install validated pages.
        let ready = fs.fetcher.take_ready();
        if !ready.is_empty() {
            let mut st = self.state.borrow_mut();
            for (idx, data) in ready {
                res.counts.pages_hashed += 1;
                st.install_page(idx, data)
                    .expect("fetcher validated the page index");
            }
        }
        for req in next {
            let msg = Message::Fetch(FetchMsg {
                target_seq,
                req,
                replica: self.id(),
            });
            self.send_plain(NetTarget::Replica(peer), msg, res);
        }
        let done = self
            .fetch
            .as_ref()
            .map(|f| f.fetcher.is_complete())
            .unwrap_or(false);
        if done {
            self.finish_transfer(res);
            self.try_execute(now_ns, res);
        }
    }

    pub(crate) fn finish_transfer(&mut self, res: &mut HandleResult) {
        let Some(fs) = self.fetch.take() else { return };
        let (seq, root) = (fs.target_seq, fs.target_root);
        debug_assert_eq!(
            self.state.borrow().tree().root(),
            root,
            "transfer converged"
        );
        self.app.on_state_installed();
        self.reload_membership();
        self.reload_sessions();
        self.stable = (seq, root);
        // Batches executed above the installed checkpoint (necessarily
        // tentative or on divergent state) ran against the *pre-transfer*
        // region; installing the checkpoint just overwrote their effects.
        // Clear their executed marks so the execution loop re-runs them on
        // top of the checkpoint image — otherwise the replica silently
        // loses those updates and re-diverges at the very next checkpoint.
        for (&s, e) in self.log.iter_mut() {
            if s > seq && e.executed {
                e.executed = false;
                e.tentative = false;
            }
        }
        self.last_executed = seq;
        self.log.collect_garbage(seq);
        self.ckpt_votes.retain(|&(s, _), _| s > seq);
        let snap = self.state.borrow().snapshot(seq);
        self.checkpoints.retain(|&s, _| s >= seq);
        self.checkpoints.insert(seq, snap);
        // The execution chain is only meaningful for locally executed
        // history; mark the discontinuity with the checkpoint root.
        self.exec_chain = root;
        self.checkpoint_chain.insert(seq, root);
        self.metrics.state_transfers_completed += 1;
        self.recovering = false;
        // The installed checkpoint replaced every tentative effect; parked
        // reads are re-examined against the clean committed image.
        self.tentative_effects.clear();
        self.flush_deferred_reads(0, res);
        res.outputs.push(Output::CancelTimer {
            kind: TimerKind::FetchRetry,
        });
    }

    pub(crate) fn reload_sessions(&mut self) {
        self.sessions =
            crate::session::SessionStore::load(&self.session_section, &self.state.borrow())
                .unwrap_or_default();
    }

    pub(crate) fn reload_membership(&mut self) {
        if self.cfg.dynamic_membership {
            let m = Membership::load(
                &self.lib_section,
                &self.state.borrow(),
                self.cfg.max_clients,
            )
            .unwrap_or_else(|_| Membership::new(self.cfg.max_clients));
            self.membership = Some(m);
        }
    }
}

/// Drop the outstanding request a response answers.
fn remove_outstanding(outstanding: &mut Vec<FetchRequest>, resp: &FetchResponse) {
    let idx = outstanding.iter().position(|req| match (req, resp) {
        (
            FetchRequest::Meta {
                level: l1,
                index: i1,
            },
            FetchResponse::Meta {
                level: l2,
                index: i2,
                ..
            },
        ) => l1 == l2 && i1 == i2,
        (FetchRequest::Page { index: i1 }, FetchResponse::Page { index: i2, .. }) => i1 == i2,
        _ => false,
    });
    if let Some(i) = idx {
        outstanding.swap_remove(i);
    }
}
