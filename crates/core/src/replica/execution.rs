//! Normal-case ordering and execution: batching, the 3-phase agreement,
//! tentative execution, checkpoints, and the big-request hazard of §2.4.

use pbft_crypto::{Digest, Sha256};

use crate::app::NonDet;
use crate::membership::JoinOutcome;
use crate::messages::{
    BatchEntry, BodyFetchMsg, CheckpointMsg, CommitMsg, Message, Operation, PrePrepareMsg,
    PrepareMsg, QuorumCertMsg, ReplyMsg, RequestMsg,
};
use crate::output::{HandleResult, NetTarget, Output, TimerKind};
use crate::types::{ClientId, ReplicaId, SeqNum};

use super::{Replica, TentativeEffects};

impl Replica {
    /// Agreements assigned but not yet executed (the congestion-window
    /// gauge).
    pub(crate) fn requests_in_flight(&self) -> u64 {
        self.log
            .iter()
            .filter(|(&s, e)| s > self.last_executed && !e.executed && e.preprepare.is_some())
            .count() as u64
    }

    /// Primary: issue pre-prepares while the congestion window allows.
    pub(crate) fn try_issue(&mut self, now_ns: u64, res: &mut HandleResult) {
        if !self.is_primary() {
            return;
        }
        let window = self.cfg.effective_window();
        let max_batch = self.cfg.effective_max_batch();
        loop {
            if self.pending.is_empty() {
                return;
            }
            let in_flight = self.requests_in_flight();
            if in_flight >= window {
                // Postpone: give ourselves time to catch up on execution
                // (§2.1); re-examine shortly even if no event intervenes.
                res.outputs.push(Output::SetTimer {
                    kind: TimerKind::BatchKick,
                    delay_ns: 1_000_000,
                });
                return;
            }
            let seq = self.seq_assign + 1;
            if !self.log.in_watermarks(seq) {
                // Wait for a checkpoint to advance the window. Nothing else
                // is guaranteed to call back into `try_issue` once the low
                // watermark moves (the clients are all blocked on us), so
                // poll — otherwise the primary wedges at the high watermark
                // until a backup's view-change timer "recovers" it.
                res.outputs.push(Output::SetTimer {
                    kind: TimerKind::BatchKick,
                    delay_ns: 1_000_000,
                });
                return;
            }
            if !self.cfg.batching && self.cfg.nobatch_issue_tick_ns > 0 {
                // Without batching the original library issues agreements
                // from its event-loop tick; pace accordingly.
                let since = now_ns.saturating_sub(self.last_issue_ns);
                if since < self.cfg.nobatch_issue_tick_ns {
                    res.outputs.push(Output::SetTimer {
                        kind: TimerKind::BatchKick,
                        delay_ns: self.cfg.nobatch_issue_tick_ns - since,
                    });
                    return;
                }
            }
            // Pipelined batch formation: while the pipeline is busy a thin
            // batch gains nothing from issuing now (its agreement latency
            // hides behind the in-flight batches), so hold it back and keep
            // gathering — bounded by a deadline so a trickle of requests is
            // never starved. "Busy" means a batch is in flight — or, when
            // the last batch filled to the gate (the saturation signal),
            // one was issued within the gather period: tentative execution
            // retires batches before their replies reach the clients, and
            // without that refractory term the instant of empty pipeline
            // leaks a thin batch and breaks the cadence under saturation.
            // Under light traffic (narrow last batch) the refractory term
            // is off and an empty pipeline issues immediately, so an
            // isolated request never waits. The gate only pays when the
            // pre-prepare carries request *digests* (big-request mode, the
            // paper's fast configuration): with bodies inline, every
            // gathered request grows the pre-prepare toward MTU
            // fragmentation and the gather economics invert, so the gate
            // stays off there.
            let refractory = self.last_issue_width >= self.cfg.pipeline_min_batch
                && now_ns.saturating_sub(self.last_issue_ns) < self.cfg.batch_gather_ns;
            if self.cfg.batching
                && self.cfg.all_requests_big
                && (in_flight >= 1 || refractory)
                && self.last_issue_ns > 0
                && self.pending.len() < self.cfg.pipeline_min_batch
            {
                let deadline = *self
                    .gather_deadline_ns
                    .get_or_insert(now_ns + self.cfg.batch_gather_ns);
                if now_ns < deadline {
                    res.outputs.push(Output::SetTimer {
                        kind: TimerKind::BatchKick,
                        delay_ns: deadline - now_ns,
                    });
                    return;
                }
            }
            self.gather_deadline_ns = None;
            let take = self.pending.len().min(max_batch);
            self.last_issue_width = take;
            let mut entries = Vec::with_capacity(take);
            for _ in 0..take {
                let req = self.pending.pop_front().expect("non-empty");
                let digest = req.digest();
                self.pending_digests.remove(&digest);
                let big = self.cfg.is_big(req.encoded_len());
                if big {
                    self.bodies.insert(digest, req.clone());
                }
                entries.push(BatchEntry {
                    digest,
                    client: req.client,
                    timestamp: req.timestamp,
                    full: if big { None } else { Some(req) },
                });
            }
            // Non-determinism upcall: the primary attaches its clock and a
            // random value (deterministically derived here so simulations
            // reproduce).
            let random = Digest::of_parts(&[b"nondet", &seq.to_be_bytes()]).prefix_u64();
            let nondet = self.app.make_nondet(now_ns, random);
            self.last_issue_ns = now_ns;
            let pp = PrePrepareMsg {
                view: self.view,
                seq,
                nondet,
                entries,
            };
            let digest = pp.batch_digest();
            res.counts.digest_bytes += 64 + 48 * pp.entries.len() as u64;
            self.seq_assign = seq;
            if let Some(e) = self.log.entry_for(seq, self.view, digest) {
                e.preprepare = Some(pp.clone());
            }
            self.stash_inline_bodies(&pp);
            self.multicast(Message::PrePrepare(pp), res);
            // The primary's pre-prepare counts as its prepare; check whether
            // f = 0 degenerate groups can progress immediately.
            self.update_prepared(seq, now_ns, res);
        }
    }

    pub(crate) fn stash_inline_bodies(&mut self, pp: &PrePrepareMsg) {
        for e in &pp.entries {
            if let Some(req) = &e.full {
                self.bodies.insert(e.digest, req.clone());
            }
        }
    }

    /// Accept a pre-prepare from the primary. `replaying` marks re-issued
    /// pre-prepares (view changes, recovery) whose timestamp validation
    /// follows the §2.5 replay policy.
    pub(crate) fn on_preprepare(
        &mut self,
        pp: PrePrepareMsg,
        now_ns: u64,
        replaying: bool,
        res: &mut HandleResult,
    ) {
        if self.in_view_change || pp.view != self.view {
            return;
        }
        if !self.log.in_watermarks(pp.seq) {
            return;
        }
        // Non-determinism validation (§2.5). Replayed pre-prepares carry old
        // timestamps; whether to skip validation then is the configurable
        // fix the paper discusses. Retransmissions of already-seen sequence
        // numbers are replays by definition.
        let replay_like = replaying || self.recovering || pp.seq <= self.max_pp_seen;
        self.max_pp_seen = self.max_pp_seen.max(pp.seq);
        let skip = replay_like && self.cfg.nondet.skip_validation_on_replay;
        if !skip
            && !self
                .app
                .validate_nondet(&pp.nondet, now_ns, self.cfg.nondet.validate_window_ns)
        {
            self.metrics.nondet_validation_failures += 1;
            return;
        }
        let digest = pp.batch_digest();
        res.counts.digest_bytes += 64 + 48 * pp.entries.len() as u64;
        let me_primary = self.is_primary();
        match self.log.entry_for(pp.seq, pp.view, digest) {
            Some(e) => {
                if e.preprepare.is_some() {
                    return; // duplicate
                }
                e.preprepare = Some(pp.clone());
            }
            None => {
                // Conflicting assignment for (view, seq): Byzantine primary.
                self.start_view_change(self.view + 1, now_ns, res);
                return;
            }
        }
        self.stash_inline_bodies(&pp);
        self.arm_vc_timer(res);
        if !me_primary {
            let me = self.id();
            let prepare = PrepareMsg {
                view: pp.view,
                seq: pp.seq,
                digest,
                replica: me,
            };
            if let Some(e) = self.log.get_mut(pp.seq) {
                e.prepares.insert(me);
            }
            if self.linear {
                // Linear mode: the prepare vote goes to the leader alone,
                // which aggregates the quorum into a PrepareQC broadcast.
                let leader = self.cfg.primary_of(pp.view);
                self.send_authenticated(NetTarget::Replica(leader), Message::Prepare(prepare), res);
            } else {
                self.multicast(Message::Prepare(prepare), res);
            }
        }
        self.update_prepared(pp.seq, now_ns, res);
        // A retransmitted pre-prepare can be the last missing piece of an
        // entry whose prepares and commits raced ahead of it (status-driven
        // recovery re-sends all three, and the quorum paths above early-
        // return on duplicates) — kick execution directly so a lagging
        // replica drains the committed prefix it just completed.
        self.try_execute(now_ns, res);
    }

    pub(crate) fn on_prepare(&mut self, p: PrepareMsg, now_ns: u64, res: &mut HandleResult) {
        if self.in_view_change || p.view != self.view || !self.log.in_watermarks(p.seq) {
            return;
        }
        if p.replica == self.cfg.primary_of(p.view) {
            return; // the primary never sends prepares
        }
        let Some(e) = self.log.entry_for(p.seq, p.view, p.digest) else {
            return; // digest conflict: ignore the minority vote
        };
        e.prepares.insert(p.replica);
        self.update_prepared(p.seq, now_ns, res);
    }

    /// prepared(m, v, n, i): pre-prepare logged + 2f prepares from distinct
    /// backups (the pre-prepare stands in for the primary's prepare).
    pub(crate) fn update_prepared(&mut self, seq: SeqNum, now_ns: u64, res: &mut HandleResult) {
        let needed = 2 * self.cfg.f;
        let me = self.id();
        let linear = self.linear;
        let Some(e) = self.log.get_mut(seq) else {
            return;
        };
        if e.prepared || e.preprepare.is_none() {
            return;
        }
        // 2f prepares from distinct backups; the pre-prepare stands in for
        // the primary's prepare (so the primary also waits for 2f backups,
        // while a backup's own prepare is already in the set).
        let primary = self.cfg.primary_of(e.view);
        if linear && me != primary {
            // Linear mode: prepare votes flow to the leader only, so backups
            // never accumulate a quorum here — they mark the slot prepared
            // when the leader's PrepareQC arrives (`on_prepare_qc`).
            return;
        }
        let backup_prepares = e.prepares.iter().filter(|&&r| r != primary).count();
        if backup_prepares < needed {
            return;
        }
        e.prepared = true;
        let digest = e.digest;
        let view = e.view;
        let voters: Vec<ReplicaId> = e.prepares.iter().copied().collect();
        e.commits.insert(me);
        if linear {
            // The leader certifies the prepare quorum in a single broadcast;
            // backups answer with commit votes addressed to the leader.
            self.multicast(
                Message::PrepareQC(QuorumCertMsg {
                    view,
                    seq,
                    digest,
                    voters,
                }),
                res,
            );
        } else {
            let commit = CommitMsg {
                view,
                seq,
                digest,
                replica: me,
            };
            self.multicast(Message::Commit(commit), res);
        }
        if self.cfg.tentative_execution {
            self.try_execute(now_ns, res);
        }
        self.update_committed(seq, now_ns, res);
    }

    pub(crate) fn on_commit(&mut self, c: CommitMsg, now_ns: u64, res: &mut HandleResult) {
        if self.in_view_change || c.view != self.view || !self.log.in_watermarks(c.seq) {
            return;
        }
        let Some(e) = self.log.entry_for(c.seq, c.view, c.digest) else {
            return;
        };
        e.commits.insert(c.replica);
        self.update_committed(c.seq, now_ns, res);
    }

    /// committed-local: prepared + 2f+1 commits.
    pub(crate) fn update_committed(&mut self, seq: SeqNum, now_ns: u64, res: &mut HandleResult) {
        let quorum = self.cfg.quorum();
        let me = self.id();
        let linear = self.linear;
        let Some(e) = self.log.get_mut(seq) else {
            return;
        };
        if e.committed {
            // A retransmitted commit for an entry that is committed but not
            // yet executed (its pre-prepare or an earlier batch arrived
            // late) must still kick the execution loop — every other quorum
            // path early-returns on duplicates, and a lagging replica being
            // helped by status retransmissions has no other trigger left.
            if !e.executed {
                self.try_execute(now_ns, res);
            }
            return;
        }
        if !e.prepared || e.commits.len() < quorum {
            return;
        }
        e.committed = true;
        // Linear mode: the leader collected the commit quorum; certify it in
        // one broadcast so backups commit without the all-to-all exchange.
        let commit_qc = if linear && me == self.cfg.primary_of(e.view) {
            Some(QuorumCertMsg {
                view: e.view,
                seq,
                digest: e.digest,
                voters: e.commits.iter().copied().collect(),
            })
        } else {
            None
        };
        let was_tentative = e.executed && e.tentative;
        if was_tentative {
            // Tentative execution confirmed; upgrade the cached replies so a
            // client retransmission collects *stable* replies (f+1 suffice).
            e.tentative = false;
            self.tentative_effects.remove(&seq);
            let entries: Vec<(ClientId, u64)> = e
                .preprepare
                .iter()
                .flat_map(|pp| pp.entries.iter().map(|en| (en.client, en.timestamp)))
                .collect();
            for (client, ts) in entries {
                if let Some(reply) = self.last_reply.get_mut(&client) {
                    if reply.timestamp == ts {
                        reply.tentative = false;
                    }
                }
            }
        }
        if let Some(qc) = commit_qc {
            self.multicast(Message::CommitQC(qc), res);
        }
        self.try_execute(now_ns, res);
        // A commit may clear the tentative hole that deferred an interval
        // boundary's checkpoint; retry every pending boundary.
        self.try_pending_checkpoints(res);
        // The resolved tentative marks may release contention-gated reads.
        self.flush_deferred_reads(now_ns, res);
    }

    /// Take any interval-boundary checkpoints that became eligible (all
    /// batches up to the boundary committed and executed).
    pub(crate) fn try_pending_checkpoints(&mut self, res: &mut HandleResult) {
        let interval = self.cfg.checkpoint_interval;
        let mut b = (self.stable.0 / interval + 1) * interval;
        while b <= self.last_executed {
            self.maybe_checkpoint(b, res);
            b += interval;
        }
    }

    /// Execute every ready batch in sequence order. A batch is ready when it
    /// is committed (or prepared, under tentative execution) *and* every
    /// request body is available — the §2.4 hazard is exactly a body that
    /// never arrives, wedging this loop until checkpoint-based recovery.
    pub(crate) fn try_execute(&mut self, now_ns: u64, res: &mut HandleResult) {
        if self.fetch.is_some() {
            // A checkpoint transfer is rewriting the state region. Executing
            // on top of pages the tree walk is still comparing would both
            // corrupt the walk (stale local digests) and leave the region at
            // neither the checkpoint nor any executed prefix. Defer; the
            // transfer completion re-enters this loop.
            return;
        }
        loop {
            let seq = self.last_executed + 1;
            let Some(e) = self.log.get(seq) else { break };
            let Some(pp) = e.preprepare.clone() else {
                break;
            };
            if e.executed {
                break;
            }
            let committed = e.committed;
            let tentative_ok = self.cfg.tentative_execution && e.prepared;
            if !committed && !tentative_ok {
                break;
            }
            // Check body availability.
            let missing: Vec<Digest> = pp
                .entries
                .iter()
                .filter(|en| en.full.is_none() && !self.bodies.contains_key(&en.digest))
                .map(|en| en.digest)
                .collect();
            if !missing.is_empty() {
                self.metrics.stuck_missing_body += 1;
                if self.cfg.fetch_missing_bodies {
                    for d in missing {
                        let msg = Message::BodyFetch(BodyFetchMsg {
                            digest: d,
                            replica: self.id(),
                        });
                        self.multicast(msg, res);
                    }
                    res.outputs.push(Output::SetTimer {
                        kind: TimerKind::FetchRetry,
                        delay_ns: 50_000_000,
                    });
                }
                break;
            }
            self.execute_batch(&pp, committed, now_ns, res);
            let e = self.log.get_mut(seq).expect("entry exists");
            e.executed = true;
            e.tentative = !committed;
            if !committed {
                self.metrics.tentative_executions += 1;
            }
            self.last_executed = seq;
            self.metrics.batches_executed += 1;
            self.maybe_checkpoint(seq, res);
        }
        // Execution may have freed congestion-window room.
        if self.is_primary() && !self.pending.is_empty() {
            self.try_issue(now_ns, res);
        }
    }

    pub(crate) fn execute_batch(
        &mut self,
        pp: &PrePrepareMsg,
        committed: bool,
        _now_ns: u64,
        res: &mut HandleResult,
    ) {
        let mut membership_dirty = false;
        // Tentative batches record their declared write-effects so the
        // read-only contention gate can defer conflicting reads until the
        // batch commits (or rolls back).
        let mut effects = TentativeEffects::default();
        for entry in &pp.entries {
            let req = match &entry.full {
                Some(r) => r.clone(),
                None => self
                    .bodies
                    .get(&entry.digest)
                    .expect("checked above")
                    .clone(),
            };
            self.observed.remove(&entry.digest);
            if !committed {
                if let Operation::App(op) = &req.op {
                    effects.note_op(op);
                }
            }
            let reply_body = self.execute_one(&req, &pp.nondet, &mut membership_dirty, res);
            self.last_req_ts.insert(req.client, req.timestamp);
            if let Some(result) = reply_body {
                let reply = ReplyMsg {
                    view: self.view,
                    client: req.client,
                    timestamp: req.timestamp,
                    replica: self.id(),
                    tentative: !committed,
                    digest_only: false,
                    result,
                };
                let addr = self
                    .client_addr
                    .get(&req.client)
                    .copied()
                    .unwrap_or(req.reply_addr);
                let digest_only = !self.sends_full_reply(req.client, req.timestamp);
                self.send_reply(reply, addr, digest_only, res);
            }
            res.counts.requests_executed += 1;
            self.metrics.executed_requests += 1;
        }
        if membership_dirty {
            self.persist_membership();
        }
        if !committed && !effects.is_empty() {
            self.tentative_effects.insert(pp.seq, effects);
        }
        // Extend the execution-order commitment.
        let mut h = Sha256::new();
        h.update(self.exec_chain.as_bytes());
        h.update(&pp.seq.to_be_bytes());
        h.update(pp.batch_digest().as_bytes());
        self.exec_chain = h.finish();
    }

    fn execute_one(
        &mut self,
        req: &RequestMsg,
        nondet: &NonDet,
        membership_dirty: &mut bool,
        res: &mut HandleResult,
    ) -> Option<Vec<u8>> {
        match &req.op {
            Operation::Noop => None,
            Operation::App(op) => {
                if let Some(m) = self.membership.as_mut() {
                    m.touch(req.client, nondet.timestamp_ns);
                    *membership_dirty = true;
                }
                let mut ctx =
                    crate::session::SessionCtx::new(&mut self.sessions, req.client, false);
                let (result, exec) = self
                    .app
                    .execute_with_session(req.client, op, nondet, false, &mut ctx);
                if ctx.is_dirty() {
                    self.persist_sessions();
                }
                res.counts.exec_cpu_us += exec.cpu_us;
                res.counts.disk_flushes += exec.disk_flushes;
                res.counts.disk_write_bytes += exec.disk_write_bytes;
                Some(result)
            }
            Operation::JoinPhase1 {
                pubkey,
                nonce,
                reply_addr,
                idbuf,
            } => {
                let m = self.membership.as_mut()?;
                let challenge =
                    m.phase1(*pubkey, *nonce, *reply_addr, idbuf.clone(), req.timestamp);
                *membership_dirty = true;
                self.client_addr.insert(req.client, *reply_addr);
                Some(challenge.0.as_bytes().to_vec())
            }
            Operation::JoinPhase2 {
                fingerprint,
                response,
            } => {
                let stale = self.cfg.session_stale_ns;
                let app = &mut self.app;
                let m = self.membership.as_mut()?;
                let outcome = m.phase2(
                    fingerprint,
                    response,
                    nondet.timestamp_ns,
                    stale,
                    &mut |idbuf| app.authorize_join(idbuf),
                );
                *membership_dirty = true;
                match outcome {
                    JoinOutcome::Joined { client, terminated } => {
                        if let Some(t) = terminated {
                            self.keys.remove_client(t);
                            // The terminated session's library-managed state
                            // dies with it (§3.3.2).
                            if self.sessions.remove(t) {
                                self.persist_sessions();
                            }
                        }
                        if let Some(s) = self.membership.as_ref().and_then(|m| m.session(client)) {
                            let (pk, addr) = (s.pubkey, s.addr);
                            self.keys.install_client_pubkey(client, pk);
                            self.client_addr.insert(client, addr);
                        }
                        let mut out = b"joined:".to_vec();
                        out.extend_from_slice(&client.0.to_be_bytes());
                        Some(out)
                    }
                    JoinOutcome::Denied(reason) => {
                        let mut out = b"denied:".to_vec();
                        out.extend_from_slice(reason.as_bytes());
                        Some(out)
                    }
                }
            }
            Operation::Leave => {
                if let Some(m) = self.membership.as_mut() {
                    m.leave(req.client);
                    *membership_dirty = true;
                }
                self.keys.remove_client(req.client);
                if self.sessions.remove(req.client) {
                    self.persist_sessions();
                }
                Some(b"left".to_vec())
            }
        }
    }

    pub(crate) fn persist_sessions(&mut self) {
        let mut st = self.state.borrow_mut();
        // The session section is sized for MAX_SESSION_BYTES x the client
        // table capacity; persistence failure would be a configuration bug.
        self.sessions
            .persist(&self.session_section, &mut st)
            .expect("session section large enough for the session table");
    }

    pub(crate) fn persist_membership(&mut self) {
        if let Some(m) = &self.membership {
            let mut st = self.state.borrow_mut();
            // The library partition is sized for the configured table
            // capacity; persistence failure would be a configuration bug.
            m.persist(&self.lib_section, &mut st)
                .expect("library partition large enough for membership tables");
        }
    }

    // ------------------------------------------------------------------
    // Checkpoints (§2.1)
    // ------------------------------------------------------------------

    /// Take a checkpoint when `seq` is an interval boundary and its batch is
    /// committed and executed.
    pub(crate) fn maybe_checkpoint(&mut self, seq: SeqNum, res: &mut HandleResult) {
        if !seq.is_multiple_of(self.cfg.checkpoint_interval) {
            return;
        }
        if self.checkpoints.contains_key(&seq) {
            return;
        }
        let ready = self
            .log
            .get(seq)
            .map(|e| e.executed && e.committed)
            .unwrap_or(false);
        if !ready || self.last_executed < seq {
            return;
        }
        // All batches up to seq must be committed-executed (no tentative
        // holes below the checkpoint).
        let tentative_below = self
            .log
            .iter()
            .any(|(&s, e)| s <= seq && e.executed && e.tentative);
        if tentative_below {
            return;
        }
        let root = {
            let mut st = self.state.borrow_mut();
            let root = st.refresh_digest();
            res.counts.pages_hashed += st.last_refresh_hashed();
            root
        };
        let snap = self.state.borrow().snapshot(seq);
        self.checkpoints.insert(seq, snap);
        self.checkpoint_chain.insert(seq, self.exec_chain);
        self.checkpoint_chain
            .retain(|s, _| self.checkpoints.contains_key(s));
        self.metrics.checkpoints_taken += 1;
        let me = self.id();
        let msg = CheckpointMsg {
            seq,
            root,
            replica: me,
        };
        self.ckpt_votes.entry((seq, root)).or_default().insert(me);
        self.multicast(Message::Checkpoint(msg), res);
        self.maybe_stabilize(seq, root, res);
    }

    pub(crate) fn on_checkpoint(&mut self, c: CheckpointMsg, _now_ns: u64, res: &mut HandleResult) {
        if c.seq <= self.stable.0 {
            return;
        }
        self.ckpt_votes
            .entry((c.seq, c.root))
            .or_default()
            .insert(c.replica);
        self.maybe_stabilize(c.seq, c.root, res);
    }

    pub(crate) fn maybe_stabilize(&mut self, seq: SeqNum, root: Digest, res: &mut HandleResult) {
        let votes = self.ckpt_votes.get(&(seq, root)).map_or(0, |v| v.len());
        if votes < self.cfg.quorum() || seq <= self.stable.0 {
            return;
        }
        self.stable = (seq, root);
        self.log.collect_garbage(seq);
        self.ckpt_votes.retain(|&(s, _), _| s > seq);
        self.checkpoints.retain(|&s, _| s >= seq);
        self.prune_bodies();
        // Divergence / lag detection: if we have not executed up to `seq`
        // (wedged on a missing body §2.4, restarted §2.3, or plain lagging),
        // or if we took a checkpoint at `seq` whose digest differs from the
        // certificate, start a state transfer — "the recovery process
        // commence[s] on the next checkpoint". A replica that executed past
        // `seq` tentatively simply adopts the certificate: its own commits
        // will confirm the tentative prefix.
        let mine = self.checkpoints.get(&seq).map(|s| s.root);
        let behind = self.last_executed < seq && mine != Some(root);
        let diverged = mine.is_some() && mine != Some(root);
        if behind || diverged {
            self.start_state_transfer(seq, root, res);
        }
    }

    /// Drop stored bodies that no live log entry references. Executed
    /// entries above the stable checkpoint still count: a view-change
    /// rollback may need to re-execute them.
    fn prune_bodies(&mut self) {
        let referenced: std::collections::HashSet<Digest> = self
            .log
            .iter()
            .flat_map(|(_, e)| {
                e.preprepare
                    .iter()
                    .flat_map(|pp| pp.entries.iter().map(|en| en.digest))
            })
            .collect();
        // Keep bodies that a live log entry references *or* that belong to a
        // request not yet executed for its client (pending in the batching
        // queue or observed but not yet pre-prepared) — dropping those would
        // wedge execution exactly like a §2.4 packet loss.
        let last_ts = &self.last_req_ts;
        self.bodies.retain(|d, req| {
            referenced.contains(d) || req.timestamp > last_ts.get(&req.client).copied().unwrap_or(0)
        });
        self.pending_digests
            .retain(|d| referenced.contains(d) || self.pending.iter().any(|r| r.digest() == *d));
        // Observed requests already executed under a different digest path
        // are dropped via the per-client timestamp.
        let last_ts = &self.last_req_ts;
        self.observed
            .retain(|_, r| r.timestamp > last_ts.get(&r.client).copied().unwrap_or(0));
    }

    // ------------------------------------------------------------------
    // Missing-body fetch (the §2.4 fix, off by default)
    // ------------------------------------------------------------------

    pub(crate) fn on_body_fetch(&mut self, bf: BodyFetchMsg, res: &mut HandleResult) {
        if let Some(req) = self.bodies.get(&bf.digest) {
            self.send_plain(
                NetTarget::Replica(bf.replica),
                Message::BodyResp(req.clone()),
                res,
            );
        }
    }

    pub(crate) fn on_body_resp(&mut self, req: RequestMsg, now_ns: u64, res: &mut HandleResult) {
        let digest = req.digest();
        res.counts.digest_bytes += req.encoded_len() as u64;
        // Only accept bodies an unexecuted log entry actually references
        // (digest-validated, so no authentication needed).
        let wanted = self.log.iter().any(|(_, e)| {
            !e.executed
                && e.preprepare
                    .as_ref()
                    .is_some_and(|pp| pp.entries.iter().any(|en| en.digest == digest))
        });
        if wanted {
            self.bodies.insert(digest, req);
            self.try_execute(now_ns, res);
        }
    }

    pub(crate) fn on_fetch_retry(&mut self, res: &mut HandleResult) {
        self.retry_fetch(res);
    }

    /// Used by the recovery module as well.
    pub(crate) fn retry_fetch(&mut self, res: &mut HandleResult) {
        let Some(f) = &mut self.fetch else { return };
        f.attempt += 1;
        let peer = f.peers[f.attempt % f.peers.len()];
        let target_seq = f.target_seq;
        let reqs = f.outstanding.clone();
        for req in reqs {
            let msg = Message::Fetch(crate::messages::FetchMsg {
                target_seq,
                req,
                replica: self.id(),
            });
            self.send_plain(NetTarget::Replica(peer), msg, res);
        }
        res.outputs.push(Output::SetTimer {
            kind: TimerKind::FetchRetry,
            delay_ns: 100_000_000,
        });
    }

    /// Replicas the harness can ask about (tests).
    pub fn body_store_len(&self) -> usize {
        self.bodies.len()
    }

    /// Last reply cached for a client (tests).
    pub fn cached_reply(&self, client: ClientId) -> Option<&ReplyMsg> {
        self.last_reply.get(&client)
    }

    /// Number of checkpoints currently retained.
    pub fn retained_checkpoints(&self) -> usize {
        self.checkpoints.len()
    }

    /// Peers that voted for the current stable checkpoint (transfer sources).
    pub(crate) fn checkpoint_peers(&self, seq: SeqNum, root: Digest) -> Vec<ReplicaId> {
        self.ckpt_votes
            .get(&(seq, root))
            .map(|v| v.iter().copied().filter(|&r| r != self.id()).collect())
            .unwrap_or_else(|| {
                (0..self.cfg.n() as u32)
                    .map(ReplicaId)
                    .filter(|&r| r != self.id())
                    .collect()
            })
    }
}
