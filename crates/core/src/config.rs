//! Protocol configuration — the knobs the paper's Table 1 sweeps.

use crate::types::{ReplicaId, View};

/// How messages are authenticated (the `mac` / `nomac` axis of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthMode {
    /// MAC authenticators: one fast MAC per receiver ("Using MACs = Yes").
    Macs,
    /// Public-key signatures on every protocol message ("Using MACs = No").
    /// Slow but robust: signatures survive replica restarts and make view
    /// changes verifiable by third parties.
    Signatures,
}

/// Policy for validating the primary's non-deterministic data (paper §2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonDetPolicy {
    /// Maximum accepted skew between the primary's timestamp and the local
    /// clock, in nanoseconds.
    pub validate_window_ns: u64,
    /// If true, skip timestamp validation while replaying requests during
    /// recovery — the fix the paper proposes for the replay hazard ("when a
    /// request is replayed from the log during recovery, the time drift can
    /// be quite large and validating using a time delta will fail and impede
    /// the recovery process").
    pub skip_validation_on_replay: bool,
}

impl Default for NonDetPolicy {
    fn default() -> Self {
        NonDetPolicy {
            validate_window_ns: 500_000_000, // 500 ms
            skip_validation_on_replay: true,
        }
    }
}

/// Full protocol configuration.
///
/// [`PbftConfig::default`] gives Castro's preferred configuration
/// (`sta_mac_allbig_batch` in the paper's Table 1): MACs, all requests
/// treated as big, batching enabled, static membership.
#[derive(Debug, Clone)]
pub struct PbftConfig {
    /// Number of tolerated Byzantine faults.
    pub f: usize,
    /// Authentication mode (Table 1 `mac` axis).
    pub auth: AuthMode,
    /// Treat every request as big — multicast bodies from clients, digests
    /// in pre-prepares (Table 1 `allbig` axis; the library default sets the
    /// big threshold to 0, "resulting in all requests treated as big").
    pub all_requests_big: bool,
    /// Size threshold for big-request handling when `all_requests_big` is
    /// off.
    pub big_request_threshold: usize,
    /// Request batching (Table 1 `batch` axis). When off, every request gets
    /// its own agreement and the congestion window is forced to 1.
    pub batching: bool,
    /// Maximum requests folded into one pre-prepare.
    pub max_batch: usize,
    /// Congestion window / pipeline depth k: maximum *agreements*
    /// (pre-prepared batches) not yet executed before the primary postpones
    /// further pre-prepares, "giving itself time to catch up on request
    /// execution" and then including "as many outstanding request messages
    /// as possible" in one pre-prepare (§2.1). With k > 1 the primary (and
    /// the linear leader) keeps k pre-prepares in flight across the
    /// sequence window — windowed pipelining: a new batch is issued while
    /// its predecessors are still in the prepare/commit phases, and
    /// backpressure comes from the log watermarks plus this cap. A view
    /// change re-issues the whole in-flight window (the new-view `O` set
    /// spans every pre-prepared sequence). Small values force aggregation
    /// under load; 1 serializes agreements entirely.
    pub congestion_window: u64,
    /// Pipelined batch formation: while at least one batch is already in
    /// flight, the primary holds a pre-prepare back until this many
    /// requests are pending (or the [`PbftConfig::batch_gather_ns`]
    /// deadline passes). The pipeline already hides agreement latency for
    /// the in-flight batches, so gathering costs nothing at the tail while
    /// keeping batches large — without the gate, a deep window shreds a
    /// burst of arrivals into width-1 batches and the per-batch protocol
    /// cost stops amortizing. When the pipeline is *empty* the primary
    /// still issues immediately, whatever the queue depth, so an isolated
    /// request never waits. Active only in big-request mode
    /// ([`PbftConfig::all_requests_big`]), where the pre-prepare carries
    /// digests: with request bodies inline, every gathered request grows
    /// the pre-prepare toward MTU fragmentation and gathering stops
    /// paying. 1 disables the gate.
    pub pipeline_min_batch: usize,
    /// Deadline bounding the [`PbftConfig::pipeline_min_batch`] gather
    /// wait, in nanoseconds: a trickle of requests below the gate threshold
    /// is issued at the latest this long after gathering began.
    pub batch_gather_ns: u64,
    /// Take a checkpoint every this many sequence numbers.
    pub checkpoint_interval: u64,
    /// Log capacity: high watermark = low watermark + `log_size`.
    pub log_size: u64,
    /// Dynamic client membership (the paper's extension; Table 1 `sta` /
    /// `nosta` axis — `nosta` means dynamic enabled).
    pub dynamic_membership: bool,
    /// Capacity of the client/session table.
    pub max_clients: usize,
    /// Sessions idle longer than this are eligible for cleanup when the
    /// table is full (paper §3.1).
    pub session_stale_ns: u64,
    /// Primary issuance quantum when batching is off, in nanoseconds
    /// (0 = none). Without batching the original library issues pre-prepares
    /// from its event-loop tick rather than inline with request arrival;
    /// this quantum is what clusters all four of Table 1's no-batching rows
    /// near 1,000 TPS regardless of the crypto mode. Modeled explicitly so
    /// the ablation benches can turn it off.
    pub nobatch_issue_tick_ns: u64,
    /// Execute requests tentatively after prepare, before commit (§2.1).
    pub tentative_execution: bool,
    /// Execute read-only requests immediately on arrival (§2.1).
    pub read_only_optimization: bool,
    /// Capacity of the contention gate's deferred-read queue: a read-only
    /// request whose declared keys are dirty in a tentatively executed
    /// (prepared but uncommitted) batch is parked until local commit
    /// instead of being answered from uncommitted state — the answer would
    /// force the client through retransmit-and-escalate. Once the queue is
    /// full, further contended reads fall back to immediate optimistic
    /// service (safe: the client's 2f+1 matching rule still protects it,
    /// at the cost of possible escalation).
    pub read_defer_max: usize,
    /// Backup timer before suspecting the primary and starting a view
    /// change, in nanoseconds.
    pub view_change_timeout_ns: u64,
    /// Multiplier applied to [`PbftConfig::view_change_timeout_ns`] per
    /// failed view-change round (exponential backoff base; Castro uses 2).
    /// Fault scenarios sweep this: a smaller factor retries aggressively
    /// under churn, a larger one rides out slow-but-alive primaries.
    pub view_change_backoff_factor: u64,
    /// Cap on the backoff exponent: rounds beyond this all use the maximum
    /// delay, bounding the worst-case wait for a new-view round.
    pub view_change_backoff_max_rounds: u32,
    /// Client retransmission timeout, in nanoseconds.
    pub client_retransmit_ns: u64,
    /// Interval of the client's blind NewKey (authenticator) retransmission
    /// — the only mechanism that lets a restarted replica re-learn client
    /// MAC keys (paper §2.3).
    pub newkey_interval_ns: u64,
    /// Interval of the replica status broadcast that drives protocol-message
    /// retransmission to lagging peers (PBFT's recovery from lost
    /// replica-to-replica datagrams).
    pub status_interval_ns: u64,
    /// Non-determinism validation policy (paper §2.5).
    pub nondet: NonDetPolicy,
    /// Optional fix for the §2.4 big-request hazard: fetch missing request
    /// bodies from peer replicas instead of stalling until the next
    /// checkpoint. Off by default (the library's behaviour the paper
    /// documents).
    pub fetch_missing_bodies: bool,
}

impl Default for PbftConfig {
    fn default() -> Self {
        PbftConfig {
            f: 1,
            auth: AuthMode::Macs,
            all_requests_big: true,
            big_request_threshold: 8192,
            batching: true,
            max_batch: 64,
            nobatch_issue_tick_ns: 1_000_000,
            congestion_window: 8,
            pipeline_min_batch: 6,
            batch_gather_ns: 600_000, // 600 µs
            checkpoint_interval: 128,
            log_size: 256,
            dynamic_membership: false,
            max_clients: 64,
            session_stale_ns: 60_000_000_000, // 60 s
            tentative_execution: true,
            read_only_optimization: true,
            read_defer_max: 64,
            view_change_timeout_ns: 500_000_000, // 500 ms
            view_change_backoff_factor: 2,
            view_change_backoff_max_rounds: 10,
            client_retransmit_ns: 150_000_000, // 150 ms
            newkey_interval_ns: 2_000_000_000, // 2 s
            status_interval_ns: 150_000_000,   // 150 ms
            nondet: NonDetPolicy::default(),
            fetch_missing_bodies: false,
        }
    }
}

impl PbftConfig {
    /// Group size `n = 3f + 1`.
    pub fn n(&self) -> usize {
        3 * self.f + 1
    }

    /// Quorum size `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Weak certificate size `f + 1`.
    pub fn weak_quorum(&self) -> usize {
        self.f + 1
    }

    /// The primary of `view`.
    pub fn primary_of(&self, view: View) -> ReplicaId {
        ReplicaId((view % self.n() as u64) as u32)
    }

    /// Effective batching limit (1 when batching is disabled).
    pub fn effective_max_batch(&self) -> usize {
        if self.batching {
            self.max_batch.max(1)
        } else {
            1
        }
    }

    /// Effective congestion window (1 when batching is disabled — without
    /// batching the library serializes agreements).
    pub fn effective_window(&self) -> u64 {
        if self.batching {
            self.congestion_window.max(1)
        } else {
            1
        }
    }

    /// The new-view round timeout for a view change targeting a view
    /// `rounds` ahead of the current one: the base timeout scaled by the
    /// backoff factor per round, with the exponent capped (all saturating,
    /// so extreme knob settings clamp instead of wrapping).
    pub fn view_change_delay_ns(&self, rounds: u64) -> u64 {
        let exp = rounds.min(self.view_change_backoff_max_rounds as u64) as u32;
        self.view_change_timeout_ns
            .saturating_mul(self.view_change_backoff_factor.saturating_pow(exp))
    }

    /// Is a request of `size` bytes handled as "big"?
    pub fn is_big(&self, size: usize) -> bool {
        self.all_requests_big || size > self.big_request_threshold
    }

    /// Named Table 1 configuration, e.g. `sta_mac_allbig_batch`.
    pub fn table1_name(&self) -> String {
        format!(
            "{}_{}_{}_{}",
            if self.dynamic_membership {
                "nosta"
            } else {
                "sta"
            },
            if self.auth == AuthMode::Macs {
                "mac"
            } else {
                "nomac"
            },
            if self.all_requests_big {
                "allbig"
            } else {
                "noallbig"
            },
            if self.batching { "batch" } else { "nobatch" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_arithmetic() {
        let cfg = PbftConfig {
            f: 1,
            ..Default::default()
        };
        assert_eq!(cfg.n(), 4);
        assert_eq!(cfg.quorum(), 3);
        assert_eq!(cfg.weak_quorum(), 2);
        let cfg2 = PbftConfig {
            f: 2,
            ..Default::default()
        };
        assert_eq!(cfg2.n(), 7);
        assert_eq!(cfg2.quorum(), 5);
    }

    #[test]
    fn primary_rotates() {
        let cfg = PbftConfig {
            f: 1,
            ..Default::default()
        };
        assert_eq!(cfg.primary_of(0), ReplicaId(0));
        assert_eq!(cfg.primary_of(1), ReplicaId(1));
        assert_eq!(cfg.primary_of(4), ReplicaId(0));
        assert_eq!(cfg.primary_of(7), ReplicaId(3));
    }

    #[test]
    fn batching_off_forces_window_one() {
        let cfg = PbftConfig {
            batching: false,
            ..Default::default()
        };
        assert_eq!(cfg.effective_window(), 1);
        assert_eq!(cfg.effective_max_batch(), 1);
        // The default pipelines: several agreements in flight at once.
        let on = PbftConfig::default();
        assert_eq!(on.effective_window(), 8);
        assert!(on.effective_window() > 1, "default must pipeline");
        assert_eq!(on.effective_max_batch(), 64);
    }

    #[test]
    fn batch_formation_gate_defaults() {
        // The tuned operating point of the pipelined batch-formation gate
        // (see benches/hotpath.rs and the Table 1 trajectory floor): with
        // 12 closed-loop clients the group settles into a double-buffered
        // width-6 cadence. Changing these shifts the committed BENCH
        // artifacts — retune, don't drift.
        let cfg = PbftConfig::default();
        assert_eq!(cfg.pipeline_min_batch, 6);
        assert_eq!(cfg.batch_gather_ns, 600_000);
        // The gate must stay within the pipeline's capacity: a threshold
        // above max_batch could never be met by a single batch.
        assert!(cfg.pipeline_min_batch <= cfg.effective_max_batch());
    }

    #[test]
    fn view_change_backoff_scales_and_caps() {
        let cfg = PbftConfig {
            view_change_timeout_ns: 100,
            ..Default::default()
        };
        assert_eq!(cfg.view_change_delay_ns(0), 100);
        assert_eq!(cfg.view_change_delay_ns(1), 200);
        assert_eq!(cfg.view_change_delay_ns(3), 800);
        // The exponent caps at max_rounds: further rounds share the delay.
        assert_eq!(cfg.view_change_delay_ns(10), cfg.view_change_delay_ns(50));
        // A unity factor disables backoff entirely.
        let flat = PbftConfig {
            view_change_timeout_ns: 100,
            view_change_backoff_factor: 1,
            ..Default::default()
        };
        assert_eq!(flat.view_change_delay_ns(7), 100);
        // Extreme settings saturate instead of wrapping.
        let extreme = PbftConfig {
            view_change_timeout_ns: u64::MAX / 2,
            view_change_backoff_factor: u64::MAX,
            ..Default::default()
        };
        assert_eq!(extreme.view_change_delay_ns(9), u64::MAX);
    }

    #[test]
    fn big_request_rules() {
        let all = PbftConfig::default();
        assert!(all.is_big(1));
        let sel = PbftConfig {
            all_requests_big: false,
            ..Default::default()
        };
        assert!(!sel.is_big(1024));
        assert!(sel.is_big(10_000));
    }

    #[test]
    fn table1_names() {
        assert_eq!(PbftConfig::default().table1_name(), "sta_mac_allbig_batch");
        let robust = PbftConfig {
            dynamic_membership: true,
            auth: AuthMode::Signatures,
            all_requests_big: false,
            batching: false,
            ..Default::default()
        };
        assert_eq!(robust.table1_name(), "nosta_nomac_noallbig_nobatch");
    }
}
