//! Protocol messages and their canonical wire encodings.
//!
//! Digests and MACs are computed over these canonical bytes, so encoding is
//! part of the protocol. The first byte of every packet is the message
//! discriminant, which makes simulator traces legible without decoding.

use pbft_crypto::auth::Authenticator;
use pbft_crypto::challenge::ChallengeResponse;
use pbft_crypto::{Digest, Mac64, PublicKey, Signature};
use pbft_state::{FetchRequest, FetchResponse};

use crate::app::NonDet;
use crate::types::{ClientId, NetAddr, ReplicaId, SeqNum, View};
use crate::wire::{Dec, Enc, WireError};

/// The operation carried by a request: an application op or one of the
/// dynamic-membership system requests (paper §3.1 — "We define two special
/// system requests, namely a Join and a Leave, which follow the same
/// life-cycle as all other application-level (client) requests").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// Opaque application operation, executed through the `App` upcall.
    App(Vec<u8>),
    /// No-op (used by new primaries to fill sequence gaps in view changes).
    Noop,
    /// Phase one of the two-phase Join: announce identity, await challenge.
    JoinPhase1 {
        /// The joining client's public key.
        pubkey: PublicKey,
        /// Client freshness nonce.
        nonce: u64,
        /// Where replies (and the challenge) should be sent.
        reply_addr: NetAddr,
        /// Application-level identification buffer (e.g. encrypted
        /// credentials), passed to the application for authorization.
        idbuf: Vec<u8>,
    },
    /// Phase two: prove receipt of the challenge.
    JoinPhase2 {
        /// Fingerprint of the joining client's public key (identifies the
        /// pending phase-one attempt).
        fingerprint: Digest,
        /// The challenge response.
        response: ChallengeResponse,
    },
    /// Leave the group; all further communication is rejected.
    Leave,
}

impl Operation {
    fn encode(&self, e: &mut Enc) {
        match self {
            Operation::App(op) => {
                e.u8(0).bytes(op);
            }
            Operation::Noop => {
                e.u8(1);
            }
            Operation::JoinPhase1 {
                pubkey,
                nonce,
                reply_addr,
                idbuf,
            } => {
                e.u8(2)
                    .raw(&pubkey.to_bytes())
                    .u64(*nonce)
                    .u32(*reply_addr)
                    .bytes(idbuf);
            }
            Operation::JoinPhase2 {
                fingerprint,
                response,
            } => {
                e.u8(3).digest(fingerprint).digest(&response.0);
            }
            Operation::Leave => {
                e.u8(4);
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<Operation, WireError> {
        match d.u8()? {
            0 => Ok(Operation::App(d.bytes()?)),
            1 => Ok(Operation::Noop),
            2 => {
                let pk: [u8; 16] = d.raw(16)?.try_into().expect("16 bytes");
                Ok(Operation::JoinPhase1 {
                    pubkey: PublicKey::from_bytes(&pk),
                    nonce: d.u64()?,
                    reply_addr: d.u32()?,
                    idbuf: d.bytes()?,
                })
            }
            3 => Ok(Operation::JoinPhase2 {
                fingerprint: d.digest()?,
                response: ChallengeResponse(d.digest()?),
            }),
            4 => Ok(Operation::Leave),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Is this one of the membership system requests?
    pub fn is_system(&self) -> bool {
        !matches!(self, Operation::App(_) | Operation::Noop)
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestMsg {
    /// Requesting client (0 for anonymous phase-one joins).
    pub client: ClientId,
    /// Client-local monotonically increasing timestamp; pairs with `client`
    /// to identify the request.
    pub timestamp: u64,
    /// Read-only flag, set explicitly by the client (§2.1).
    pub read_only: bool,
    /// Transport address replies go to.
    pub reply_addr: NetAddr,
    /// The operation.
    pub op: Operation,
}

impl RequestMsg {
    /// Canonical digest identifying the request.
    pub fn digest(&self) -> Digest {
        let mut e = Enc::new();
        self.encode(&mut e);
        Digest::of(e.as_slice())
    }

    /// Encoded size (used for the big-request threshold).
    pub fn encoded_len(&self) -> usize {
        let mut e = Enc::new();
        self.encode(&mut e);
        e.len()
    }

    fn encode(&self, e: &mut Enc) {
        e.u64(self.client.0)
            .u64(self.timestamp)
            .boolean(self.read_only)
            .u32(self.reply_addr);
        self.op.encode(e);
    }

    fn decode(d: &mut Dec<'_>) -> Result<RequestMsg, WireError> {
        Ok(RequestMsg {
            client: ClientId(d.u64()?),
            timestamp: d.u64()?,
            read_only: d.boolean()?,
            reply_addr: d.u32()?,
            op: Operation::decode(d)?,
        })
    }
}

/// One request inside a pre-prepare batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEntry {
    /// The request digest (always present; this is what the agreement is
    /// over).
    pub digest: Digest,
    /// Requesting client.
    pub client: ClientId,
    /// Request timestamp.
    pub timestamp: u64,
    /// Inline body for non-big requests; big requests travel directly from
    /// the client and only their digest is relayed (§2.1, §2.4).
    pub full: Option<RequestMsg>,
}

impl BatchEntry {
    fn encode(&self, e: &mut Enc) {
        e.digest(&self.digest)
            .u64(self.client.0)
            .u64(self.timestamp);
        match &self.full {
            Some(r) => {
                e.u8(1);
                r.encode(e);
            }
            None => {
                e.u8(0);
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<BatchEntry, WireError> {
        let digest = d.digest()?;
        let client = ClientId(d.u64()?);
        let timestamp = d.u64()?;
        let full = match d.u8()? {
            0 => None,
            1 => Some(RequestMsg::decode(d)?),
            t => return Err(WireError::BadTag(t)),
        };
        Ok(BatchEntry {
            digest,
            client,
            timestamp,
            full,
        })
    }
}

/// Pre-prepare: the primary's sequence-number assignment for a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrePrepareMsg {
    /// Current view.
    pub view: View,
    /// Assigned sequence number.
    pub seq: SeqNum,
    /// The primary's non-deterministic data (timestamp + randomness),
    /// validated by backups (§2.5).
    pub nondet: NonDet,
    /// The batched requests.
    pub entries: Vec<BatchEntry>,
}

impl PrePrepareMsg {
    /// The digest the prepare/commit phases agree on: covers view, seq,
    /// non-determinism and the ordered request digests (not inline bodies).
    pub fn batch_digest(&self) -> Digest {
        let mut e = Enc::new();
        e.u64(self.view)
            .u64(self.seq)
            .u64(self.nondet.timestamp_ns)
            .u64(self.nondet.random);
        e.u32(self.entries.len() as u32);
        for entry in &self.entries {
            e.digest(&entry.digest);
            e.u64(entry.client.0);
            e.u64(entry.timestamp);
        }
        Digest::of(e.as_slice())
    }

    fn encode(&self, e: &mut Enc) {
        e.u64(self.view)
            .u64(self.seq)
            .u64(self.nondet.timestamp_ns)
            .u64(self.nondet.random);
        e.u32(self.entries.len() as u32);
        for entry in &self.entries {
            entry.encode(e);
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<PrePrepareMsg, WireError> {
        let view = d.u64()?;
        let seq = d.u64()?;
        let nondet = NonDet {
            timestamp_ns: d.u64()?,
            random: d.u64()?,
        };
        let n = d.u32()? as usize;
        if n > 100_000 {
            return Err(WireError::BadLength(n as u64));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(BatchEntry::decode(d)?);
        }
        Ok(PrePrepareMsg {
            view,
            seq,
            nondet,
            entries,
        })
    }
}

/// Prepare: a backup's agreement to the primary's assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepareMsg {
    /// Current view.
    pub view: View,
    /// Sequence number being agreed.
    pub seq: SeqNum,
    /// The batch digest from the pre-prepare.
    pub digest: Digest,
    /// The preparing replica.
    pub replica: ReplicaId,
}

/// Commit: second-phase vote guaranteeing total order across views.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitMsg {
    /// Current view.
    pub view: View,
    /// Sequence number.
    pub seq: SeqNum,
    /// The batch digest.
    pub digest: Digest,
    /// The committing replica.
    pub replica: ReplicaId,
}

/// Quorum certificate: the leader-aggregated vote set the linear engine
/// ([`crate::linear`]) broadcasts in place of all-to-all prepare/commit
/// exchanges. `PrepareQC` certifies 2f backup prepare votes for one
/// `(view, seq, digest)` slot; `CommitQC` certifies a full 2f+1 commit
/// quorum. The voter list is unattested — the same documented
/// simplification as the prepared certificates inside view-change
/// messages — which is sound for the crash/timing fault model the
/// conformance scenarios exercise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumCertMsg {
    /// View the votes were cast in.
    pub view: View,
    /// Sequence number the certificate covers.
    pub seq: SeqNum,
    /// The batch digest the voters agreed on.
    pub digest: Digest,
    /// The replicas whose votes the leader aggregated.
    pub voters: Vec<ReplicaId>,
}

impl QuorumCertMsg {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.view)
            .u64(self.seq)
            .digest(&self.digest)
            .u32(self.voters.len() as u32);
        for v in &self.voters {
            e.u32(v.0);
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let view = d.u64()?;
        let seq = d.u64()?;
        let digest = d.digest()?;
        let count = d.u32()? as usize;
        if count > 10_000 {
            return Err(WireError::BadLength(count as u64));
        }
        let mut voters = Vec::with_capacity(count);
        for _ in 0..count {
            voters.push(ReplicaId(d.u32()?));
        }
        Ok(QuorumCertMsg {
            view,
            seq,
            digest,
            voters,
        })
    }
}

/// Reply: sent directly from each replica to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyMsg {
    /// View in which the request executed (tells clients who the primary is).
    pub view: View,
    /// Echoed client id.
    pub client: ClientId,
    /// Echoed request timestamp.
    pub timestamp: u64,
    /// The replying replica.
    pub replica: ReplicaId,
    /// True for tentative-execution replies: the client must collect 2f+1
    /// of these instead of f+1 stable ones (§2.1).
    pub tentative: bool,
    /// Designated-replier optimization (§2.1): `false` means `result` is
    /// the execution result itself; `true` means the body was omitted and
    /// `result` holds its 32-byte digest instead. Only f+1 rotating
    /// replicas send the full body per request — enough that a correct one
    /// always reaches the client — and the rest vote with the digest.
    pub digest_only: bool,
    /// The execution result (or its digest, see
    /// [`ReplyMsg::digest_only`]).
    pub result: Vec<u8>,
}

impl ReplyMsg {
    /// The digest clients match replies on: carried directly by a
    /// digest-only reply, computed from the body otherwise. `None` for a
    /// malformed digest-only reply (payload not exactly 32 bytes).
    pub fn matching_digest(&self) -> Option<Digest> {
        if self.digest_only {
            let b: [u8; 32] = self.result.as_slice().try_into().ok()?;
            Some(Digest(b))
        } else {
            Some(Digest::of(&self.result))
        }
    }

    /// The digest-only form of this reply: body replaced by its digest —
    /// what a non-designated replica sends. Results no longer than a
    /// digest are kept inline (stripping would grow the packet).
    pub fn to_digest_only(&self) -> ReplyMsg {
        if self.result.len() <= 32 {
            return self.clone();
        }
        ReplyMsg {
            digest_only: true,
            result: Digest::of(&self.result).as_bytes().to_vec(),
            ..self.clone()
        }
    }
}

/// Checkpoint attestation (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMsg {
    /// Checkpoint sequence number (a multiple of the checkpoint interval).
    pub seq: SeqNum,
    /// Merkle root of the state at `seq`.
    pub root: Digest,
    /// The attesting replica.
    pub replica: ReplicaId,
}

/// A client's session-key distribution message. "The client assigns a
/// different key to each replica and sends the key to it, signed with the
/// node's public key" (§2.1); retransmitted blindly on a timer, which is the
/// only thing that un-sticks a restarted replica (§2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewKeyMsg {
    /// The client distributing keys.
    pub client: ClientId,
    /// Reply address for this client.
    pub reply_addr: NetAddr,
    /// One 32-byte session key per replica, indexed by replica id. (In the
    /// real system each key is encrypted under the replica's public key; the
    /// simulation does not model eavesdroppers.)
    pub keys: Vec<[u8; 32]>,
}

/// Replica status, exchanged on (re)start for recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusMsg {
    /// The reporting replica.
    pub replica: ReplicaId,
    /// Its current view.
    pub view: View,
    /// Its last stable checkpoint.
    pub last_stable_seq: SeqNum,
    /// Root digest of that checkpoint.
    pub stable_root: Digest,
    /// Highest executed sequence number.
    pub last_executed: SeqNum,
    /// Whether the reporter is mid-view-change (its `view` is then the old
    /// view it is leaving, not one it vouches is live). Recovery's
    /// stranded-view rejoin only counts peers *actively operating* in a
    /// lower view, so a legitimate in-progress view change never reads as
    /// "the group is still back there".
    pub in_view_change: bool,
}

/// State-transfer fetch (wraps the tree-walk protocol of `pbft-state`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchMsg {
    /// Checkpoint sequence being fetched.
    pub target_seq: SeqNum,
    /// The tree-walk request.
    pub req: FetchRequest,
    /// Requesting replica.
    pub replica: ReplicaId,
}

/// State-transfer response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchRespMsg {
    /// Echoed checkpoint sequence.
    pub target_seq: SeqNum,
    /// The tree-walk response.
    pub resp: FetchResponse,
    /// Responding replica.
    pub replica: ReplicaId,
}

/// Request-body fetch (the optional §2.4 fix, `fetch_missing_bodies`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BodyFetchMsg {
    /// Digest of the missing request body.
    pub digest: Digest,
    /// Requesting replica.
    pub replica: ReplicaId,
}

/// A prepared certificate carried in a view change: the pre-prepare whose
/// batch reached the prepared state at this replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedProof {
    /// The prepared pre-prepare (its `view` is the view it prepared in).
    pub preprepare: PrePrepareMsg,
}

/// View-change vote (§2.1: "The remaining replicas monitor ... and, if the
/// latter is found misbehaving, begin a view change procedure").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewChangeMsg {
    /// The proposed new view.
    pub new_view: View,
    /// The sender's last stable checkpoint sequence.
    pub last_stable_seq: SeqNum,
    /// Root of that checkpoint.
    pub stable_root: Digest,
    /// Prepared certificates above the stable checkpoint.
    pub prepared: Vec<PreparedProof>,
    /// The voting replica.
    pub replica: ReplicaId,
}

/// New-view: the new primary's proof and pre-prepare set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewViewMsg {
    /// The view being installed.
    pub view: View,
    /// The 2f+1 view-change votes justifying it.
    pub view_changes: Vec<ViewChangeMsg>,
    /// Re-issued pre-prepares (set "O" in the PBFT paper).
    pub pre_prepares: Vec<PrePrepareMsg>,
}

/// Every protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client request.
    Request(RequestMsg),
    /// Primary's assignment.
    PrePrepare(PrePrepareMsg),
    /// Backup agreement.
    Prepare(PrepareMsg),
    /// Commit vote.
    Commit(CommitMsg),
    /// Execution result to a client.
    Reply(ReplyMsg),
    /// Checkpoint attestation.
    Checkpoint(CheckpointMsg),
    /// View-change vote.
    ViewChange(ViewChangeMsg),
    /// New-view installation.
    NewView(NewViewMsg),
    /// Client session-key distribution.
    NewKey(NewKeyMsg),
    /// Recovery status exchange.
    Status(StatusMsg),
    /// State-transfer fetch.
    Fetch(FetchMsg),
    /// State-transfer response.
    FetchResp(FetchRespMsg),
    /// Missing-body fetch (§2.4 fix).
    BodyFetch(BodyFetchMsg),
    /// Missing-body response.
    BodyResp(RequestMsg),
    /// Linear-engine prepare certificate (leader-aggregated, [`crate::linear`]).
    PrepareQC(QuorumCertMsg),
    /// Linear-engine commit certificate (leader-aggregated, [`crate::linear`]).
    CommitQC(QuorumCertMsg),
}

impl Message {
    /// Wire discriminant; also the first byte of every encoded packet.
    pub fn discriminant(&self) -> u8 {
        match self {
            Message::Request(_) => 1,
            Message::PrePrepare(_) => 2,
            Message::Prepare(_) => 3,
            Message::Commit(_) => 4,
            Message::Reply(_) => 5,
            Message::Checkpoint(_) => 6,
            Message::ViewChange(_) => 7,
            Message::NewView(_) => 8,
            Message::NewKey(_) => 9,
            Message::Status(_) => 10,
            Message::Fetch(_) => 11,
            Message::FetchResp(_) => 12,
            Message::BodyFetch(_) => 13,
            Message::BodyResp(_) => 14,
            Message::PrepareQC(_) => 15,
            Message::CommitQC(_) => 16,
        }
    }

    /// Short human-readable name (used in traces and test assertions).
    pub fn name(&self) -> &'static str {
        match self {
            Message::Request(_) => "request",
            Message::PrePrepare(_) => "pre-prepare",
            Message::Prepare(_) => "prepare",
            Message::Commit(_) => "commit",
            Message::Reply(_) => "reply",
            Message::Checkpoint(_) => "checkpoint",
            Message::ViewChange(_) => "view-change",
            Message::NewView(_) => "new-view",
            Message::NewKey(_) => "new-key",
            Message::Status(_) => "status",
            Message::Fetch(_) => "fetch",
            Message::FetchResp(_) => "fetch-resp",
            Message::BodyFetch(_) => "body-fetch",
            Message::BodyResp(_) => "body-resp",
            Message::PrepareQC(_) => "prepare-qc",
            Message::CommitQC(_) => "commit-qc",
        }
    }

    fn encode_body(&self, e: &mut Enc) {
        match self {
            Message::Request(m) => m.encode(e),
            Message::PrePrepare(m) => m.encode(e),
            Message::Prepare(m) => {
                e.u64(m.view).u64(m.seq).digest(&m.digest).u32(m.replica.0);
            }
            Message::Commit(m) => {
                e.u64(m.view).u64(m.seq).digest(&m.digest).u32(m.replica.0);
            }
            Message::Reply(m) => {
                e.u64(m.view)
                    .u64(m.client.0)
                    .u64(m.timestamp)
                    .u32(m.replica.0)
                    .boolean(m.tentative)
                    .boolean(m.digest_only)
                    .bytes(&m.result);
            }
            Message::Checkpoint(m) => {
                e.u64(m.seq).digest(&m.root).u32(m.replica.0);
            }
            Message::ViewChange(m) => {
                e.u64(m.new_view)
                    .u64(m.last_stable_seq)
                    .digest(&m.stable_root);
                e.u32(m.prepared.len() as u32);
                for p in &m.prepared {
                    p.preprepare.encode(e);
                }
                e.u32(m.replica.0);
            }
            Message::NewView(m) => {
                e.u64(m.view);
                e.u32(m.view_changes.len() as u32);
                for vc in &m.view_changes {
                    let mut inner = Enc::new();
                    Message::ViewChange(vc.clone()).encode_body(&mut inner);
                    e.bytes(inner.as_slice());
                }
                e.u32(m.pre_prepares.len() as u32);
                for pp in &m.pre_prepares {
                    pp.encode(e);
                }
            }
            Message::NewKey(m) => {
                e.u64(m.client.0).u32(m.reply_addr);
                e.u32(m.keys.len() as u32);
                for k in &m.keys {
                    e.raw(k);
                }
            }
            Message::Status(m) => {
                e.u32(m.replica.0)
                    .u64(m.view)
                    .u64(m.last_stable_seq)
                    .digest(&m.stable_root)
                    .u64(m.last_executed)
                    .u8(u8::from(m.in_view_change));
            }
            Message::Fetch(m) => {
                e.u64(m.target_seq);
                match &m.req {
                    FetchRequest::Meta { level, index } => {
                        e.u8(0).u32(*level).u64(*index);
                    }
                    FetchRequest::Page { index } => {
                        e.u8(1).u64(*index);
                    }
                }
                e.u32(m.replica.0);
            }
            Message::FetchResp(m) => {
                e.u64(m.target_seq);
                match &m.resp {
                    FetchResponse::Meta {
                        level,
                        index,
                        children,
                    } => {
                        e.u8(0)
                            .u32(*level)
                            .u64(*index)
                            .digest(&children.0)
                            .digest(&children.1);
                    }
                    FetchResponse::Page { index, data } => {
                        e.u8(1).u64(*index);
                        match data {
                            Some(d) => {
                                e.u8(1).bytes(d);
                            }
                            None => {
                                e.u8(0);
                            }
                        }
                    }
                    FetchResponse::Unavailable => {
                        e.u8(2);
                    }
                }
                e.u32(m.replica.0);
            }
            Message::BodyFetch(m) => {
                e.digest(&m.digest).u32(m.replica.0);
            }
            Message::BodyResp(m) => m.encode(e),
            Message::PrepareQC(m) => m.encode(e),
            Message::CommitQC(m) => m.encode(e),
        }
    }

    fn decode_body(disc: u8, d: &mut Dec<'_>) -> Result<Message, WireError> {
        Ok(match disc {
            1 => Message::Request(RequestMsg::decode(d)?),
            2 => Message::PrePrepare(PrePrepareMsg::decode(d)?),
            3 => Message::Prepare(PrepareMsg {
                view: d.u64()?,
                seq: d.u64()?,
                digest: d.digest()?,
                replica: ReplicaId(d.u32()?),
            }),
            4 => Message::Commit(CommitMsg {
                view: d.u64()?,
                seq: d.u64()?,
                digest: d.digest()?,
                replica: ReplicaId(d.u32()?),
            }),
            5 => Message::Reply(ReplyMsg {
                view: d.u64()?,
                client: ClientId(d.u64()?),
                timestamp: d.u64()?,
                replica: ReplicaId(d.u32()?),
                tentative: d.boolean()?,
                digest_only: d.boolean()?,
                result: d.bytes()?,
            }),
            6 => Message::Checkpoint(CheckpointMsg {
                seq: d.u64()?,
                root: d.digest()?,
                replica: ReplicaId(d.u32()?),
            }),
            7 => {
                let new_view = d.u64()?;
                let last_stable_seq = d.u64()?;
                let stable_root = d.digest()?;
                let n = d.u32()? as usize;
                if n > 100_000 {
                    return Err(WireError::BadLength(n as u64));
                }
                let mut prepared = Vec::with_capacity(n);
                for _ in 0..n {
                    prepared.push(PreparedProof {
                        preprepare: PrePrepareMsg::decode(d)?,
                    });
                }
                let replica = ReplicaId(d.u32()?);
                Message::ViewChange(ViewChangeMsg {
                    new_view,
                    last_stable_seq,
                    stable_root,
                    prepared,
                    replica,
                })
            }
            8 => {
                let view = d.u64()?;
                let nvc = d.u32()? as usize;
                if nvc > 10_000 {
                    return Err(WireError::BadLength(nvc as u64));
                }
                let mut view_changes = Vec::with_capacity(nvc);
                for _ in 0..nvc {
                    let inner = d.bytes()?;
                    let mut id = Dec::new(&inner);
                    match Message::decode_body(7, &mut id)? {
                        Message::ViewChange(vc) => {
                            id.finish()?;
                            view_changes.push(vc);
                        }
                        _ => return Err(WireError::BadTag(8)),
                    }
                }
                let npp = d.u32()? as usize;
                if npp > 100_000 {
                    return Err(WireError::BadLength(npp as u64));
                }
                let mut pre_prepares = Vec::with_capacity(npp);
                for _ in 0..npp {
                    pre_prepares.push(PrePrepareMsg::decode(d)?);
                }
                Message::NewView(NewViewMsg {
                    view,
                    view_changes,
                    pre_prepares,
                })
            }
            9 => {
                let client = ClientId(d.u64()?);
                let reply_addr = d.u32()?;
                let n = d.u32()? as usize;
                if n > 10_000 {
                    return Err(WireError::BadLength(n as u64));
                }
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    let k: [u8; 32] = d.raw(32)?.try_into().expect("32 bytes");
                    keys.push(k);
                }
                Message::NewKey(NewKeyMsg {
                    client,
                    reply_addr,
                    keys,
                })
            }
            10 => Message::Status(StatusMsg {
                replica: ReplicaId(d.u32()?),
                view: d.u64()?,
                last_stable_seq: d.u64()?,
                stable_root: d.digest()?,
                last_executed: d.u64()?,
                in_view_change: d.u8()? != 0,
            }),
            11 => {
                let target_seq = d.u64()?;
                let req = match d.u8()? {
                    0 => FetchRequest::Meta {
                        level: d.u32()?,
                        index: d.u64()?,
                    },
                    1 => FetchRequest::Page { index: d.u64()? },
                    t => return Err(WireError::BadTag(t)),
                };
                Message::Fetch(FetchMsg {
                    target_seq,
                    req,
                    replica: ReplicaId(d.u32()?),
                })
            }
            12 => {
                let target_seq = d.u64()?;
                let resp = match d.u8()? {
                    0 => FetchResponse::Meta {
                        level: d.u32()?,
                        index: d.u64()?,
                        children: (d.digest()?, d.digest()?),
                    },
                    1 => {
                        let index = d.u64()?;
                        let data = match d.u8()? {
                            0 => None,
                            1 => Some(d.bytes()?),
                            t => return Err(WireError::BadTag(t)),
                        };
                        FetchResponse::Page { index, data }
                    }
                    2 => FetchResponse::Unavailable,
                    t => return Err(WireError::BadTag(t)),
                };
                Message::FetchResp(FetchRespMsg {
                    target_seq,
                    resp,
                    replica: ReplicaId(d.u32()?),
                })
            }
            13 => Message::BodyFetch(BodyFetchMsg {
                digest: d.digest()?,
                replica: ReplicaId(d.u32()?),
            }),
            14 => Message::BodyResp(RequestMsg::decode(d)?),
            15 => Message::PrepareQC(QuorumCertMsg::decode(d)?),
            16 => Message::CommitQC(QuorumCertMsg::decode(d)?),
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// Who sent a packet (used to look up verification keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sender {
    /// A group replica.
    Replica(ReplicaId),
    /// An established client.
    Client(ClientId),
    /// A client that has not yet joined (phase-one Join only).
    Anonymous,
}

impl Sender {
    fn encode(&self, e: &mut Enc) {
        match self {
            Sender::Replica(r) => {
                e.u8(0).u32(r.0);
            }
            Sender::Client(c) => {
                e.u8(1).u64(c.0);
            }
            Sender::Anonymous => {
                e.u8(2);
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<Sender, WireError> {
        match d.u8()? {
            0 => Ok(Sender::Replica(ReplicaId(d.u32()?))),
            1 => Ok(Sender::Client(ClientId(d.u64()?))),
            2 => Ok(Sender::Anonymous),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// The authentication trailer of a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthTag {
    /// Unauthenticated (phase-one joins, replies protected by content
    /// matching at f+1 quorums, fetch traffic validated by digests).
    None,
    /// A single MAC addressed to the receiver (replica→client replies).
    Mac(Mac64),
    /// An authenticator: one MAC per replica.
    Authenticator(Authenticator),
    /// A public-key signature.
    Sig(Signature),
}

impl AuthTag {
    fn encode(&self, e: &mut Enc) {
        match self {
            AuthTag::None => {
                e.u8(0);
            }
            AuthTag::Mac(m) => {
                e.u8(1).raw(&m.to_bytes());
            }
            AuthTag::Authenticator(a) => {
                e.u8(2).u32(a.len() as u32);
                for (idx, tag) in a.iter() {
                    e.u32(idx).raw(&tag.to_bytes());
                }
            }
            AuthTag::Sig(s) => {
                e.u8(3).raw(&s.to_bytes());
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<AuthTag, WireError> {
        match d.u8()? {
            0 => Ok(AuthTag::None),
            1 => {
                let b: [u8; 8] = d.raw(8)?.try_into().expect("8 bytes");
                Ok(AuthTag::Mac(Mac64::from_bytes(b)))
            }
            2 => {
                let n = d.u32()? as usize;
                if n > 10_000 {
                    return Err(WireError::BadLength(n as u64));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let idx = d.u32()?;
                    let b: [u8; 8] = d.raw(8)?.try_into().expect("8 bytes");
                    entries.push((idx, Mac64::from_bytes(b)));
                }
                Ok(AuthTag::Authenticator(Authenticator::from_entries(entries)))
            }
            3 => {
                let b: [u8; 40] = d.raw(40)?.try_into().expect("40 bytes");
                Ok(AuthTag::Sig(Signature::from_bytes(&b)))
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// A complete packet: sender, message and authentication trailer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Claimed sender (verified via the auth trailer).
    pub sender: Sender,
    /// The protocol message.
    pub msg: Message,
    /// Authentication over the packet prefix.
    pub auth: AuthTag,
}

impl Envelope {
    /// Encode the authenticated prefix (discriminant + sender + body).
    /// MACs/signatures are computed over exactly these bytes.
    pub fn encode_prefix(sender: Sender, msg: &Message) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(msg.discriminant());
        sender.encode(&mut e);
        msg.encode_body(&mut e);
        e.into_bytes()
    }

    /// Assemble a packet from a prefix and an auth tag. Appends the trailer
    /// onto the prefix buffer in place — sealing never copies the body.
    pub fn seal(prefix: Vec<u8>, auth: &AuthTag) -> Vec<u8> {
        let mut e = Enc::from_vec(prefix);
        auth.encode(&mut e);
        e.into_bytes()
    }

    /// Parse a packet. Returns the envelope and the length of the
    /// authenticated prefix (callers verify the auth tag over
    /// `&packet[..prefix_len]`).
    ///
    /// # Errors
    /// Any [`WireError`] on malformed input.
    pub fn decode(packet: &[u8]) -> Result<(Envelope, usize), WireError> {
        let mut d = Dec::new(packet);
        let disc = d.u8()?;
        let sender = Sender::decode(&mut d)?;
        let msg = Message::decode_body(disc, &mut d)?;
        let prefix_len = d.position();
        let auth = AuthTag::decode(&mut d)?;
        d.finish()?;
        Ok((Envelope { sender, msg, auth }, prefix_len))
    }
}

/// Borrowed, allocation-free packet parsing for the hot receive path.
///
/// [`view::PacketView::parse`] walks a packet exactly once without
/// materializing any owned field: variable-length fields are skipped via
/// [`Dec::bytes_ref`], the auth trailer stays a borrowed byte span, and the
/// two highest-volume message kinds (prepare/commit votes, which are `Copy`)
/// come out fully typed. This lets a replica *verify before materializing*:
/// a packet with a bad MAC is rejected without a single heap allocation, and
/// a good packet decodes its body exactly once afterwards
/// ([`view::PacketView::materialize`]).
pub mod view {
    use super::*;

    /// Typed bodies parsed inline for the hottest (allocation-free) kinds.
    #[derive(Debug, Clone, Copy)]
    pub enum FastBody {
        /// A prepare vote, fully decoded (it is `Copy`).
        Prepare(PrepareMsg),
        /// A commit vote, fully decoded.
        Commit(CommitMsg),
        /// Any other kind: span recorded, body materialized on demand.
        Other,
    }

    /// The authentication trailer, borrowed from the packet.
    #[derive(Debug, Clone, Copy)]
    pub enum AuthView<'a> {
        /// Unauthenticated.
        None,
        /// A single addressed MAC.
        Mac(Mac64),
        /// An authenticator vector: `count` entries of 12 bytes each
        /// (u32 receiver index + 8-byte MAC), still in wire form.
        Authenticator {
            /// Raw entry bytes (`12 * count` of them).
            entries: &'a [u8],
            /// Number of entries.
            count: usize,
        },
        /// A public-key signature.
        Sig(Signature),
    }

    impl AuthView<'_> {
        /// The MAC addressed to receiver `idx`, if present — a linear scan
        /// over the borrowed entry span, no `Vec` of entries is ever built.
        pub fn mac_for(&self, idx: u32) -> Option<Mac64> {
            match self {
                AuthView::Authenticator { entries, .. } => {
                    for chunk in entries.chunks_exact(12) {
                        let i = u32::from_be_bytes(chunk[..4].try_into().expect("4 bytes"));
                        if i == idx {
                            let b: [u8; 8] = chunk[4..].try_into().expect("8 bytes");
                            return Some(Mac64::from_bytes(b));
                        }
                    }
                    None
                }
                _ => None,
            }
        }

        /// Materialize the owned [`AuthTag`] (cold paths that store it).
        pub fn to_tag(&self) -> AuthTag {
            match self {
                AuthView::None => AuthTag::None,
                AuthView::Mac(m) => AuthTag::Mac(*m),
                AuthView::Authenticator { entries, .. } => {
                    let mut out = Vec::with_capacity(entries.len() / 12);
                    for chunk in entries.chunks_exact(12) {
                        let idx = u32::from_be_bytes(chunk[..4].try_into().expect("4 bytes"));
                        let b: [u8; 8] = chunk[4..].try_into().expect("8 bytes");
                        out.push((idx, Mac64::from_bytes(b)));
                    }
                    AuthTag::Authenticator(Authenticator::from_entries(out))
                }
                AuthView::Sig(s) => AuthTag::Sig(*s),
            }
        }

        fn parse<'a>(d: &mut Dec<'a>) -> Result<AuthView<'a>, WireError> {
            match d.u8()? {
                0 => Ok(AuthView::None),
                1 => {
                    let b: [u8; 8] = d.raw(8)?.try_into().expect("8 bytes");
                    Ok(AuthView::Mac(Mac64::from_bytes(b)))
                }
                2 => {
                    let count = d.u32()? as usize;
                    if count > 10_000 {
                        return Err(WireError::BadLength(count as u64));
                    }
                    Ok(AuthView::Authenticator {
                        entries: d.raw(12 * count)?,
                        count,
                    })
                }
                3 => {
                    let b: [u8; 40] = d.raw(40)?.try_into().expect("40 bytes");
                    Ok(AuthView::Sig(Signature::from_bytes(&b)))
                }
                t => Err(WireError::BadTag(t)),
            }
        }
    }

    /// A parsed-but-borrowed packet.
    #[derive(Debug, Clone, Copy)]
    pub struct PacketView<'a> {
        packet: &'a [u8],
        /// Message discriminant (first packet byte).
        pub disc: u8,
        /// Claimed sender.
        pub sender: Sender,
        body_start: usize,
        prefix_len: usize,
        /// The borrowed auth trailer.
        pub auth: AuthView<'a>,
        /// Typed body for the allocation-free kinds.
        pub fast: FastBody,
    }

    impl<'a> PacketView<'a> {
        /// Parse a packet without allocating.
        ///
        /// # Errors
        /// Any [`WireError`] on malformed input. Structure *nested inside*
        /// length-prefixed fields (new-view's embedded view-changes) is
        /// validated later by [`PacketView::materialize`], not here — a
        /// packet malformed only there parses as a view but fails to
        /// materialize.
        pub fn parse(packet: &'a [u8]) -> Result<PacketView<'a>, WireError> {
            let mut d = Dec::new(packet);
            let disc = d.u8()?;
            let sender = Sender::decode(&mut d)?;
            let body_start = d.position();
            let fast = match disc {
                3 => FastBody::Prepare(PrepareMsg {
                    view: d.u64()?,
                    seq: d.u64()?,
                    digest: d.digest()?,
                    replica: ReplicaId(d.u32()?),
                }),
                4 => FastBody::Commit(CommitMsg {
                    view: d.u64()?,
                    seq: d.u64()?,
                    digest: d.digest()?,
                    replica: ReplicaId(d.u32()?),
                }),
                _ => {
                    skip_body(disc, &mut d)?;
                    FastBody::Other
                }
            };
            let prefix_len = d.position();
            let auth = AuthView::parse(&mut d)?;
            d.finish()?;
            Ok(PacketView {
                packet,
                disc,
                sender,
                body_start,
                prefix_len,
                auth,
                fast,
            })
        }

        /// The authenticated prefix (what MACs/signatures cover).
        pub fn prefix(&self) -> &'a [u8] {
            &self.packet[..self.prefix_len]
        }

        /// Length of the authenticated prefix.
        pub fn prefix_len(&self) -> usize {
            self.prefix_len
        }

        /// The encoded message body (canonical encoding of the message
        /// struct — for a request, exactly the bytes its digest covers).
        pub fn body(&self) -> &'a [u8] {
            &self.packet[self.body_start..self.prefix_len]
        }

        /// Decode the owned message — called once, after authentication
        /// passed. Walks only the body; the trailer was parsed borrowed.
        ///
        /// # Errors
        /// Any [`WireError`] for structure hidden inside nested fields
        /// (see [`PacketView::parse`]).
        pub fn materialize(&self) -> Result<Message, WireError> {
            let mut d = Dec::new(self.body());
            let msg = Message::decode_body(self.disc, &mut d)?;
            d.finish()?;
            Ok(msg)
        }

        /// Materialize the full envelope (owned message + owned auth tag).
        ///
        /// # Errors
        /// As [`PacketView::materialize`].
        pub fn to_envelope(&self) -> Result<Envelope, WireError> {
            Ok(Envelope {
                sender: self.sender,
                msg: self.materialize()?,
                auth: self.auth.to_tag(),
            })
        }
    }

    /// Walk (and bounds/tag-check) one encoded body without materializing
    /// it. Mirrors [`Message::decode_body`] field for field; the view tests
    /// hold the two in lockstep over every message kind.
    fn skip_body(disc: u8, d: &mut Dec<'_>) -> Result<(), WireError> {
        match disc {
            1 | 14 => skip_request(d)?,
            2 => skip_preprepare(d)?,
            // 3 | 4 handled typed by the caller.
            5 => {
                d.u64()?;
                d.u64()?;
                d.u64()?;
                d.u32()?;
                d.boolean()?;
                d.boolean()?;
                d.bytes_ref()?;
            }
            6 => {
                d.u64()?;
                d.raw(32)?;
                d.u32()?;
            }
            7 => {
                d.u64()?;
                d.u64()?;
                d.raw(32)?;
                let n = d.u32()? as usize;
                if n > 100_000 {
                    return Err(WireError::BadLength(n as u64));
                }
                for _ in 0..n {
                    skip_preprepare(d)?;
                }
                d.u32()?;
            }
            8 => {
                d.u64()?;
                let nvc = d.u32()? as usize;
                if nvc > 10_000 {
                    return Err(WireError::BadLength(nvc as u64));
                }
                for _ in 0..nvc {
                    d.bytes_ref()?;
                }
                let npp = d.u32()? as usize;
                if npp > 100_000 {
                    return Err(WireError::BadLength(npp as u64));
                }
                for _ in 0..npp {
                    skip_preprepare(d)?;
                }
            }
            9 => {
                d.u64()?;
                d.u32()?;
                let n = d.u32()? as usize;
                if n > 10_000 {
                    return Err(WireError::BadLength(n as u64));
                }
                d.raw(32 * n)?;
            }
            10 => {
                d.u32()?;
                d.u64()?;
                d.u64()?;
                d.raw(32)?;
                d.u64()?;
                d.u8()?;
            }
            11 => {
                d.u64()?;
                match d.u8()? {
                    0 => {
                        d.u32()?;
                        d.u64()?;
                    }
                    1 => {
                        d.u64()?;
                    }
                    t => return Err(WireError::BadTag(t)),
                }
                d.u32()?;
            }
            12 => {
                d.u64()?;
                match d.u8()? {
                    0 => {
                        d.u32()?;
                        d.u64()?;
                        d.raw(64)?;
                    }
                    1 => {
                        d.u64()?;
                        match d.u8()? {
                            0 => {}
                            1 => {
                                d.bytes_ref()?;
                            }
                            t => return Err(WireError::BadTag(t)),
                        }
                    }
                    2 => {}
                    t => return Err(WireError::BadTag(t)),
                }
                d.u32()?;
            }
            13 => {
                d.raw(32)?;
                d.u32()?;
            }
            15 | 16 => {
                d.u64()?;
                d.u64()?;
                d.raw(32)?;
                let count = d.u32()? as usize;
                if count > 10_000 {
                    return Err(WireError::BadLength(count as u64));
                }
                d.raw(4 * count)?;
            }
            t => return Err(WireError::BadTag(t)),
        }
        Ok(())
    }

    fn skip_request(d: &mut Dec<'_>) -> Result<(), WireError> {
        d.u64()?;
        d.u64()?;
        d.boolean()?;
        d.u32()?;
        match d.u8()? {
            0 => {
                d.bytes_ref()?;
            }
            1 => {}
            2 => {
                d.raw(16)?;
                d.u64()?;
                d.u32()?;
                d.bytes_ref()?;
            }
            3 => {
                d.raw(64)?;
            }
            4 => {}
            t => return Err(WireError::BadTag(t)),
        }
        Ok(())
    }

    fn skip_preprepare(d: &mut Dec<'_>) -> Result<(), WireError> {
        d.u64()?;
        d.u64()?;
        d.u64()?;
        d.u64()?;
        let n = d.u32()? as usize;
        if n > 100_000 {
            return Err(WireError::BadLength(n as u64));
        }
        for _ in 0..n {
            d.raw(32)?;
            d.u64()?;
            d.u64()?;
            match d.u8()? {
                0 => {}
                1 => skip_request(d)?,
                t => return Err(WireError::BadTag(t)),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbft_crypto::KeyPair;

    fn sample_request() -> RequestMsg {
        RequestMsg {
            client: ClientId(7),
            timestamp: 42,
            read_only: false,
            reply_addr: 9,
            op: Operation::App(b"insert into votes".to_vec()),
        }
    }

    fn roundtrip(msg: Message, sender: Sender, auth: AuthTag) {
        let prefix = Envelope::encode_prefix(sender, &msg);
        let packet = Envelope::seal(prefix.clone(), &auth);
        assert_eq!(
            packet[0],
            msg.discriminant(),
            "first byte is the discriminant"
        );
        let (env, prefix_len) = Envelope::decode(&packet).expect("decode");
        assert_eq!(env.msg, msg);
        assert_eq!(env.sender, sender);
        assert_eq!(env.auth, auth);
        assert_eq!(&packet[..prefix_len], &prefix[..]);

        // The borrowed view must stay in lockstep with the owned decoder
        // for every message kind: same sender, same prefix span, same
        // materialized envelope.
        let v = view::PacketView::parse(&packet).expect("view parse");
        assert_eq!(v.disc, msg.discriminant());
        assert_eq!(v.sender, sender);
        assert_eq!(v.prefix_len(), prefix_len);
        assert_eq!(v.prefix(), &prefix[..]);
        assert_eq!(v.to_envelope().expect("materialize"), env);
        match (&v.fast, &msg) {
            (view::FastBody::Prepare(p), Message::Prepare(m)) => assert_eq!(p, m),
            (view::FastBody::Commit(c), Message::Commit(m)) => assert_eq!(c, m),
            (view::FastBody::Other, Message::Prepare(_) | Message::Commit(_)) => {
                panic!("votes must parse typed")
            }
            (view::FastBody::Other, _) => {}
            (fast, _) => panic!("typed body {fast:?} for {}", msg.name()),
        }
    }

    #[test]
    fn request_roundtrip() {
        roundtrip(
            Message::Request(sample_request()),
            Sender::Client(ClientId(7)),
            AuthTag::None,
        );
    }

    #[test]
    fn all_operations_roundtrip() {
        let kp = KeyPair::generate(3);
        let ops = vec![
            Operation::App(vec![1, 2, 3]),
            Operation::Noop,
            Operation::JoinPhase1 {
                pubkey: kp.public(),
                nonce: 77,
                reply_addr: 3,
                idbuf: b"user:pass".to_vec(),
            },
            Operation::JoinPhase2 {
                fingerprint: Digest::of(b"fp"),
                response: ChallengeResponse(Digest::of(b"resp")),
            },
            Operation::Leave,
        ];
        for op in ops {
            let req = RequestMsg {
                op,
                ..sample_request()
            };
            roundtrip(Message::Request(req), Sender::Anonymous, AuthTag::None);
        }
    }

    #[test]
    fn preprepare_roundtrip_and_digest() {
        let req = sample_request();
        let pp = PrePrepareMsg {
            view: 3,
            seq: 55,
            nondet: NonDet {
                timestamp_ns: 1000,
                random: 0xfeed,
            },
            entries: vec![
                BatchEntry {
                    digest: req.digest(),
                    client: req.client,
                    timestamp: req.timestamp,
                    full: Some(req.clone()),
                },
                BatchEntry {
                    digest: Digest::of(b"big one"),
                    client: ClientId(9),
                    timestamp: 1,
                    full: None,
                },
            ],
        };
        // Inline bodies do not change the batch digest.
        let mut no_body = pp.clone();
        no_body.entries[0].full = None;
        assert_eq!(pp.batch_digest(), no_body.batch_digest());
        roundtrip(
            Message::PrePrepare(pp),
            Sender::Replica(ReplicaId(0)),
            AuthTag::None,
        );
    }

    #[test]
    fn agreement_messages_roundtrip() {
        let d = Digest::of(b"batch");
        roundtrip(
            Message::Prepare(PrepareMsg {
                view: 1,
                seq: 2,
                digest: d,
                replica: ReplicaId(3),
            }),
            Sender::Replica(ReplicaId(3)),
            AuthTag::Mac(Mac64(99)),
        );
        roundtrip(
            Message::Commit(CommitMsg {
                view: 1,
                seq: 2,
                digest: d,
                replica: ReplicaId(2),
            }),
            Sender::Replica(ReplicaId(2)),
            AuthTag::Authenticator(Authenticator::from_entries(vec![
                (0, Mac64(1)),
                (2, Mac64(5)),
            ])),
        );
    }

    #[test]
    fn quorum_cert_roundtrip() {
        let d = Digest::of(b"batch");
        for (msg, voters) in [
            (15u8, vec![ReplicaId(1), ReplicaId(2)]),
            (16u8, vec![ReplicaId(0), ReplicaId(1), ReplicaId(3)]),
        ] {
            let qc = QuorumCertMsg {
                view: 4,
                seq: 17,
                digest: d,
                voters,
            };
            let m = if msg == 15 {
                Message::PrepareQC(qc)
            } else {
                Message::CommitQC(qc)
            };
            assert_eq!(m.discriminant(), msg);
            roundtrip(
                m,
                Sender::Replica(ReplicaId(1)),
                AuthTag::Authenticator(Authenticator::from_entries(vec![(0, Mac64(7))])),
            );
        }
        // An empty voter list survives too (the f = 0 degenerate group).
        roundtrip(
            Message::PrepareQC(QuorumCertMsg {
                view: 0,
                seq: 1,
                digest: d,
                voters: vec![],
            }),
            Sender::Replica(ReplicaId(0)),
            AuthTag::None,
        );
    }

    #[test]
    fn reply_roundtrip() {
        roundtrip(
            Message::Reply(ReplyMsg {
                view: 0,
                client: ClientId(7),
                timestamp: 42,
                replica: ReplicaId(1),
                tentative: true,
                digest_only: false,
                result: b"ok".to_vec(),
            }),
            Sender::Replica(ReplicaId(1)),
            AuthTag::Mac(Mac64(5)),
        );
        // The digest-only form strips big bodies and keeps small ones.
        let full = ReplyMsg {
            view: 0,
            client: ClientId(7),
            timestamp: 42,
            replica: ReplicaId(1),
            tentative: false,
            digest_only: false,
            result: vec![9u8; 1024],
        };
        let stripped = full.to_digest_only();
        assert!(stripped.digest_only);
        assert_eq!(stripped.result, Digest::of(&full.result).as_bytes());
        assert_eq!(stripped.matching_digest(), full.matching_digest());
        roundtrip(
            Message::Reply(stripped),
            Sender::Replica(ReplicaId(1)),
            AuthTag::Mac(Mac64(5)),
        );
        let small = ReplyMsg {
            result: b"ok".to_vec(),
            ..full
        };
        assert!(
            !small.to_digest_only().digest_only,
            "small bodies stay inline"
        );
    }

    #[test]
    fn signed_envelope_roundtrip() {
        let kp = KeyPair::generate(5);
        let msg = Message::Checkpoint(CheckpointMsg {
            seq: 128,
            root: Digest::of(b"state"),
            replica: ReplicaId(2),
        });
        let prefix = Envelope::encode_prefix(Sender::Replica(ReplicaId(2)), &msg);
        let sig = kp.sign(&prefix);
        let packet = Envelope::seal(prefix, &AuthTag::Sig(sig));
        let (env, prefix_len) = Envelope::decode(&packet).expect("decode");
        match env.auth {
            AuthTag::Sig(s) => kp
                .public()
                .verify(&packet[..prefix_len], &s)
                .expect("verifies"),
            _ => panic!("wrong auth kind"),
        }
    }

    #[test]
    fn viewchange_and_newview_roundtrip() {
        let pp = PrePrepareMsg {
            view: 0,
            seq: 5,
            nondet: NonDet {
                timestamp_ns: 1,
                random: 2,
            },
            entries: vec![BatchEntry {
                digest: Digest::of(b"x"),
                client: ClientId(1),
                timestamp: 1,
                full: None,
            }],
        };
        let vc = ViewChangeMsg {
            new_view: 1,
            last_stable_seq: 0,
            stable_root: Digest::of(b"root"),
            prepared: vec![PreparedProof {
                preprepare: pp.clone(),
            }],
            replica: ReplicaId(2),
        };
        roundtrip(
            Message::ViewChange(vc.clone()),
            Sender::Replica(ReplicaId(2)),
            AuthTag::None,
        );
        let nv = NewViewMsg {
            view: 1,
            view_changes: vec![
                vc.clone(),
                ViewChangeMsg {
                    replica: ReplicaId(3),
                    ..vc
                },
            ],
            pre_prepares: vec![pp],
        };
        roundtrip(
            Message::NewView(nv),
            Sender::Replica(ReplicaId(1)),
            AuthTag::None,
        );
    }

    #[test]
    fn fetch_messages_roundtrip() {
        roundtrip(
            Message::Fetch(FetchMsg {
                target_seq: 128,
                req: FetchRequest::Meta { level: 3, index: 1 },
                replica: ReplicaId(0),
            }),
            Sender::Replica(ReplicaId(0)),
            AuthTag::None,
        );
        for resp in [
            FetchResponse::Meta {
                level: 3,
                index: 1,
                children: (Digest::of(b"l"), Digest::of(b"r")),
            },
            FetchResponse::Page {
                index: 9,
                data: Some(vec![7u8; 64]),
            },
            FetchResponse::Page {
                index: 9,
                data: None,
            },
            FetchResponse::Unavailable,
        ] {
            roundtrip(
                Message::FetchResp(FetchRespMsg {
                    target_seq: 128,
                    resp,
                    replica: ReplicaId(1),
                }),
                Sender::Replica(ReplicaId(1)),
                AuthTag::None,
            );
        }
    }

    #[test]
    fn misc_messages_roundtrip() {
        roundtrip(
            Message::NewKey(NewKeyMsg {
                client: ClientId(4),
                reply_addr: 11,
                keys: vec![[1u8; 32], [2u8; 32]],
            }),
            Sender::Client(ClientId(4)),
            AuthTag::None,
        );
        roundtrip(
            Message::Status(StatusMsg {
                replica: ReplicaId(3),
                view: 7,
                last_stable_seq: 256,
                stable_root: Digest::of(b"s"),
                last_executed: 300,
                in_view_change: true,
            }),
            Sender::Replica(ReplicaId(3)),
            AuthTag::None,
        );
        roundtrip(
            Message::BodyFetch(BodyFetchMsg {
                digest: Digest::of(b"d"),
                replica: ReplicaId(1),
            }),
            Sender::Replica(ReplicaId(1)),
            AuthTag::None,
        );
        roundtrip(
            Message::BodyResp(sample_request()),
            Sender::Replica(ReplicaId(0)),
            AuthTag::None,
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(Envelope::decode(&[]).is_err());
        assert!(Envelope::decode(&[99, 0, 0, 0, 0]).is_err());
        // Valid packet with trailing garbage.
        let prefix = Envelope::encode_prefix(
            Sender::Client(ClientId(1)),
            &Message::Request(sample_request()),
        );
        let mut packet = Envelope::seal(prefix, &AuthTag::None);
        packet.push(0xff);
        assert!(Envelope::decode(&packet).is_err());
    }

    #[test]
    fn view_body_is_the_digested_span() {
        // The request digest is defined over the canonical request encoding,
        // which is exactly the view's body span — the receive path computes
        // it straight from the packet without re-encoding.
        let req = sample_request();
        let prefix =
            Envelope::encode_prefix(Sender::Client(req.client), &Message::Request(req.clone()));
        let packet = Envelope::seal(prefix, &AuthTag::None);
        let v = view::PacketView::parse(&packet).unwrap();
        assert_eq!(Digest::of(v.body()), req.digest());
        assert_eq!(v.body().len(), req.encoded_len());
    }

    #[test]
    fn auth_view_finds_exactly_the_addressed_mac() {
        let auth = AuthTag::Authenticator(Authenticator::from_entries(vec![
            (0, Mac64(10)),
            (2, Mac64(12)),
            (3, Mac64(13)),
        ]));
        let prefix = Envelope::encode_prefix(
            Sender::Replica(ReplicaId(1)),
            &Message::Request(sample_request()),
        );
        let packet = Envelope::seal(prefix, &auth);
        let v = view::PacketView::parse(&packet).unwrap();
        assert_eq!(v.auth.mac_for(0), Some(Mac64(10)));
        assert_eq!(v.auth.mac_for(1), None);
        assert_eq!(v.auth.mac_for(2), Some(Mac64(12)));
        assert_eq!(v.auth.mac_for(3), Some(Mac64(13)));
        assert_eq!(v.auth.to_tag(), auth);
    }

    #[test]
    fn view_rejects_garbage_like_the_decoder() {
        assert!(view::PacketView::parse(&[]).is_err());
        assert!(view::PacketView::parse(&[99, 0, 0, 0, 0]).is_err());
        let prefix = Envelope::encode_prefix(
            Sender::Client(ClientId(1)),
            &Message::Request(sample_request()),
        );
        let mut packet = Envelope::seal(prefix, &AuthTag::None);
        packet.push(0xff);
        assert!(view::PacketView::parse(&packet).is_err());
        packet.pop();
        assert!(view::PacketView::parse(&packet).is_ok());
        // Truncation anywhere inside the prefix is caught too.
        for cut in 1..packet.len() {
            assert!(view::PacketView::parse(&packet[..cut]).is_err());
        }
    }

    #[test]
    fn request_digest_is_content_addressed() {
        let a = sample_request();
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.timestamp += 1;
        assert_ne!(a.digest(), b.digest());
        assert!(a.encoded_len() > 0);
    }
}
