//! The consensus-engine abstraction: the narrow, sans-io surface the
//! simulation harness drives.
//!
//! Everything above `pbft_core` — `harness::cluster`, the Byzantine fault
//! hosts, the scenario engine, the shard and cross-shard drivers — talks to a
//! replica exclusively through [`ConsensusEngine`]. The trait splits replica
//! *node logic* from the *service* that hosts it (the shape sawtooth-pbft
//! uses for its node/Service split): an engine owns its protocol state
//! machine, message log, and timers, while the host owns the network, the
//! clock, and fault injection.
//!
//! An engine **must** own:
//! - its agreement state machine (how packets and timer firings become
//!   [`Output`](crate::output::Output)s),
//! - its durable paged state handle (checkpoints, state transfer),
//! - its own notion of views/rounds and leader rotation.
//!
//! An engine **must not** own:
//! - the clock (time only arrives via `now_ns` arguments),
//! - the network (sends are returned, never performed),
//! - randomness (all nondeterminism is agreed through the protocol).
//!
//! Two engines live in this crate: classic quadratic PBFT
//! ([`Replica`]) and the linear-communication rotating-leader engine
//! ([`LinearReplica`](crate::linear::LinearReplica)).
//!
//! # Implementing a custom engine
//!
//! The trait is object-safe except for the constructor and name, so a
//! minimal engine is a plain struct. The stub below orders nothing — it
//! exists to show the complete required surface compiling against the trait:
//!
//! ```
//! use pbft_core::app::{App, StateHandle};
//! use pbft_core::config::PbftConfig;
//! use pbft_core::engine::ConsensusEngine;
//! use pbft_core::output::{HandleResult, TimerKind};
//! use pbft_core::replica::ReplicaMetrics;
//! use pbft_core::types::{ClientId, ReplicaId, SeqNum, View};
//! use pbft_crypto::Digest;
//!
//! /// An engine that ignores every input (useful only as a scaffold).
//! struct NullEngine {
//!     me: ReplicaId,
//!     state: StateHandle,
//!     metrics: ReplicaMetrics,
//! }
//!
//! impl ConsensusEngine for NullEngine {
//!     fn build(
//!         _cfg: PbftConfig,
//!         _group_seed: u64,
//!         me: ReplicaId,
//!         state: StateHandle,
//!         _app: Box<dyn App>,
//!         _preinstalled_clients: &[ClientId],
//!     ) -> Self {
//!         NullEngine { me, state, metrics: ReplicaMetrics::default() }
//!     }
//!     fn engine_name() -> &'static str {
//!         "null"
//!     }
//!     fn id(&self) -> ReplicaId {
//!         self.me
//!     }
//!     fn on_start(&mut self, _now_ns: u64, _restarted: bool) -> HandleResult {
//!         HandleResult::default()
//!     }
//!     fn handle_packet(&mut self, _packet: &[u8], _now_ns: u64) -> HandleResult {
//!         HandleResult::default()
//!     }
//!     fn on_timer(&mut self, _kind: TimerKind, _now_ns: u64) -> HandleResult {
//!         HandleResult::default()
//!     }
//!     fn state_handle(&self) -> StateHandle {
//!         self.state.clone()
//!     }
//!     fn view(&self) -> View {
//!         0
//!     }
//!     fn last_executed(&self) -> SeqNum {
//!         0
//!     }
//!     fn stable_checkpoint(&self) -> (SeqNum, Digest) {
//!         (0, Digest::ZERO)
//!     }
//!     fn exec_chain(&self) -> Digest {
//!         Digest::ZERO
//!     }
//!     fn metrics(&self) -> &ReplicaMetrics {
//!         &self.metrics
//!     }
//!     fn force_suspect(&mut self, _now_ns: u64) -> HandleResult {
//!         HandleResult::default()
//!     }
//!     fn is_recovering(&self) -> bool {
//!         false
//!     }
//!     fn in_view_change(&self) -> bool {
//!         false
//!     }
//! }
//!
//! # use std::{cell::RefCell, rc::Rc};
//! let state = Rc::new(RefCell::new(pbft_state::PagedState::new(4)));
//! let mut e = NullEngine::build(
//!     PbftConfig::default(),
//!     7,
//!     ReplicaId(0),
//!     state,
//!     Box::new(pbft_core::NullApp::new(16)),
//!     &[],
//! );
//! assert_eq!(NullEngine::engine_name(), "null");
//! assert!(e.on_start(0, false).outputs.is_empty());
//! ```

use pbft_crypto::Digest;

use crate::app::{App, StateHandle};
use crate::config::PbftConfig;
use crate::output::{HandleResult, TimerKind};
use crate::replica::{Replica, ReplicaMetrics};
use crate::types::{ClientId, ReplicaId, SeqNum, View};

/// A sans-io replica protocol engine the harness can host.
///
/// All methods that consume input take an explicit `now_ns` and return a
/// [`HandleResult`]; an engine never touches a clock or a socket itself.
/// See the [module docs](self) for the ownership contract.
pub trait ConsensusEngine: 'static {
    /// Construct an engine for group member `me`.
    ///
    /// Mirrors [`Replica::new`]: `group_seed` derives the deterministic key
    /// material, `state` is the shared paged memory region, and
    /// `preinstalled_clients` models a completed startup key exchange (pass
    /// `&[]` for a restarted replica that lost its session keys).
    fn build(
        cfg: PbftConfig,
        group_seed: u64,
        me: ReplicaId,
        state: StateHandle,
        app: Box<dyn App>,
        preinstalled_clients: &[ClientId],
    ) -> Self
    where
        Self: Sized;

    /// Short stable name for bench columns and reports (e.g. `"pbft"`).
    fn engine_name() -> &'static str
    where
        Self: Sized;

    /// This engine's replica id.
    fn id(&self) -> ReplicaId;

    /// Called once when the hosting node (re)starts. `restarted == true`
    /// after a crash/restart, in which case the engine should begin its
    /// recovery protocol.
    fn on_start(&mut self, now_ns: u64, restarted: bool) -> HandleResult;

    /// Consume one sealed wire packet.
    fn handle_packet(&mut self, packet: &[u8], now_ns: u64) -> HandleResult;

    /// A previously requested timer fired.
    fn on_timer(&mut self, kind: TimerKind, now_ns: u64) -> HandleResult;

    /// Handle to the replica's paged state region.
    fn state_handle(&self) -> StateHandle;

    /// Current view (round) number.
    fn view(&self) -> View;

    /// Highest contiguously executed sequence number.
    fn last_executed(&self) -> SeqNum;

    /// The last stable checkpoint `(seq, state root)`.
    fn stable_checkpoint(&self) -> (SeqNum, Digest);

    /// Running digest chained over every executed batch — the cheap
    /// cross-replica agreement probe the test harness compares.
    fn exec_chain(&self) -> Digest;

    /// Protocol counters.
    fn metrics(&self) -> &ReplicaMetrics;

    /// Force an immediate leader suspicion (fault-injection hook: behaves as
    /// if the engine's own progress timer expired).
    fn force_suspect(&mut self, now_ns: u64) -> HandleResult;

    /// True while a state transfer is in flight.
    fn is_recovering(&self) -> bool;

    /// True while a leader rotation is in flight (the engine has voted to
    /// change views/rounds and has not yet entered the new one). Adaptive
    /// adversaries key on this window — it is when a misbehaving vote or a
    /// withheld message hurts the most — so every engine must expose it.
    fn in_view_change(&self) -> bool;
}

impl ConsensusEngine for Replica {
    fn build(
        cfg: PbftConfig,
        group_seed: u64,
        me: ReplicaId,
        state: StateHandle,
        app: Box<dyn App>,
        preinstalled_clients: &[ClientId],
    ) -> Self {
        Replica::new(cfg, group_seed, me, state, app, preinstalled_clients)
    }

    fn engine_name() -> &'static str {
        "pbft"
    }

    fn id(&self) -> ReplicaId {
        Replica::id(self)
    }

    fn on_start(&mut self, now_ns: u64, restarted: bool) -> HandleResult {
        Replica::on_start(self, now_ns, restarted)
    }

    fn handle_packet(&mut self, packet: &[u8], now_ns: u64) -> HandleResult {
        Replica::handle_packet(self, packet, now_ns)
    }

    fn on_timer(&mut self, kind: TimerKind, now_ns: u64) -> HandleResult {
        Replica::on_timer(self, kind, now_ns)
    }

    fn state_handle(&self) -> StateHandle {
        Replica::state_handle(self)
    }

    fn view(&self) -> View {
        Replica::view(self)
    }

    fn last_executed(&self) -> SeqNum {
        Replica::last_executed(self)
    }

    fn stable_checkpoint(&self) -> (SeqNum, Digest) {
        Replica::stable_checkpoint(self)
    }

    fn exec_chain(&self) -> Digest {
        Replica::exec_chain(self)
    }

    fn metrics(&self) -> &ReplicaMetrics {
        Replica::metrics(self)
    }

    fn force_suspect(&mut self, now_ns: u64) -> HandleResult {
        Replica::force_suspect(self, now_ns)
    }

    fn is_recovering(&self) -> bool {
        Replica::is_recovering(self)
    }

    fn in_view_change(&self) -> bool {
        Replica::in_view_change(self)
    }
}
