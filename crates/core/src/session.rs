//! Per-session state — the library-level subsystem the paper sketches in
//! §3.3.2.
//!
//! "The current implementation of the PBFT protocol purposely ignores the
//! notion of client-specific state. ... With our addition of application
//! level sign-on messages to the protocol, resulting in identification of
//! specific sessions, a library-level subsystem can be developed that will
//! map parts of the state to a specific session. This would enable easier
//! porting of stateful applications to the BFT world."
//!
//! This module is that subsystem. Each client session owns a small byte
//! blob inside a dedicated section of the **replicated state region**, so
//! session state is ordered with the requests that mutate it, covered by
//! checkpoints, moved by state transfer, and identical on every replica.
//! The replica hands the executing application a [`SessionCtx`] scoped to
//! the requesting client; the engine persists mutations back into the
//! region before the next request executes, and clears a session's state
//! when dynamic membership terminates the session (Leave, or takeover by a
//! new sign-on with the same identity — §3.1).

use std::collections::BTreeMap;

use pbft_state::{PagedState, Section, StateError};

use crate::types::ClientId;
use crate::wire::{Dec, Enc, WireError};

/// Upper bound for one session's blob, so a single session cannot exhaust
/// the shared section.
pub const MAX_SESSION_BYTES: usize = 1024;

/// The session-state table, mirrored between memory and its region section.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStore {
    entries: BTreeMap<ClientId, Vec<u8>>,
}

impl SessionStore {
    /// An empty store.
    pub fn new() -> SessionStore {
        SessionStore::default()
    }

    /// This client's session blob, if any.
    pub fn get(&self, client: ClientId) -> Option<&[u8]> {
        self.entries.get(&client).map(|v| v.as_slice())
    }

    /// Replace this client's session blob.
    ///
    /// # Panics
    /// If `data` exceeds [`MAX_SESSION_BYTES`] (the [`SessionCtx`] API
    /// returns an error instead; this is the trusted engine-side entry).
    pub fn set(&mut self, client: ClientId, data: Vec<u8>) {
        assert!(data.len() <= MAX_SESSION_BYTES, "session blob too large");
        if data.is_empty() {
            self.entries.remove(&client);
        } else {
            self.entries.insert(client, data);
        }
    }

    /// Drop this client's session state (Leave / session takeover).
    /// Returns true when state existed.
    pub fn remove(&mut self, client: ClientId) -> bool {
        self.entries.remove(&client).is_some()
    }

    /// Number of sessions holding state.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no session holds state.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize into the session section of the state region (with the
    /// modify-notification the PBFT contract demands).
    ///
    /// # Errors
    /// [`StateError`] when the section cannot hold the table.
    pub fn persist(&self, section: &Section, state: &mut PagedState) -> Result<(), StateError> {
        let mut e = Enc::new();
        e.u32(self.entries.len() as u32);
        for (client, data) in &self.entries {
            e.u64(client.0).bytes(data);
        }
        let bytes = e.into_bytes();
        let mut framed = Enc::new();
        framed.bytes(&bytes);
        let framed = framed.into_bytes();
        section.modify(state, 0, framed.len())?;
        section.write(state, 0, &framed)
    }

    /// Reload from the session section (restart, state transfer). A
    /// never-persisted section yields the empty store.
    ///
    /// # Errors
    /// [`WireError`] when the section holds a corrupt table.
    pub fn load(section: &Section, state: &PagedState) -> Result<SessionStore, WireError> {
        let mut header = [0u8; 4];
        if section.read(state, 0, &mut header).is_err() {
            return Ok(SessionStore::new());
        }
        let len = u32::from_be_bytes(header) as usize;
        if len == 0 {
            return Ok(SessionStore::new());
        }
        let mut buf = vec![0u8; len];
        section
            .read(state, 4, &mut buf)
            .map_err(|_| WireError::Truncated)?;
        let mut d = Dec::new(&buf);
        let count = d.u32()? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let client = ClientId(d.u64()?);
            let data = d.bytes()?;
            if data.len() > MAX_SESSION_BYTES {
                return Err(WireError::Truncated);
            }
            entries.insert(client, data);
        }
        Ok(SessionStore { entries })
    }
}

/// The view of the session store handed to one execution upcall: scoped to
/// the requesting client, with mutation tracking so the engine persists only
/// when something changed.
#[derive(Debug)]
pub struct SessionCtx<'a> {
    store: &'a mut SessionStore,
    client: ClientId,
    read_only: bool,
    dirty: bool,
}

impl<'a> SessionCtx<'a> {
    /// Scope `store` to `client`. `read_only` contexts reject writes (the
    /// §2.1 read-only fast path must not modify state).
    pub fn new(store: &'a mut SessionStore, client: ClientId, read_only: bool) -> SessionCtx<'a> {
        SessionCtx {
            store,
            client,
            read_only,
            dirty: false,
        }
    }

    /// The requesting client.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// This session's blob (empty slice when none).
    pub fn get(&self) -> &[u8] {
        self.store.get(self.client).unwrap_or(&[])
    }

    /// Replace this session's blob.
    ///
    /// # Errors
    /// When the blob exceeds [`MAX_SESSION_BYTES`] or this is a read-only
    /// execution.
    pub fn put(&mut self, data: &[u8]) -> Result<(), SessionError> {
        if self.read_only {
            return Err(SessionError::ReadOnly);
        }
        if data.len() > MAX_SESSION_BYTES {
            return Err(SessionError::TooLarge(data.len()));
        }
        self.store.set(self.client, data.to_vec());
        self.dirty = true;
        Ok(())
    }

    /// Clear this session's blob.
    ///
    /// # Errors
    /// [`SessionError::ReadOnly`] on the read-only path.
    pub fn clear(&mut self) -> Result<(), SessionError> {
        if self.read_only {
            return Err(SessionError::ReadOnly);
        }
        if self.store.remove(self.client) {
            self.dirty = true;
        }
        Ok(())
    }

    /// Whether this upcall mutated session state (engine-side: persist?).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }
}

/// Session-state errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// Write attempted on the read-only execution path.
    ReadOnly,
    /// Blob exceeds [`MAX_SESSION_BYTES`].
    TooLarge(usize),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::ReadOnly => write!(f, "session write on the read-only path"),
            SessionError::TooLarge(n) => {
                write!(
                    f,
                    "session blob of {n} bytes exceeds the {MAX_SESSION_BYTES}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn setup() -> (Rc<RefCell<PagedState>>, Section) {
        let state = Rc::new(RefCell::new(PagedState::new(8)));
        let section = Section {
            base: 0,
            len: 4 * pbft_state::PAGE_SIZE as u64,
        };
        (state, section)
    }

    #[test]
    fn store_roundtrips_through_region() {
        let (state, section) = setup();
        let mut store = SessionStore::new();
        store.set(ClientId(1), b"cart: 3 items".to_vec());
        store.set(ClientId(9), b"page 4".to_vec());
        store
            .persist(&section, &mut state.borrow_mut())
            .expect("persist");
        let back = SessionStore::load(&section, &state.borrow()).expect("load");
        assert_eq!(back, store);
        assert_eq!(back.get(ClientId(9)), Some(b"page 4".as_slice()));
    }

    #[test]
    fn fresh_region_loads_empty() {
        let (state, section) = setup();
        let store = SessionStore::load(&section, &state.borrow()).expect("load");
        assert!(store.is_empty());
    }

    #[test]
    fn remove_and_empty_set_drop_entries() {
        let mut store = SessionStore::new();
        store.set(ClientId(1), b"x".to_vec());
        assert!(store.remove(ClientId(1)));
        assert!(!store.remove(ClientId(1)));
        store.set(ClientId(2), b"y".to_vec());
        store.set(ClientId(2), Vec::new()); // empty = clear
        assert!(store.is_empty());
    }

    #[test]
    fn ctx_tracks_dirtiness() {
        let mut store = SessionStore::new();
        let mut ctx = SessionCtx::new(&mut store, ClientId(3), false);
        assert_eq!(ctx.get(), b"");
        assert!(!ctx.is_dirty());
        ctx.put(b"hello").expect("put");
        assert!(ctx.is_dirty());
        assert_eq!(ctx.get(), b"hello");
        assert_eq!(store.get(ClientId(3)), Some(b"hello".as_slice()));
    }

    #[test]
    fn ctx_clear_only_dirties_when_state_existed() {
        let mut store = SessionStore::new();
        let mut ctx = SessionCtx::new(&mut store, ClientId(3), false);
        ctx.clear().expect("clear nothing");
        assert!(!ctx.is_dirty());
        ctx.put(b"x").expect("put");
        let mut ctx = SessionCtx::new(&mut store, ClientId(3), false);
        ctx.clear().expect("clear");
        assert!(ctx.is_dirty());
    }

    #[test]
    fn read_only_ctx_rejects_writes() {
        let mut store = SessionStore::new();
        let mut ctx = SessionCtx::new(&mut store, ClientId(3), true);
        assert_eq!(ctx.put(b"x"), Err(SessionError::ReadOnly));
        assert_eq!(ctx.clear(), Err(SessionError::ReadOnly));
        assert!(!ctx.is_dirty());
    }

    #[test]
    fn oversized_blob_rejected() {
        let mut store = SessionStore::new();
        let mut ctx = SessionCtx::new(&mut store, ClientId(3), false);
        let big = vec![0u8; MAX_SESSION_BYTES + 1];
        assert!(matches!(ctx.put(&big), Err(SessionError::TooLarge(_))));
        let ok = vec![0u8; MAX_SESSION_BYTES];
        assert!(ctx.put(&ok).is_ok());
    }

    #[test]
    fn sessions_isolated_per_client() {
        let mut store = SessionStore::new();
        SessionCtx::new(&mut store, ClientId(1), false)
            .put(b"a")
            .expect("put");
        SessionCtx::new(&mut store, ClientId(2), false)
            .put(b"b")
            .expect("put");
        assert_eq!(SessionCtx::new(&mut store, ClientId(1), false).get(), b"a");
        assert_eq!(SessionCtx::new(&mut store, ClientId(2), false).get(), b"b");
    }

    #[test]
    fn errors_display() {
        assert!(SessionError::ReadOnly.to_string().contains("read-only"));
        assert!(SessionError::TooLarge(9999).to_string().contains("9999"));
    }
}
