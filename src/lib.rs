//! Umbrella crate for the PBFT practicality reproduction workspace.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. The actual functionality lives in
//! the workspace crates re-exported below.

pub use evoting;
pub use harness;
pub use minisql;
pub use pbft_core;
pub use pbft_crypto;
pub use pbft_sql;
pub use pbft_state;
pub use simnet;
pub use webgate;
